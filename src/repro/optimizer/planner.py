"""Mapping of logical expressions to physical plans.

This is the second kind of transformation rule the paper describes in its
introduction: logical operators are mapped to physical operators (join →
hash-join, small divide → hash-division, …).  The planner is deliberately
rule-driven rather than cost-driven — the cost-based decisions happen at the
logical level (:mod:`repro.optimizer.rewriter`); here each logical operator
has a default physical algorithm plus per-operator overrides that the
benchmarks use for algorithm comparisons.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.algebra.expressions import (
    AntiJoin,
    Difference,
    Expression,
    GreatDivide,
    GroupBy,
    Intersection,
    LeftOuterJoin,
    LiteralRelation,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    Select,
    SemiJoin,
    SmallDivide,
    ThetaJoin,
    Union,
)
from repro.errors import PlanningError
from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    DifferenceOp,
    Filter,
    HashAggregate,
    HashAntiJoin,
    HashJoin,
    HashLeftOuterJoin,
    HashSemiJoin,
    IntersectOp,
    NestedLoopsJoin,
    PhysicalOperator,
    ProductOp,
    ProjectOp,
    RelationScan,
    RenameOp,
    TableScan,
    UnionOp,
)
from repro.relation.relation import Relation

__all__ = ["PlannerOptions", "PhysicalPlanner"]


@dataclass(frozen=True)
class PlannerOptions:
    """Algorithm choices for the logical→physical mapping."""

    #: Algorithm for the small divide: one of ``SMALL_DIVIDE_ALGORITHMS``.
    small_divide_algorithm: str = "hash"
    #: Algorithm for the great divide: one of ``GREAT_DIVIDE_ALGORITHMS``.
    great_divide_algorithm: str = "hash"
    #: Extra keyword arguments reserved for future algorithm tuning.
    extras: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.small_divide_algorithm not in SMALL_DIVIDE_ALGORITHMS:
            raise PlanningError(
                f"unknown small-divide algorithm {self.small_divide_algorithm!r}; "
                f"choose from {sorted(SMALL_DIVIDE_ALGORITHMS)}"
            )
        if self.great_divide_algorithm not in GREAT_DIVIDE_ALGORITHMS:
            raise PlanningError(
                f"unknown great-divide algorithm {self.great_divide_algorithm!r}; "
                f"choose from {sorted(GREAT_DIVIDE_ALGORITHMS)}"
            )


class PhysicalPlanner:
    """Translate a logical expression into an executable physical plan."""

    def __init__(
        self,
        database: Mapping[str, Relation],
        options: PlannerOptions | None = None,
    ) -> None:
        self.database = database
        self.options = options or PlannerOptions()

    def plan(self, expression: Expression) -> PhysicalOperator:
        """Build the physical plan for ``expression``."""
        return self._plan(expression)

    # ------------------------------------------------------------------
    # recursive translation
    # ------------------------------------------------------------------
    def _plan(self, expression: Expression) -> PhysicalOperator:
        if isinstance(expression, RelationRef):
            return TableScan(self.database, expression.name)
        if isinstance(expression, LiteralRelation):
            return RelationScan(expression.relation, label=expression.label)
        if isinstance(expression, Project):
            return ProjectOp(self._plan(expression.child), expression.attributes)
        if isinstance(expression, Select):
            return Filter(self._plan(expression.child), expression.predicate)
        if isinstance(expression, Rename):
            return RenameOp(self._plan(expression.child), expression.mapping)
        if isinstance(expression, GroupBy):
            return HashAggregate(
                self._plan(expression.child),
                expression.grouping,
                {spec.output: spec.build() for spec in expression.aggregates},
            )
        if isinstance(expression, Union):
            return UnionOp(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, Intersection):
            return IntersectOp(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, Difference):
            return DifferenceOp(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, Product):
            return ProductOp(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, ThetaJoin):
            return NestedLoopsJoin(
                self._plan(expression.left), self._plan(expression.right), expression.predicate
            )
        if isinstance(expression, NaturalJoin):
            return HashJoin(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, SemiJoin):
            return HashSemiJoin(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, AntiJoin):
            return HashAntiJoin(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, LeftOuterJoin):
            return HashLeftOuterJoin(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, SmallDivide):
            algorithm = SMALL_DIVIDE_ALGORITHMS[self.options.small_divide_algorithm]
            return algorithm(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, GreatDivide):
            algorithm = GREAT_DIVIDE_ALGORITHMS[self.options.great_divide_algorithm]
            return algorithm(self._plan(expression.left), self._plan(expression.right))
        raise PlanningError(f"no physical mapping for {type(expression).__name__}")
