"""Cost-driven mapping of logical expressions to physical plans.

This is the second kind of transformation rule the paper describes in its
introduction: logical operators are mapped to physical operators (join →
hash-join, small divide → hash-division, …).  The mapping used to be
rule-driven — one hard-coded default per logical operator — but the paper's
own experiments show that no division algorithm dominates, so the planner
now *enumerates* the applicable algorithms per division (and hash vs
nested-loops per natural join), prices each alternative with the
:class:`~repro.optimizer.physical_cost.PhysicalCostModel` (cardinality
estimates × the operators' declarative cost descriptors, including
interesting-order exploitation for pre-clustered dividends), and picks the
cheapest.  Per-operator-kind overrides in :class:`PlannerOptions` remain as
a forced-choice escape hatch for the algorithm-comparison benchmarks.

Every cost-based (or forced) choice is recorded as a
:class:`~repro.optimizer.physical_cost.PlanDecision` on the chosen operator
and in :attr:`PhysicalPlanner.decisions`, so ``explain()`` can report the
rationale.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Optional, Union as TypingUnion

from repro.algebra.expressions import (
    AntiJoin,
    Difference,
    Expression,
    GreatDivide,
    GroupBy,
    Intersection,
    LeftOuterJoin,
    LiteralRelation,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    Select,
    SemiJoin,
    SmallDivide,
    ThetaJoin,
    Union,
)
from repro.errors import PlanningError
from repro.optimizer.physical_cost import PhysicalCostModel, PlanDecision, decision_for
from repro.optimizer.statistics import StatisticsCatalog
from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    JOIN_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    DifferenceOp,
    Filter,
    HashAggregate,
    HashAntiJoin,
    HashLeftOuterJoin,
    HashSemiJoin,
    IntersectOp,
    NestedLoopsJoin,
    PhysicalOperator,
    ProductOp,
    ProjectOp,
    RelationScan,
    RenameOp,
    TableScan,
    UnionOp,
)
from repro.physical.compile import CompilationReport, compile_plan
from repro.physical.division import MergeSortDivision
from repro.physical.parallel import (
    PartitionedAggregate,
    PartitionedDivision,
    PartitionedHashJoin,
)
from repro.relation.relation import Relation
from repro.storage.scan import StoredScan
from repro.storage.store import StoredRelation

__all__ = ["PlannerOptions", "PhysicalPlanner"]


@dataclass(frozen=True)
class PlannerOptions:
    """Physical algorithm choices for the logical→physical mapping.

    ``None`` (the default) means *cost-based selection*: the planner prices
    every applicable algorithm and picks the cheapest.  A string forces that
    algorithm for every operator of the kind — the escape hatch the
    algorithm-comparison benchmarks use.  Unknown names are reported (with
    the valid choices for that operator kind) as a :class:`PlanningError`
    when a plan is prepared, not when the options object is built and not
    at execution time.
    """

    #: Small-divide algorithm (``SMALL_DIVIDE_ALGORITHMS``) or ``None``.
    small_divide_algorithm: Optional[str] = None
    #: Great-divide algorithm (``GREAT_DIVIDE_ALGORITHMS``) or ``None``.
    great_divide_algorithm: Optional[str] = None
    #: Natural-join algorithm (``JOIN_ALGORITHMS``) or ``None``.
    join_algorithm: Optional[str] = None
    #: Worker-pool size for partition-parallel execution.  ``None``/1 keeps
    #: every operator serial; above 1 the cost model *additionally* prices
    #: a hash-partitioned parallel variant of each algorithm and the
    #: cheaper of serial vs parallel wins per operator — small inputs stay
    #: serial even at ``workers=8``.
    workers: Optional[int] = None
    #: Hash partitions per exchange (``None`` = same as ``workers``).
    partitions: Optional[int] = None
    #: Extra keyword arguments reserved for future algorithm tuning.
    extras: Mapping[str, str] = field(default_factory=dict)
    #: Segment-compilation mode: ``None``/``"auto"`` lets the planner compile
    #: every fusable segment (the current heuristic — compilation never
    #: loses), ``True``/``"on"`` forces it, ``False``/``"off"`` keeps the
    #: interpreted pipeline.  Unknown values raise :class:`PlanningError` at
    #: prepare time, like the algorithm overrides above.
    compile: TypingUnion[None, bool, str] = None

    def compile_mode(self) -> str:
        """Normalize :attr:`compile` to ``"auto"`` / ``"on"`` / ``"off"``."""
        value = self.compile
        if value is None or value == "auto":
            return "auto"
        if value is True or value == "on":
            return "on"
        if value is False or value == "off":
            return "off"
        raise PlanningError(
            f"PlannerOptions.compile: unknown compile mode {value!r}; "
            "choose from ['auto', 'off', 'on'] (or None/True/False)"
        )


#: (option attribute, registry, human-readable operator kind)
_ALGORITHM_CHOICES = (
    ("small_divide_algorithm", SMALL_DIVIDE_ALGORITHMS, "small divide"),
    ("great_divide_algorithm", GREAT_DIVIDE_ALGORITHMS, "great divide"),
    ("join_algorithm", JOIN_ALGORITHMS, "natural join"),
)


class PhysicalPlanner:
    """Translate a logical expression into an executable physical plan."""

    def __init__(
        self,
        database: Mapping[str, Relation],
        options: Optional[PlannerOptions] = None,
        statistics: Optional[StatisticsCatalog] = None,
    ) -> None:
        self.database = database
        self.options = options or PlannerOptions()
        self._statistics = statistics
        self._cost_model: Optional[PhysicalCostModel] = None
        #: Algorithm decisions of the most recent :meth:`plan` call.
        self.decisions: list[PlanDecision] = []
        #: Compilation report of the most recent :meth:`plan` call (``None``
        #: when compilation was off).
        self.compilation: Optional[CompilationReport] = None

    def plan(self, expression: Expression) -> PhysicalOperator:
        """Build the physical plan for ``expression``.

        Raises :class:`PlanningError` here — at prepare time — when an
        algorithm override names an unknown algorithm (or compile mode).
        """
        self.validate_options()
        self.decisions = []
        self.compilation = None
        if self._statistics is None:
            # No injected statistics (standalone planner): re-snapshot the
            # database per planning call so catalog mutations between plans
            # cannot leave the cost model pricing with stale statistics.
            # (The Optimizer injects its shared, analyze()-refreshed
            # catalog, so it never pays this re-collection.)
            self._cost_model = None
        plan = self._plan(expression)
        mode = self.options.compile_mode()
        if mode != "off":
            # "auto" and "on" currently coincide: fusing streaming segments
            # never loses, so the heuristic compiles everything fusable.
            self.compilation = compile_plan(plan, mode=mode)
        return plan

    def validate_options(self) -> None:
        """Check every forced algorithm against its kind's registry."""
        for attribute, registry, kind in _ALGORITHM_CHOICES:
            forced = getattr(self.options, attribute)
            if forced is not None and forced not in registry:
                raise PlanningError(
                    f"PlannerOptions.{attribute}: unknown {kind} algorithm {forced!r}; "
                    f"choose from {sorted(registry)} (or None for cost-based selection)"
                )
        for attribute in ("workers", "partitions"):
            value = getattr(self.options, attribute)
            if value is not None and value < 1:
                raise PlanningError(
                    f"PlannerOptions.{attribute} must be at least 1, got {value}"
                )
        self.options.compile_mode()

    @property
    def cost_model(self) -> PhysicalCostModel:
        """The physical cost model (statistics are gathered lazily)."""
        if self._cost_model is None:
            statistics = self._statistics
            if statistics is None:
                statistics = StatisticsCatalog.from_database(self.database)
            self._cost_model = PhysicalCostModel(
                statistics,
                workers=self.options.workers or 1,
                partitions=self.options.partitions,
            )
        return self._cost_model

    # ------------------------------------------------------------------
    # recursive translation
    # ------------------------------------------------------------------
    def _plan(self, expression: Expression) -> PhysicalOperator:
        if isinstance(expression, RelationRef):
            relation = self.database.get(expression.name)
            if isinstance(relation, StoredRelation):
                # Stored tables stream blocks from disk instead of slicing a
                # materialized relation; the table never enters memory whole.
                return StoredScan(relation, expression.name)
            return TableScan(self.database, expression.name)
        if isinstance(expression, LiteralRelation):
            return RelationScan(expression.relation, label=expression.label)
        if isinstance(expression, Project):
            return ProjectOp(self._plan(expression.child), expression.attributes)
        if isinstance(expression, Select):
            child = self._plan(expression.child)
            if (
                isinstance(child, StoredScan)
                and expression.predicate.attributes <= child.schema.name_set
            ):
                # Zone-map pushdown: the Filter keeps exact semantics; the
                # scan merely skips blocks that provably cannot match.
                child.set_skip_predicate(expression.predicate)
            return Filter(child, expression.predicate)
        if isinstance(expression, Rename):
            return RenameOp(self._plan(expression.child), expression.mapping)
        if isinstance(expression, GroupBy):
            return self._plan_group_by(expression)
        if isinstance(expression, Union):
            return UnionOp(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, Intersection):
            return IntersectOp(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, Difference):
            return DifferenceOp(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, Product):
            return ProductOp(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, ThetaJoin):
            return NestedLoopsJoin(
                self._plan(expression.left), self._plan(expression.right), expression.predicate
            )
        if isinstance(expression, NaturalJoin):
            return self._plan_natural_join(expression)
        if isinstance(expression, SemiJoin):
            return HashSemiJoin(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, AntiJoin):
            return HashAntiJoin(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, LeftOuterJoin):
            return HashLeftOuterJoin(self._plan(expression.left), self._plan(expression.right))
        if isinstance(expression, SmallDivide):
            return self._plan_division(
                expression,
                "small divide",
                self.options.small_divide_algorithm,
                self.cost_model.small_divide_alternatives,
            )
        if isinstance(expression, GreatDivide):
            return self._plan_division(
                expression,
                "great divide",
                self.options.great_divide_algorithm,
                self.cost_model.great_divide_alternatives,
            )
        raise PlanningError(f"no physical mapping for {type(expression).__name__}")

    # ------------------------------------------------------------------
    # cost-based operator choice
    # ------------------------------------------------------------------
    def _plan_division(self, expression, kind, forced, alternatives_for) -> PhysicalOperator:
        decision = decision_for(kind, alternatives_for(expression), forced)
        left = self._plan(expression.left)
        right = self._plan(expression.right)
        chosen = decision.chosen
        if chosen.workers > 1:
            operator: PhysicalOperator = PartitionedDivision(
                left,
                right,
                algorithm=chosen.name,
                kind="small" if kind == "small divide" else "great",
                partitions=chosen.partitions,
                workers=chosen.workers,
                assume_clustered=chosen.clustered,
            )
        elif chosen.operator is MergeSortDivision:
            operator = MergeSortDivision(left, right, assume_clustered=chosen.clustered)
        else:
            operator = chosen.operator(left, right)
        return self._record(operator, decision)

    def _plan_natural_join(self, expression: NaturalJoin) -> PhysicalOperator:
        decision = decision_for(
            "natural join",
            self.cost_model.natural_join_alternatives(expression),
            self.options.join_algorithm,
        )
        left = self._plan(expression.left)
        right = self._plan(expression.right)
        chosen = decision.chosen
        if chosen.workers > 1:
            operator: PhysicalOperator = PartitionedHashJoin(
                left,
                right,
                algorithm=chosen.name,
                partitions=chosen.partitions,
                workers=chosen.workers,
            )
        else:
            operator = chosen.operator(left, right)
        return self._record(operator, decision)

    def _plan_group_by(self, expression: GroupBy) -> PhysicalOperator:
        aggregations = {spec.output: spec.build() for spec in expression.aggregates}
        child = self._plan(expression.child)
        if (self.options.workers or 1) > 1 and len(expression.grouping):
            # Parallel sessions cost serial vs partitioned aggregation; the
            # decision is recorded either way so explain() shows the same
            # rationale shape regardless of which variant won.
            decision = decision_for(
                "aggregate", self.cost_model.aggregate_alternatives(expression)
            )
            chosen = decision.chosen
            if chosen.workers > 1:
                operator: PhysicalOperator = PartitionedAggregate(
                    child,
                    expression.grouping,
                    aggregations,
                    partitions=chosen.partitions,
                    workers=chosen.workers,
                    specs=expression.aggregates,
                )
            else:
                operator = HashAggregate(child, expression.grouping, aggregations)
            return self._record(operator, decision)
        return HashAggregate(child, expression.grouping, aggregations)

    def _record(self, operator: PhysicalOperator, decision: PlanDecision) -> PhysicalOperator:
        operator.decision = decision
        self.decisions.append(decision)
        return operator
