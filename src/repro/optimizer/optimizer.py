"""The optimizer facade: rewrite, cost, plan, execute.

:class:`Optimizer` wires the pieces together the way the paper's
introduction describes a rule-based optimizer: algebraic rewrite rules at
the logical level (the laws), then a mapping of logical operators to
physical operators, optionally followed by execution with statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.algebra.catalog import Catalog
from repro.algebra.expressions import Expression
from repro.laws.base import RewriteContext, RewriteRule
from repro.optimizer.cost import CostModel, CostReport
from repro.optimizer.physical_cost import PlanDecision
from repro.optimizer.planner import PhysicalPlanner, PlannerOptions
from repro.optimizer.rewriter import CostBasedRewriter, HeuristicRewriter, RewriteReport
from repro.optimizer.statistics import StatisticsCatalog, TableStatistics
from repro.physical.base import PhysicalOperator
from repro.physical.compile import CompilationReport
from repro.physical.executor import ExecutionResult, execute_plan

__all__ = ["OptimizationResult", "Optimizer"]


@dataclass
class OptimizationResult:
    """Everything the optimizer produced for one query."""

    original: Expression
    rewritten: Expression
    rewrite_report: RewriteReport
    original_cost: CostReport
    rewritten_cost: CostReport
    plan: PhysicalOperator
    #: Cost-based algorithm decisions made while building ``plan``.
    decisions: tuple[PlanDecision, ...] = ()
    #: Segment-compilation report (``None`` when compilation was off).
    compilation: Optional[CompilationReport] = None

    @property
    def rules_fired(self) -> list[str]:
        """Names of the rewrite rules that fired."""
        return self.rewrite_report.rules_fired

    @property
    def estimated_speedup(self) -> float:
        """Ratio of estimated costs (original / rewritten)."""
        if self.rewritten_cost.total_cost == 0:
            return float("inf")
        return self.original_cost.total_cost / self.rewritten_cost.total_cost


class Optimizer:
    """Rule-based optimizer with an optional cost-based search mode."""

    def __init__(
        self,
        catalog: Catalog,
        rules: Optional[Sequence[RewriteRule]] = None,
        planner_options: Optional[PlannerOptions] = None,
        cost_based: bool = False,
        allow_data_inspection: bool = True,
    ) -> None:
        self.catalog = catalog
        self.statistics = StatisticsCatalog.from_database(catalog)
        self.cost_model = CostModel(self.statistics)
        context = RewriteContext.from_catalog(catalog, static_only=not allow_data_inspection)
        if cost_based:
            self._rewriter = CostBasedRewriter(self.cost_model, rules=rules, context=context)
        else:
            self._rewriter = HeuristicRewriter(rules=rules, context=context)
        self._planner = PhysicalPlanner(catalog, planner_options, statistics=self.statistics)

    # ------------------------------------------------------------------
    # public API — the pipeline phases, callable separately so that the
    # session layer (repro.api) can cache their outputs independently
    # ------------------------------------------------------------------
    def rewrite(self, expression: Expression) -> RewriteReport:
        """Phase 1: apply the rewrite laws to ``expression``."""
        return self._rewriter.rewrite(expression)

    def cost_report(self, expression: Expression) -> CostReport:
        """Phase 2: estimated cost and output cardinality of an expression."""
        return self.cost_model.report(expression)

    def plan(self, expression: Expression) -> PhysicalOperator:
        """Phase 3: physical plan for ``expression`` exactly as given.

        The planner prices the applicable algorithms per division/join and
        picks the cheapest; the decisions of the most recent call are
        available as :attr:`planner_decisions`.
        """
        return self._planner.plan(expression)

    @property
    def planner_decisions(self) -> tuple[PlanDecision, ...]:
        """Algorithm decisions recorded by the most recent planning call."""
        return tuple(self._planner.decisions)

    @property
    def planner_compilation(self) -> Optional[CompilationReport]:
        """Compilation report of the most recent planning call."""
        return self._planner.compilation

    def analyze(self, names: Optional[Sequence[str]] = None) -> dict[str, TableStatistics]:
        """Recollect table statistics from the catalog's current relations.

        The ANALYZE path: refreshes cardinalities, distinct counts, min/max
        and scan-order sortedness for ``names`` (default: every table) in
        the shared :class:`StatisticsCatalog`, so subsequent planning uses
        the real data profile.  Returns the freshly gathered statistics.
        """
        return self.statistics.analyze(self.catalog, names)

    def optimize(
        self,
        expression: Expression,
        rewrite_report: Optional[RewriteReport] = None,
    ) -> OptimizationResult:
        """Run all phases: rewrite ``expression`` and produce a physical plan.

        Pass a precomputed ``rewrite_report`` (e.g. from a prepared-plan
        cache) to skip the rewrite phase.
        """
        if rewrite_report is None:
            rewrite_report = self.rewrite(expression)
        rewritten = rewrite_report.result
        plan = self.plan(rewritten)
        return OptimizationResult(
            original=expression,
            rewritten=rewritten,
            rewrite_report=rewrite_report,
            original_cost=self.cost_report(expression),
            rewritten_cost=self.cost_report(rewritten),
            plan=plan,
            decisions=self.planner_decisions,
            compilation=self.planner_compilation,
        )

    def execute(self, expression: Expression) -> ExecutionResult:
        """Optimize and execute ``expression`` against the catalog."""
        return execute_plan(self.optimize(expression).plan)

    def plan_without_rewriting(self, expression: Expression) -> PhysicalOperator:
        """Physical plan for the *unrewritten* expression (baseline in benches)."""
        return self.plan(expression)
