"""The optimizer facade: rewrite, cost, plan, execute.

:class:`Optimizer` wires the pieces together the way the paper's
introduction describes a rule-based optimizer: algebraic rewrite rules at
the logical level (the laws), then a mapping of logical operators to
physical operators, optionally followed by execution with statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.algebra.catalog import Catalog
from repro.algebra.expressions import Expression
from repro.laws.base import RewriteContext, RewriteRule
from repro.optimizer.cost import CostModel, CostReport
from repro.optimizer.planner import PhysicalPlanner, PlannerOptions
from repro.optimizer.rewriter import CostBasedRewriter, HeuristicRewriter, RewriteReport
from repro.optimizer.statistics import StatisticsCatalog
from repro.physical.base import PhysicalOperator
from repro.physical.executor import ExecutionResult, execute_plan

__all__ = ["OptimizationResult", "Optimizer"]


@dataclass
class OptimizationResult:
    """Everything the optimizer produced for one query."""

    original: Expression
    rewritten: Expression
    rewrite_report: RewriteReport
    original_cost: CostReport
    rewritten_cost: CostReport
    plan: PhysicalOperator

    @property
    def rules_fired(self) -> list[str]:
        """Names of the rewrite rules that fired."""
        return self.rewrite_report.rules_fired

    @property
    def estimated_speedup(self) -> float:
        """Ratio of estimated costs (original / rewritten)."""
        if self.rewritten_cost.total_cost == 0:
            return float("inf")
        return self.original_cost.total_cost / self.rewritten_cost.total_cost


class Optimizer:
    """Rule-based optimizer with an optional cost-based search mode."""

    def __init__(
        self,
        catalog: Catalog,
        rules: Optional[Sequence[RewriteRule]] = None,
        planner_options: Optional[PlannerOptions] = None,
        cost_based: bool = False,
        allow_data_inspection: bool = True,
    ) -> None:
        self.catalog = catalog
        self.statistics = StatisticsCatalog.from_database(catalog)
        self.cost_model = CostModel(self.statistics)
        context = RewriteContext.from_catalog(catalog, static_only=not allow_data_inspection)
        if cost_based:
            self._rewriter = CostBasedRewriter(self.cost_model, rules=rules, context=context)
        else:
            self._rewriter = HeuristicRewriter(rules=rules, context=context)
        self._planner = PhysicalPlanner(catalog, planner_options)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def optimize(self, expression: Expression) -> OptimizationResult:
        """Rewrite ``expression`` and produce a physical plan for it."""
        rewrite_report = self._rewriter.rewrite(expression)
        rewritten = rewrite_report.result
        return OptimizationResult(
            original=expression,
            rewritten=rewritten,
            rewrite_report=rewrite_report,
            original_cost=self.cost_model.report(expression),
            rewritten_cost=self.cost_model.report(rewritten),
            plan=self._planner.plan(rewritten),
        )

    def execute(self, expression: Expression) -> ExecutionResult:
        """Optimize and execute ``expression`` against the catalog."""
        return execute_plan(self.optimize(expression).plan)

    def plan_without_rewriting(self, expression: Expression) -> PhysicalOperator:
        """Physical plan for the *unrewritten* expression (baseline in benches)."""
        return self._planner.plan(expression)
