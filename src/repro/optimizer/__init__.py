"""Rule-based query optimizer: rewriter, statistics, cost model, planner."""

from repro.optimizer.cost import CostModel, CostReport
from repro.optimizer.optimizer import OptimizationResult, Optimizer
from repro.optimizer.physical_cost import PhysicalCostModel, PlanAlternative, PlanDecision
from repro.optimizer.planner import PhysicalPlanner, PlannerOptions
from repro.optimizer.rewriter import CostBasedRewriter, HeuristicRewriter, RewriteReport
from repro.optimizer.statistics import (
    CardinalityEstimator,
    Estimate,
    StatisticsCatalog,
    TableStatistics,
)

__all__ = [
    "CostModel",
    "CostReport",
    "Optimizer",
    "OptimizationResult",
    "PhysicalCostModel",
    "PlanAlternative",
    "PlanDecision",
    "PhysicalPlanner",
    "PlannerOptions",
    "HeuristicRewriter",
    "CostBasedRewriter",
    "RewriteReport",
    "CardinalityEstimator",
    "Estimate",
    "StatisticsCatalog",
    "TableStatistics",
]
