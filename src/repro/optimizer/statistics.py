"""Table statistics and cardinality estimation.

The estimator implements the textbook System-R style formulas (uniformity
and independence assumptions) extended with formulas for the division
operators: the selectivity of a small divide is estimated as the
probability that a dividend group of average size ``g`` drawn from a domain
of ``d`` distinct ``B``-values contains all ``|r2|`` divisor values.  These
estimates feed the cost model that ranks rewrite alternatives.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.algebra.expressions import (
    AntiJoin,
    Difference,
    Expression,
    GreatDivide,
    GroupBy,
    Intersection,
    LeftOuterJoin,
    LiteralRelation,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    Select,
    SemiJoin,
    SmallDivide,
    ThetaJoin,
    Union,
)
from repro.errors import SchemaError
from repro.relation.relation import Relation

__all__ = [
    "TableStatistics",
    "StatisticsCatalog",
    "CardinalityEstimator",
    "Estimate",
    "DEFAULT_SELECTIVITY",
]

#: Selectivity assumed for a predicate we know nothing about.
DEFAULT_SELECTIVITY = 0.33


def _non_decreasing(column: Iterable[Any]) -> bool:
    """Whether a column's values appear in non-decreasing (scan) order."""
    iterator = iter(column)
    try:
        previous = next(iterator)
    except StopIteration:
        return True
    try:
        for value in iterator:
            if value < previous:
                return False
            previous = value
    except TypeError:
        # Mixed incomparable types: no usable physical order.
        return False
    return True


def _lexicographic_prefix_length(tuples: list[tuple[Any, ...]], width: int) -> int:
    """Longest prefix length ``k`` with the scan lexicographically
    non-decreasing on the first ``k`` attributes.

    Captures *composite* clustering that per-attribute flags cannot: after
    ``relation.clustered(["a", "b"])`` the ``b`` column is not globally
    sorted (it resets within each ``a`` group), but the (a, b) combination
    is — equal (a, b) pairs are contiguous in the scan.
    """
    limit = width
    previous: tuple[Any, ...] | None = None
    for values in tuples:
        if previous is not None and limit:
            for index in range(limit):
                a, b = previous[index], values[index]
                if a == b:
                    continue
                try:
                    descending = b < a
                except TypeError:
                    descending = True
                if descending:
                    limit = index
                # The first differing column decides the lexicographic order
                # of every longer prefix, so stop comparing here.
                break
        if limit == 0:
            break
        previous = values
    return limit


@dataclass(frozen=True)
class TableStatistics:
    """Cardinality plus per-attribute statistics of one table.

    Beyond the distinct counts the System-R formulas need, ``analyze()``
    records per-attribute minima/maxima and — crucially for the physical
    planner — which attributes the table's *scan order* is sorted on
    (non-decreasing over :meth:`Relation.aligned_tuples`).  Order-exploiting
    algorithms (streaming merge-group division) are only priced as cheap
    when the dividend actually arrives clustered.
    """

    cardinality: int
    distinct_values: Mapping[str, int]
    minima: Mapping[str, Any] = field(default_factory=dict)
    maxima: Mapping[str, Any] = field(default_factory=dict)
    sorted_attributes: frozenset[str] = frozenset()
    #: Longest schema-order prefix the scan is *lexicographically* sorted
    #: on — records composite clustering (``clustered(["a", "b"])``) that
    #: the per-attribute ``sorted_attributes`` flags cannot express.
    lexicographic_prefix: tuple[str, ...] = ()
    #: Per-attribute frequency of the *most common* value (the top key).
    #: ``partition_skew`` derives from it: a hash-partition exchange on an
    #: attribute can never split the rows of one value, so the largest
    #: partition holds at least ``top_frequency / cardinality`` of the rows
    #: — the cost model uses that fraction to discount parallelism on
    #: heavily skewed keys.
    top_frequencies: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def from_relation(cls, relation: Relation) -> "TableStatistics":
        """Gather exact statistics from an in-memory relation.

        One columnar pass: ``zip(*aligned_tuples)`` transposes the cached
        tuple block, and every per-attribute statistic (distinct set,
        min/max, sortedness of the scan order) is computed from its column —
        no intermediate :class:`Relation` per attribute.

        Stored tables (:class:`~repro.storage.store.StoredRelation`) carry
        statistics gathered at save time in their file header; for them
        this is a metadata read — the blocks are never decoded.
        """
        stored = getattr(relation, "stored_statistics", None)
        if stored is not None:
            statistics = stored()
            if statistics is not None:
                return statistics
        tuples = relation.aligned_tuples()
        names = relation.schema.names
        distinct: dict[str, int] = {name: 0 for name in names}
        minima: dict[str, Any] = {}
        maxima: dict[str, Any] = {}
        sorted_names: set[str] = set()
        top_frequencies: dict[str, int] = {}
        prefix: tuple[str, ...] = ()
        if tuples:
            for name, column in zip(names, zip(*tuples)):
                counts = Counter(column)
                distinct[name] = len(counts)
                top_frequencies[name] = max(counts.values())
                try:
                    minima[name] = min(counts)
                    maxima[name] = max(counts)
                except TypeError:
                    pass
                if _non_decreasing(column):
                    sorted_names.add(name)
            prefix = names[: _lexicographic_prefix_length(tuples, len(names))]
        return cls(
            cardinality=len(tuples),
            distinct_values=distinct,
            minima=minima,
            maxima=maxima,
            sorted_attributes=frozenset(sorted_names),
            lexicographic_prefix=prefix,
            top_frequencies=top_frequencies,
        )

    def distinct(self, attribute: str) -> int:
        """Distinct count of one attribute (at least 1 to avoid zero division)."""
        return max(1, self.distinct_values.get(attribute, 1))

    def minimum(self, attribute: str) -> Any:
        """Smallest value of one attribute (``None`` when unknown)."""
        return self.minima.get(attribute)

    def maximum(self, attribute: str) -> Any:
        """Largest value of one attribute (``None`` when unknown)."""
        return self.maxima.get(attribute)

    def is_sorted(self, attribute: str) -> bool:
        """Whether the table's scan order is non-decreasing on ``attribute``."""
        return attribute in self.sorted_attributes

    def top_frequency(self, attribute: str) -> int:
        """Row count of the attribute's most frequent value (0 when unknown)."""
        return self.top_frequencies.get(attribute, 0)

    def partition_skew(self, attribute: str) -> float:
        """Fraction of the rows carrying the attribute's most frequent value.

        The lower bound on the largest hash partition when partitioning on
        this attribute (equal keys cannot be split): 0.0 means unknown or
        empty, 1.0 means every row shares one key and partitioning cannot
        help at all.
        """
        if not self.cardinality:
            return 0.0
        return self.top_frequency(attribute) / self.cardinality


class StatisticsCatalog:
    """Statistics for a collection of named tables."""

    def __init__(self, tables: Mapping[str, TableStatistics] | None = None) -> None:
        self._tables = dict(tables or {})

    @classmethod
    def from_database(cls, database: Mapping[str, Relation]) -> "StatisticsCatalog":
        """Exact statistics for every table of a database/catalog."""
        return cls({name: TableStatistics.from_relation(rel) for name, rel in database.items()})

    def analyze(
        self,
        database: Mapping[str, Relation],
        names: Iterable[str] | None = None,
    ) -> dict[str, TableStatistics]:
        """Recollect statistics for ``names`` (default: all tables) in place.

        The ``ANALYZE`` path: reads the relations straight out of the
        database/catalog and replaces the stored statistics, returning the
        freshly gathered entries.  Unknown names raise :class:`SchemaError`
        (the library's error contract), listing the known tables.
        """
        selected = list(database) if names is None else list(names)
        unknown = [name for name in selected if name not in database]
        if unknown:
            raise SchemaError(
                f"cannot analyze unknown table(s) {sorted(unknown)!r}; "
                f"known tables: {sorted(database)!r}"
            )
        gathered: dict[str, TableStatistics] = {}
        for name in selected:
            gathered[name] = TableStatistics.from_relation(database[name])
        self._tables.update(gathered)
        return gathered

    def add(self, name: str, statistics: TableStatistics) -> None:
        self._tables[name] = statistics

    def table(self, name: str) -> TableStatistics:
        """Statistics of a table; unknown tables get a neutral default."""
        return self._tables.get(name, TableStatistics(cardinality=1000, distinct_values={}))

    def tables(self) -> dict[str, TableStatistics]:
        """A snapshot of all stored per-table statistics."""
        return dict(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables


@dataclass(frozen=True)
class Estimate:
    """Estimated cardinality and per-attribute distinct counts of a subexpression."""

    cardinality: float
    distinct_values: Mapping[str, float]

    def distinct(self, attribute: str) -> float:
        return max(1.0, self.distinct_values.get(attribute, self.cardinality or 1.0))


#: Backwards-compatible alias (the estimate type used to be private).
_Estimate = Estimate


class CardinalityEstimator:
    """Estimates output cardinalities of logical expressions."""

    #: Maximum number of literal-relation statistics kept per estimator.
    LITERAL_CACHE_SIZE = 256

    def __init__(self, statistics: StatisticsCatalog) -> None:
        self._statistics = statistics
        # LiteralRelation statistics are exact but cost a columnar pass per
        # relation; cache them keyed by relation identity, bounded so a
        # long-lived session cannot pin arbitrarily many literals.  The
        # relation is pinned in the value while cached; after an eviction an
        # id() can be recycled, which the identity check in
        # :meth:`literal_statistics` guards against.
        self._literal_statistics: dict[int, tuple[Relation, TableStatistics]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def cardinality(self, expression: Expression) -> float:
        """Estimated number of output tuples of ``expression``."""
        return self._estimate(expression).cardinality

    def estimate(self, expression: Expression) -> Estimate:
        """Full estimate (cardinality plus per-attribute distinct counts)."""
        return self._estimate(expression)

    def literal_statistics(self, relation: Relation) -> TableStatistics:
        """Exact (cached) statistics of an in-memory literal relation."""
        cached = self._literal_statistics.get(id(relation))
        if cached is not None and cached[0] is relation:
            return cached[1]
        statistics = TableStatistics.from_relation(relation)
        if len(self._literal_statistics) >= self.LITERAL_CACHE_SIZE:
            # FIFO eviction: drop the oldest entry (dicts preserve insertion
            # order); reuse after eviction just re-runs the columnar pass.
            self._literal_statistics.pop(next(iter(self._literal_statistics)))
        self._literal_statistics[id(relation)] = (relation, statistics)
        return statistics

    # ------------------------------------------------------------------
    # recursive estimation
    # ------------------------------------------------------------------
    def _estimate(self, expression: Expression) -> _Estimate:
        if isinstance(expression, RelationRef):
            stats = self._statistics.table(expression.name)
            return _Estimate(
                cardinality=float(stats.cardinality),
                distinct_values={
                    name: float(stats.distinct(name)) for name in expression.schema.names
                },
            )
        if isinstance(expression, LiteralRelation):
            stats = self.literal_statistics(expression.relation)
            return _Estimate(
                cardinality=float(stats.cardinality),
                distinct_values={k: float(v) for k, v in stats.distinct_values.items()},
            )
        if isinstance(expression, (Project, Rename)):
            child = self._estimate(expression.child)
            kept = {
                name: child.distinct(name)
                for name in expression.schema.names
                if name in child.distinct_values or True
            }
            if isinstance(expression, Project):
                # Duplicate elimination: bounded by the product of distinct counts.
                bound = math.prod(min(child.distinct(name), child.cardinality) for name in expression.schema.names) if len(expression.schema) else 1.0
                return _Estimate(cardinality=min(child.cardinality, bound), distinct_values=kept)
            return _Estimate(cardinality=child.cardinality, distinct_values=kept)
        if isinstance(expression, Select):
            child = self._estimate(expression.child)
            selectivity = self._selectivity(expression, child)
            scaled = {name: value * selectivity for name, value in child.distinct_values.items()}
            return _Estimate(cardinality=child.cardinality * selectivity, distinct_values=scaled)
        if isinstance(expression, GroupBy):
            child = self._estimate(expression.child)
            groups = math.prod(child.distinct(name) for name in expression.grouping.names) if len(expression.grouping) else 1.0
            cardinality = min(child.cardinality, groups)
            return _Estimate(
                cardinality=cardinality,
                distinct_values={name: cardinality for name in expression.schema.names},
            )
        if isinstance(expression, Union):
            left, right = self._estimate(expression.left), self._estimate(expression.right)
            return _Estimate(
                cardinality=left.cardinality + right.cardinality,
                distinct_values={
                    name: left.distinct(name) + right.distinct(name)
                    for name in expression.schema.names
                },
            )
        if isinstance(expression, Intersection):
            left, right = self._estimate(expression.left), self._estimate(expression.right)
            cardinality = min(left.cardinality, right.cardinality) * 0.5
            return _Estimate(
                cardinality=cardinality,
                distinct_values={name: min(left.distinct(name), right.distinct(name)) for name in expression.schema.names},
            )
        if isinstance(expression, Difference):
            return self._estimate(expression.left)
        if isinstance(expression, (Product,)):
            left, right = self._estimate(expression.left), self._estimate(expression.right)
            distinct = dict(left.distinct_values)
            distinct.update(right.distinct_values)
            return _Estimate(cardinality=left.cardinality * right.cardinality, distinct_values=distinct)
        if isinstance(expression, ThetaJoin):
            left, right = self._estimate(expression.left), self._estimate(expression.right)
            distinct = dict(left.distinct_values)
            distinct.update(right.distinct_values)
            selectivity = self._join_selectivity(expression, left, right)
            return _Estimate(
                cardinality=left.cardinality * right.cardinality * selectivity,
                distinct_values=distinct,
            )
        if isinstance(expression, (NaturalJoin, LeftOuterJoin)):
            left, right = self._estimate(expression.left), self._estimate(expression.right)
            shared = expression.left.schema.intersection(expression.right.schema)
            denominator = math.prod(max(left.distinct(n), right.distinct(n)) for n in shared.names) if len(shared) else 1.0
            cardinality = left.cardinality * right.cardinality / max(denominator, 1.0)
            if isinstance(expression, LeftOuterJoin):
                cardinality = max(cardinality, left.cardinality)
            distinct = dict(left.distinct_values)
            distinct.update(right.distinct_values)
            return _Estimate(cardinality=cardinality, distinct_values=distinct)
        if isinstance(expression, (SemiJoin, AntiJoin)):
            left = self._estimate(expression.left)
            right = self._estimate(expression.right)
            shared = expression.left.schema.intersection(expression.right.schema)
            if len(shared):
                # Fraction of the left rows whose shared-attribute value also
                # occurs on the right (uniformity assumption).
                matching = math.prod(
                    min(1.0, right.distinct(name) / left.distinct(name)) for name in shared.names
                )
            else:
                matching = 1.0 if right.cardinality else 0.0
            selectivity = matching if isinstance(expression, SemiJoin) else 1.0 - matching
            return _Estimate(
                cardinality=left.cardinality * selectivity,
                distinct_values={
                    name: value * selectivity for name, value in left.distinct_values.items()
                },
            )
        if isinstance(expression, SmallDivide):
            return self._estimate_small_divide(expression)
        if isinstance(expression, GreatDivide):
            return self._estimate_great_divide(expression)
        # Unknown node type: be conservative.
        children = [self._estimate(child) for child in expression.children]
        cardinality = max((child.cardinality for child in children), default=1.0)
        return _Estimate(cardinality=cardinality, distinct_values={})

    # ------------------------------------------------------------------
    # operator-specific formulas
    # ------------------------------------------------------------------
    def _selectivity(self, expression: Select, child: _Estimate) -> float:
        from repro.algebra.predicates import And, Comparison, Not, Or, TruePredicate, FalsePredicate

        predicate = expression.predicate
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, FalsePredicate):
            return 0.0
        if isinstance(predicate, Comparison):
            if predicate.operator == "=":
                attributes = sorted(predicate.attributes)
                if attributes:
                    return 1.0 / child.distinct(attributes[0])
                return DEFAULT_SELECTIVITY
            if predicate.operator == "!=":
                return 1.0 - DEFAULT_SELECTIVITY
            return self._range_selectivity(expression.child, predicate)
        if isinstance(predicate, And):
            result = 1.0
            for operand in predicate.operands:
                result *= self._selectivity(Select(expression.child, operand), child)
            return result
        if isinstance(predicate, Or):
            result = 1.0
            for operand in predicate.operands:
                result *= 1.0 - self._selectivity(Select(expression.child, operand), child)
            return 1.0 - result
        if isinstance(predicate, Not):
            return 1.0 - self._selectivity(Select(expression.child, predicate.operand), child)
        return DEFAULT_SELECTIVITY

    #: Range comparisons mirrored for a literal on the left-hand side.
    _MIRRORED_OPERATORS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

    def _range_selectivity(self, expression: Expression, predicate: Any) -> float:
        """Selectivity of a range comparison via min/max interpolation.

        When the compared attribute's bounds are known (stored-table zone
        metadata or analyzed statistics reachable through the child
        expression), a ``attr < literal`` predicate is priced as the linear
        fraction of the ``[min, max]`` interval it selects — the classic
        uniformity interpolation.  Anything unresolvable (no bounds,
        attr-vs-attr comparison, non-numeric values) falls back to
        :data:`DEFAULT_SELECTIVITY`.
        """
        from repro.algebra.predicates import AttributeRef, Literal

        left, operator, right = predicate.left, predicate.operator, predicate.right
        if isinstance(left, Literal) and isinstance(right, AttributeRef):
            left, right = right, left
            operator = self._MIRRORED_OPERATORS.get(operator, operator)
        if not (isinstance(left, AttributeRef) and isinstance(right, Literal)):
            return DEFAULT_SELECTIVITY
        if operator not in self._MIRRORED_OPERATORS:
            return DEFAULT_SELECTIVITY
        low, high = self._column_bounds(expression, left.name)
        value = right.value
        numbers = (int, float)
        if not (
            isinstance(low, numbers)
            and isinstance(high, numbers)
            and isinstance(value, numbers)
            and not isinstance(low, bool)
            and not isinstance(high, bool)
            and not isinstance(value, bool)
        ):
            return DEFAULT_SELECTIVITY
        if high <= low:
            # Degenerate (single-valued) column: the comparison either takes
            # everything or nothing, modulo the open/closed endpoint.
            fraction = 1.0 if value > low or (value == low and operator in ("<=", ">=")) else 0.0
            if operator in ("<", "<="):
                selectivity = fraction
            else:
                selectivity = 1.0 if value < low or (value == low and operator == ">=") else 0.0
            return min(max(selectivity, 0.001), 1.0)
        fraction = (value - low) / (high - low)
        fraction = min(max(fraction, 0.0), 1.0)
        selectivity = fraction if operator in ("<", "<=") else 1.0 - fraction
        return min(max(selectivity, 0.001), 1.0)

    def _column_bounds(self, expression: Expression, attribute: str) -> tuple[Any, Any]:
        """(min, max) of ``attribute`` at the base table feeding ``expression``.

        Descends through order-preserving wrappers to the nearest base
        relation; anything narrowing the column's range on the way down
        (another selection) only makes the interpolation conservative.
        Returns ``(None, None)`` when the bounds cannot be traced.
        """
        if isinstance(expression, RelationRef):
            stats = self._statistics.table(expression.name)
            return stats.minimum(attribute), stats.maximum(attribute)
        if isinstance(expression, LiteralRelation):
            stats = self.literal_statistics(expression.relation)
            return stats.minimum(attribute), stats.maximum(attribute)
        if isinstance(expression, (Select, Project)):
            return self._column_bounds(expression.child, attribute)
        if isinstance(expression, Rename):
            inverse = {new: old for old, new in expression.mapping.items()}
            return self._column_bounds(expression.child, inverse.get(attribute, attribute))
        return (None, None)

    def _join_selectivity(self, expression: ThetaJoin, left: _Estimate, right: _Estimate) -> float:
        from repro.algebra.predicates import Comparison

        predicate = expression.predicate
        if isinstance(predicate, Comparison) and predicate.is_equi_comparison:
            attributes = sorted(predicate.attributes)
            denominators = [
                left.distinct(a) if a in expression.left.schema else right.distinct(a)
                for a in attributes
            ]
            return 1.0 / max(max(denominators, default=1.0), 1.0)
        return DEFAULT_SELECTIVITY

    def _estimate_small_divide(self, expression: SmallDivide) -> _Estimate:
        dividend = self._estimate(expression.left)
        divisor = self._estimate(expression.right)
        quotient_schema = expression.schema
        b_schema = expression.right.schema
        candidates = math.prod(dividend.distinct(name) for name in quotient_schema.names)
        candidates = min(candidates, dividend.cardinality) or 1.0
        group_size = dividend.cardinality / max(candidates, 1.0)
        domain = math.prod(dividend.distinct(name) for name in b_schema.names) or 1.0
        # Probability that one group of `group_size` values drawn from `domain`
        # contains one particular divisor value, raised to |divisor|.
        p_single = min(1.0, group_size / max(domain, 1.0))
        selectivity = p_single ** max(divisor.cardinality, 0.0)
        cardinality = candidates * selectivity
        return _Estimate(
            cardinality=cardinality,
            distinct_values={name: cardinality for name in quotient_schema.names},
        )

    def _estimate_great_divide(self, expression: GreatDivide) -> _Estimate:
        dividend = self._estimate(expression.left)
        divisor = self._estimate(expression.right)
        shared = expression.left.schema.intersection(expression.right.schema)
        a_schema = expression.left.schema.difference(shared)
        c_schema = expression.right.schema.difference(shared)
        candidates = min(
            math.prod(dividend.distinct(name) for name in a_schema.names), dividend.cardinality
        ) or 1.0
        groups = min(
            math.prod(divisor.distinct(name) for name in c_schema.names) if len(c_schema) else 1.0,
            divisor.cardinality or 1.0,
        ) or 1.0
        group_size = dividend.cardinality / max(candidates, 1.0)
        divisor_group_size = divisor.cardinality / max(groups, 1.0)
        domain = math.prod(dividend.distinct(name) for name in shared.names) or 1.0
        p_single = min(1.0, group_size / max(domain, 1.0))
        selectivity = p_single ** max(divisor_group_size, 0.0)
        cardinality = candidates * groups * selectivity
        distinct = {name: cardinality for name in expression.schema.names}
        return _Estimate(cardinality=cardinality, distinct_values=distinct)
