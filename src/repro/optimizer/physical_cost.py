"""Physical cost model: pricing algorithm alternatives for one logical operator.

The logical cost model (:mod:`repro.optimizer.cost`) ranks *rewrite*
alternatives; this module ranks *algorithm* alternatives for a single
logical operator — the paper's observation that no division algorithm
dominates (hash, merge-sort, nested-loops and the algebra simulation each
win under different dividend/divisor shapes) made operational.

Each physical operator class carries a declarative
:class:`~repro.physical.base.PhysicalProperties` descriptor; the model
combines those coefficients with the cardinality estimator's quantities
(input sizes, quotient-candidate counts, divisor-group counts) and with the
statistics' *interesting order* information: when the dividend's scan order
is already clustered on the quotient attributes, sort-based division is not
charged its sort (and runs in its cheaper streaming mode).

The produced :class:`PlanDecision` objects are attached to the chosen
operators so ``explain()`` can show the rationale — chosen algorithm,
estimated cost, and the costs of the alternatives it beat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.algebra.expressions import (
    Expression,
    GreatDivide,
    LiteralRelation,
    NaturalJoin,
    Project,
    RelationRef,
    Rename,
    Select,
    SmallDivide,
)
from repro.optimizer.statistics import CardinalityEstimator, StatisticsCatalog
from repro.physical import JOIN_ALGORITHMS, PhysicalOperator
from repro.physical.division import GREAT_DIVIDE_ALGORITHMS, SMALL_DIVIDE_ALGORITHMS

__all__ = ["PlanAlternative", "PlanDecision", "PhysicalCostModel", "decision_for"]


@dataclass(frozen=True)
class PlanAlternative:
    """One priced algorithm candidate for a logical operator."""

    name: str
    operator: type[PhysicalOperator]
    cost: float
    #: Whether the price assumes (and the operator should exploit) an input
    #: clustered on the grouping attributes.
    clustered: bool = False

    def __lt__(self, other: "PlanAlternative") -> bool:
        return (self.cost, self.name) < (other.cost, other.name)


@dataclass(frozen=True)
class PlanDecision:
    """Why the planner picked one algorithm: the full priced slate.

    ``alternatives`` is sorted cheapest-first and includes the chosen entry;
    ``forced`` marks a per-operator override that bypassed the costing.
    """

    kind: str
    chosen: PlanAlternative
    forced: bool
    alternatives: tuple[PlanAlternative, ...]

    def describe(self) -> str:
        """One-line rationale for EXPLAIN output."""
        mode = "forced" if self.forced else "cost-based"
        parts = [f"algorithm={self.chosen.name} ({mode}, est cost {self.chosen.cost:.0f}"]
        if self.chosen.clustered:
            parts.append(", clustered input: sort waived")
        parts.append(")")
        others = [alt for alt in self.alternatives if alt.name != self.chosen.name]
        if others:
            listed = ", ".join(f"{alt.name}={alt.cost:.0f}" for alt in others)
            parts.append(f"; alternatives: {listed}")
        return "".join(parts)


class PhysicalCostModel:
    """Prices algorithm alternatives from operator descriptors + statistics."""

    def __init__(self, statistics: StatisticsCatalog) -> None:
        self._statistics = statistics
        self._estimator = CardinalityEstimator(statistics)

    # ------------------------------------------------------------------
    # interesting orders
    # ------------------------------------------------------------------
    def ordered_attributes(self, expression: Expression) -> frozenset[str]:
        """Attributes the expression's *scan order* is sorted on.

        Base tables report the sortedness flags gathered by ``analyze()``;
        order survives the streaming, order-preserving operators (selection,
        renaming, duplicate-eliminating projection — first-seen order) and
        is lost everywhere else.
        """
        if isinstance(expression, RelationRef):
            return self._statistics.table(expression.name).sorted_attributes
        if isinstance(expression, LiteralRelation):
            return self._estimator.literal_statistics(expression.relation).sorted_attributes
        if isinstance(expression, Select):
            return self.ordered_attributes(expression.child)
        if isinstance(expression, Rename):
            inner = self.ordered_attributes(expression.child)
            mapping = expression.mapping
            return frozenset(mapping.get(name, name) for name in inner)
        if isinstance(expression, Project):
            kept = set(expression.schema.names)
            return frozenset(self.ordered_attributes(expression.child) & kept)
        return frozenset()

    def clustered_prefix(self, expression: Expression) -> tuple[str, ...]:
        """The composite lexicographic-sort prefix of the expression's scan.

        Complements :meth:`ordered_attributes`: after
        ``relation.clustered(["a", "b"])`` only ``a`` is globally
        non-decreasing, but the (a, b) *combination* is still contiguous in
        the scan — which is all the streaming merge division needs.
        """
        if isinstance(expression, RelationRef):
            return self._statistics.table(expression.name).lexicographic_prefix
        if isinstance(expression, LiteralRelation):
            return self._estimator.literal_statistics(expression.relation).lexicographic_prefix
        if isinstance(expression, Select):
            return self.clustered_prefix(expression.child)
        if isinstance(expression, Rename):
            mapping = expression.mapping
            return tuple(
                mapping.get(name, name) for name in self.clustered_prefix(expression.child)
            )
        return ()

    # ------------------------------------------------------------------
    # alternatives per logical operator kind
    # ------------------------------------------------------------------
    def small_divide_alternatives(self, expression: SmallDivide) -> list[PlanAlternative]:
        """All small-divide algorithms priced for this dividend/divisor shape."""
        dividend = self._estimator.estimate(expression.left)
        divisor = self._estimator.estimate(expression.right)
        quotient_names = expression.schema.names
        candidates = self._group_count(dividend, quotient_names)
        quantities = {
            "left": dividend.cardinality,
            "right": divisor.cardinality,
            "candidates": candidates,
            "divisor_groups": 1.0,
        }
        output = self._estimator.cardinality(expression)
        clustered = self._clustered_on(expression.left, quotient_names)
        return sorted(
            self._price(name, operator, quantities, output, clustered)
            for name, operator in SMALL_DIVIDE_ALGORITHMS.items()
        )

    def great_divide_alternatives(self, expression: GreatDivide) -> list[PlanAlternative]:
        """All great-divide algorithms priced for this shape."""
        dividend = self._estimator.estimate(expression.left)
        divisor = self._estimator.estimate(expression.right)
        shared = expression.left.schema.intersection(expression.right.schema)
        a_names = expression.left.schema.difference(shared).names
        c_names = expression.right.schema.difference(shared).names
        quantities = {
            "left": dividend.cardinality,
            "right": divisor.cardinality,
            "candidates": self._group_count(dividend, a_names),
            "divisor_groups": self._group_count(divisor, c_names),
        }
        output = self._estimator.cardinality(expression)
        clustered = self._clustered_on(expression.left, a_names)
        return sorted(
            self._price(name, operator, quantities, output, clustered)
            for name, operator in GREAT_DIVIDE_ALGORITHMS.items()
        )

    def natural_join_alternatives(self, expression: NaturalJoin) -> list[PlanAlternative]:
        """Hash join vs nested loops, priced on the input sizes."""
        left = self._estimator.cardinality(expression.left)
        right = self._estimator.cardinality(expression.right)
        quantities = {"left": left, "right": right, "candidates": left, "divisor_groups": 1.0}
        output = self._estimator.cardinality(expression)
        return sorted(
            self._price(name, operator, quantities, output, clustered=False)
            for name, operator in JOIN_ALGORITHMS.items()
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _price(
        self,
        name: str,
        operator: type[PhysicalOperator],
        quantities: dict[str, float],
        output: float,
        clustered: bool,
    ) -> PlanAlternative:
        props = operator.properties
        exploits_order = props.sort_factor > 0.0 or props.clustered_input_discount != 1.0
        use_clustered = clustered and exploits_order
        per_input = props.per_input_cost * (
            props.clustered_input_discount if use_clustered else 1.0
        )
        inputs = quantities["left"] + quantities["right"]
        cost = props.startup_cost + per_input * inputs + props.per_output_cost * output
        if not props.streaming:
            # Blocking operators materialize their result before the first
            # tuple flows downstream — charged as half a touch per output.
            cost += 0.5 * output
        if props.sort_factor and not use_clustered:
            sort_n = max(quantities["left"], 2.0)
            cost += props.sort_factor * sort_n * math.log2(sort_n)
        if props.pairwise_factor:
            first, second = props.pairwise_operands
            cost += props.pairwise_factor * quantities[first] * quantities[second]
        return PlanAlternative(name=name, operator=operator, cost=cost, clustered=use_clustered)

    def _group_count(self, estimate, names) -> float:
        """Estimated number of distinct groups over ``names`` (≥ 1)."""
        if not len(names):
            return 1.0
        groups = math.prod(estimate.distinct(name) for name in names)
        return max(1.0, min(groups, estimate.cardinality or 1.0))

    def _clustered_on(self, expression: Expression, names) -> bool:
        """Whether the expression's scan order clusters the given attributes.

        Two sufficient conditions: every attribute individually globally
        non-decreasing (pointwise order ⇒ equal combinations contiguous),
        or the attribute set forms a prefix of the scan's lexicographic
        sort order.
        """
        if not len(names):
            return False
        ordered = self.ordered_attributes(expression)
        if all(name in ordered for name in names):
            return True
        prefix = self.clustered_prefix(expression)
        width = len(names)
        return len(prefix) >= width and set(prefix[:width]) == set(names)

    @property
    def estimator(self) -> CardinalityEstimator:
        """The underlying cardinality estimator (shared with callers)."""
        return self._estimator


def decision_for(
    kind: str,
    alternatives: list[PlanAlternative],
    forced: Optional[str] = None,
) -> PlanDecision:
    """Build the decision record: cheapest alternative, or the forced one."""
    ranked = tuple(sorted(alternatives))
    if forced is None:
        return PlanDecision(kind=kind, chosen=ranked[0], forced=False, alternatives=ranked)
    chosen = next(alt for alt in ranked if alt.name == forced)
    return PlanDecision(kind=kind, chosen=chosen, forced=True, alternatives=ranked)
