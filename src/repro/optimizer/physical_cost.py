"""Physical cost model: pricing algorithm alternatives for one logical operator.

The logical cost model (:mod:`repro.optimizer.cost`) ranks *rewrite*
alternatives; this module ranks *algorithm* alternatives for a single
logical operator — the paper's observation that no division algorithm
dominates (hash, merge-sort, nested-loops and the algebra simulation each
win under different dividend/divisor shapes) made operational.

Each physical operator class carries a declarative
:class:`~repro.physical.base.PhysicalProperties` descriptor; the model
combines those coefficients with the cardinality estimator's quantities
(input sizes, quotient-candidate counts, divisor-group counts) and with the
statistics' *interesting order* information: when the dividend's scan order
is already clustered on the quotient attributes, sort-based division is not
charged its sort (and runs in its cheaper streaming mode).

The produced :class:`PlanDecision` objects are attached to the chosen
operators so ``explain()`` can show the rationale — chosen algorithm,
estimated cost, and the costs of the alternatives it beat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.algebra.expressions import (
    Expression,
    GreatDivide,
    GroupBy,
    LiteralRelation,
    NaturalJoin,
    Project,
    RelationRef,
    Rename,
    Select,
    SmallDivide,
)
from repro.optimizer.statistics import CardinalityEstimator, StatisticsCatalog, TableStatistics
from repro.physical import JOIN_ALGORITHMS, HashAggregate, PhysicalOperator
from repro.physical.division import GREAT_DIVIDE_ALGORITHMS, SMALL_DIVIDE_ALGORITHMS

__all__ = ["PlanAlternative", "PlanDecision", "PhysicalCostModel", "decision_for"]

#: Abstract-cost charge per pool worker: process dispatch, block pickling
#: and result shipping.  Sets the estimated-cardinality threshold below
#: which the planner refuses to parallelize (with the default coefficients,
#: parallel execution starts to pay off around ~15–20k input tuples).
PARALLEL_WORKER_STARTUP = 4000.0

#: Per-input-tuple cost of the hash-partition exchange pass (hash + bucket
#: append + cross-process copy of the aligned tuple blocks).
EXCHANGE_PER_TUPLE = 0.5


@dataclass(frozen=True)
class PlanAlternative:
    """One priced algorithm candidate for a logical operator."""

    name: str
    operator: type[PhysicalOperator]
    cost: float
    #: Whether the price assumes (and the operator should exploit) an input
    #: clustered on the grouping attributes.
    clustered: bool = False
    #: Degree of parallelism this price assumes (1 = serial execution;
    #: > 1 = the algorithm wrapped in a hash-partition exchange).
    workers: int = 1
    #: Number of hash partitions the exchange splits the input into.
    partitions: int = 1

    def __lt__(self, other: "PlanAlternative") -> bool:
        return (self.cost, self.name, self.workers) < (other.cost, other.name, other.workers)

    def label(self) -> str:
        """Display label distinguishing the parallel variant of a name."""
        return self.name if self.workers == 1 else f"{self.name}[dop={self.workers}]"


@dataclass(frozen=True)
class PlanDecision:
    """Why the planner picked one algorithm: the full priced slate.

    ``alternatives`` is sorted cheapest-first and includes the chosen entry;
    ``forced`` marks a per-operator override that bypassed the costing.
    """

    kind: str
    chosen: PlanAlternative
    forced: bool
    alternatives: tuple[PlanAlternative, ...]

    def describe(self) -> str:
        """One-line rationale for EXPLAIN output."""
        mode = "forced" if self.forced else "cost-based"
        parts = [f"algorithm={self.chosen.name} ({mode}, est cost {self.chosen.cost:.0f}"]
        if self.chosen.clustered:
            parts.append(", clustered input: sort waived")
        if self.chosen.workers > 1:
            parts.append(f", dop={self.chosen.workers}, partitions={self.chosen.partitions}")
        parts.append(")")
        others = [alt for alt in self.alternatives if alt is not self.chosen]
        if others:
            listed = ", ".join(f"{alt.label()}={alt.cost:.0f}" for alt in others)
            parts.append(f"; alternatives: {listed}")
        return "".join(parts)


class PhysicalCostModel:
    """Prices algorithm alternatives from operator descriptors + statistics.

    With ``workers > 1`` every partitionable algorithm is additionally
    priced as a *parallel* variant: the serial cost divided by the
    effective degree of parallelism, plus a per-worker startup charge and a
    per-tuple exchange charge.  The startup charge makes parallelism lose
    below an input-cardinality threshold, and the effective DOP is
    discounted by the partition-key *skew* (top-key frequency gathered by
    ``analyze()``) — hash partitioning cannot split one key's rows, so the
    speedup is capped at ``1 / skew``.
    """

    def __init__(
        self,
        statistics: StatisticsCatalog,
        workers: int = 1,
        partitions: Optional[int] = None,
    ) -> None:
        self._statistics = statistics
        self._estimator = CardinalityEstimator(statistics)
        self._workers = max(1, workers)
        self._partitions = partitions if partitions is not None else self._workers

    # ------------------------------------------------------------------
    # interesting orders
    # ------------------------------------------------------------------
    def ordered_attributes(self, expression: Expression) -> frozenset[str]:
        """Attributes the expression's *scan order* is sorted on.

        Base tables report the sortedness flags gathered by ``analyze()``;
        order survives the streaming, order-preserving operators (selection,
        renaming, duplicate-eliminating projection — first-seen order) and
        is lost everywhere else.
        """
        if isinstance(expression, RelationRef):
            return self._statistics.table(expression.name).sorted_attributes
        if isinstance(expression, LiteralRelation):
            return self._estimator.literal_statistics(expression.relation).sorted_attributes
        if isinstance(expression, Select):
            return self.ordered_attributes(expression.child)
        if isinstance(expression, Rename):
            inner = self.ordered_attributes(expression.child)
            mapping = expression.mapping
            return frozenset(mapping.get(name, name) for name in inner)
        if isinstance(expression, Project):
            kept = set(expression.schema.names)
            return frozenset(self.ordered_attributes(expression.child) & kept)
        return frozenset()

    def clustered_prefix(self, expression: Expression) -> tuple[str, ...]:
        """The composite lexicographic-sort prefix of the expression's scan.

        Complements :meth:`ordered_attributes`: after
        ``relation.clustered(["a", "b"])`` only ``a`` is globally
        non-decreasing, but the (a, b) *combination* is still contiguous in
        the scan — which is all the streaming merge division needs.
        """
        if isinstance(expression, RelationRef):
            return self._statistics.table(expression.name).lexicographic_prefix
        if isinstance(expression, LiteralRelation):
            return self._estimator.literal_statistics(expression.relation).lexicographic_prefix
        if isinstance(expression, Select):
            return self.clustered_prefix(expression.child)
        if isinstance(expression, Rename):
            mapping = expression.mapping
            return tuple(
                mapping.get(name, name) for name in self.clustered_prefix(expression.child)
            )
        return ()

    # ------------------------------------------------------------------
    # alternatives per logical operator kind
    # ------------------------------------------------------------------
    def small_divide_alternatives(self, expression: SmallDivide) -> list[PlanAlternative]:
        """All small-divide algorithms priced for this dividend/divisor shape."""
        dividend = self._estimator.estimate(expression.left)
        divisor = self._estimator.estimate(expression.right)
        quotient_names = expression.schema.names
        candidates = self._group_count(dividend, quotient_names)
        quantities = {
            "left": dividend.cardinality,
            "right": divisor.cardinality,
            "candidates": candidates,
            "divisor_groups": 1.0,
        }
        output = self._estimator.cardinality(expression)
        clustered = self._clustered_on(expression.left, quotient_names)
        serial = [
            self._price(name, operator, quantities, output, clustered)
            for name, operator in SMALL_DIVIDE_ALGORITHMS.items()
        ]
        return self._with_parallel(serial, quantities, self._partition_skew(expression.left, quotient_names))

    def great_divide_alternatives(self, expression: GreatDivide) -> list[PlanAlternative]:
        """All great-divide algorithms priced for this shape."""
        dividend = self._estimator.estimate(expression.left)
        divisor = self._estimator.estimate(expression.right)
        shared = expression.left.schema.intersection(expression.right.schema)
        a_names = expression.left.schema.difference(shared).names
        c_names = expression.right.schema.difference(shared).names
        quantities = {
            "left": dividend.cardinality,
            "right": divisor.cardinality,
            "candidates": self._group_count(dividend, a_names),
            "divisor_groups": self._group_count(divisor, c_names),
        }
        output = self._estimator.cardinality(expression)
        clustered = self._clustered_on(expression.left, a_names)
        serial = [
            self._price(name, operator, quantities, output, clustered)
            for name, operator in GREAT_DIVIDE_ALGORITHMS.items()
        ]
        return self._with_parallel(serial, quantities, self._partition_skew(expression.left, a_names))

    def natural_join_alternatives(self, expression: NaturalJoin) -> list[PlanAlternative]:
        """Hash join vs nested loops, priced on the input sizes."""
        left = self._estimator.cardinality(expression.left)
        right = self._estimator.cardinality(expression.right)
        quantities = {"left": left, "right": right, "candidates": left, "divisor_groups": 1.0}
        output = self._estimator.cardinality(expression)
        serial = [
            self._price(name, operator, quantities, output, clustered=False)
            for name, operator in JOIN_ALGORITHMS.items()
        ]
        shared = expression.left.schema.intersection(expression.right.schema)
        if not len(shared):
            # A cross product has no join key to partition on.
            return sorted(serial)
        skew = max(
            self._partition_skew(expression.left, shared.names),
            self._partition_skew(expression.right, shared.names),
        )
        return self._with_parallel(serial, quantities, skew)

    def aggregate_alternatives(self, expression: GroupBy) -> list[PlanAlternative]:
        """Serial hash aggregation vs its hash-partitioned parallel variant."""
        child = self._estimator.estimate(expression.child)
        quantities = {
            "left": child.cardinality,
            "right": 0.0,
            "candidates": child.cardinality,
            "divisor_groups": 1.0,
        }
        output = self._estimator.cardinality(expression)
        serial = [self._price("hash", HashAggregate, quantities, output, clustered=False)]
        if not len(expression.grouping):
            # A grand total is one global group; it cannot be partitioned.
            return serial
        skew = self._partition_skew(expression.child, expression.grouping.names)
        return self._with_parallel(serial, quantities, skew)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _price(
        self,
        name: str,
        operator: type[PhysicalOperator],
        quantities: dict[str, float],
        output: float,
        clustered: bool,
    ) -> PlanAlternative:
        props = operator.properties
        exploits_order = props.sort_factor > 0.0 or props.clustered_input_discount != 1.0
        use_clustered = clustered and exploits_order
        per_input = props.per_input_cost * (
            props.clustered_input_discount if use_clustered else 1.0
        )
        inputs = quantities["left"] + quantities["right"]
        cost = props.startup_cost + per_input * inputs + props.per_output_cost * output
        if not props.streaming:
            # Blocking operators materialize their result before the first
            # tuple flows downstream — charged as half a touch per output.
            cost += 0.5 * output
        if props.sort_factor and not use_clustered:
            sort_n = max(quantities["left"], 2.0)
            cost += props.sort_factor * sort_n * math.log2(sort_n)
        if props.pairwise_factor:
            first, second = props.pairwise_operands
            cost += props.pairwise_factor * quantities[first] * quantities[second]
        return PlanAlternative(name=name, operator=operator, cost=cost, clustered=use_clustered)

    def _with_parallel(
        self,
        alternatives: list[PlanAlternative],
        quantities: dict[str, float],
        skew: float,
    ) -> list[PlanAlternative]:
        """Extend serial alternatives with their parallel variants (ranked).

        No-op at ``workers=1``; otherwise each serial price also competes
        as ``startup·W + exchange·inputs + serial/DOP``, and the cheapest
        overall wins — so the planner only parallelizes when the input is
        big enough to amortize the worker startup, and never on keys whose
        skew caps the achievable DOP.
        """
        if self._workers <= 1:
            return sorted(alternatives)
        extended = list(alternatives)
        for alternative in alternatives:
            parallel = self._parallel_variant(alternative, quantities, skew)
            if parallel is not None:
                extended.append(parallel)
        return sorted(extended)

    def _parallel_variant(
        self,
        alternative: PlanAlternative,
        quantities: dict[str, float],
        skew: float,
    ) -> Optional[PlanAlternative]:
        dop = self.effective_dop(skew)
        if dop <= 1.0:
            return None
        inputs = quantities["left"] + quantities["right"]
        cost = (
            self._workers * PARALLEL_WORKER_STARTUP
            + EXCHANGE_PER_TUPLE * inputs
            + alternative.cost / dop
        )
        return PlanAlternative(
            name=alternative.name,
            operator=alternative.operator,
            cost=cost,
            clustered=alternative.clustered,
            workers=self._workers,
            partitions=self._partitions,
        )

    def effective_dop(self, skew: float) -> float:
        """The speedup ceiling: workers, partitions and key skew combined.

        Hash partitioning cannot split one key's rows, so when the top key
        holds fraction ``skew`` of the input the largest partition holds at
        least that fraction and the speedup is capped at ``1 / skew`` —
        heavily skewed keys price parallelism out of the running.
        """
        dop = float(min(self._workers, self._partitions))
        if skew > 0.0:
            dop = min(dop, 1.0 / skew)
        return dop

    def _partition_skew(self, expression: Expression, names) -> float:
        """Top-key frequency fraction of the partition key, when known.

        Like :meth:`ordered_attributes`, the lookup traverses the
        streaming wrappers a base scan typically sits under — selection,
        renaming (with the key names mapped back to the base attributes)
        and projection (whose duplicate elimination can only *reduce* the
        top-key share, so the child's figure is a safe upper bound).
        Anywhere else the skew is unknown and reported as 0.0 (no
        discount).  Multi-attribute keys can only be less skewed than
        their most selective component, so the minimum over the attributes
        bounds the composite skew from above.
        """
        if isinstance(expression, (Select, Project)):
            return self._partition_skew(expression.child, names)
        if isinstance(expression, Rename):
            inverse = {new: old for old, new in expression.mapping.items()}
            return self._partition_skew(
                expression.child, tuple(inverse.get(name, name) for name in names)
            )
        statistics = self._base_statistics(expression)
        if statistics is None or not statistics.cardinality:
            return 0.0
        fractions = [
            statistics.partition_skew(name)
            for name in names
            if statistics.top_frequency(name)
        ]
        if not fractions:
            return 0.0
        return min(fractions)

    def _base_statistics(self, expression: Expression) -> Optional[TableStatistics]:
        if isinstance(expression, RelationRef):
            return self._statistics.table(expression.name)
        if isinstance(expression, LiteralRelation):
            return self._estimator.literal_statistics(expression.relation)
        return None

    def _group_count(self, estimate, names) -> float:
        """Estimated number of distinct groups over ``names`` (≥ 1)."""
        if not len(names):
            return 1.0
        groups = math.prod(estimate.distinct(name) for name in names)
        return max(1.0, min(groups, estimate.cardinality or 1.0))

    def _clustered_on(self, expression: Expression, names) -> bool:
        """Whether the expression's scan order clusters the given attributes.

        Two sufficient conditions: every attribute individually globally
        non-decreasing (pointwise order ⇒ equal combinations contiguous),
        or the attribute set forms a prefix of the scan's lexicographic
        sort order.
        """
        if not len(names):
            return False
        ordered = self.ordered_attributes(expression)
        if all(name in ordered for name in names):
            return True
        prefix = self.clustered_prefix(expression)
        width = len(names)
        return len(prefix) >= width and set(prefix[:width]) == set(names)

    @property
    def estimator(self) -> CardinalityEstimator:
        """The underlying cardinality estimator (shared with callers)."""
        return self._estimator


def decision_for(
    kind: str,
    alternatives: list[PlanAlternative],
    forced: Optional[str] = None,
) -> PlanDecision:
    """Build the decision record: cheapest alternative, or the forced one."""
    ranked = tuple(sorted(alternatives))
    if forced is None:
        return PlanDecision(kind=kind, chosen=ranked[0], forced=False, alternatives=ranked)
    chosen = next(alt for alt in ranked if alt.name == forced)
    return PlanDecision(kind=kind, chosen=chosen, forced=True, alternatives=ranked)
