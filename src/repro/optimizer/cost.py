"""A simple cost model over logical expressions.

Costs are abstract "tuple-touch" units: every operator pays a per-input and
per-output tuple cost, with multiplicative penalties for blocking or
quadratic behaviour (Cartesian products, algebra-simulated division).  The
absolute numbers are meaningless; what matters — and what the benchmark
suite checks — is the *ranking* of equivalent alternatives, e.g. that a
plan exploiting Law 7's short-circuit is ranked cheaper than the plan that
computes both divisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    AntiJoin,
    Difference,
    Expression,
    GreatDivide,
    GroupBy,
    Intersection,
    LeftOuterJoin,
    LiteralRelation,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    Select,
    SemiJoin,
    SmallDivide,
    ThetaJoin,
    Union,
)
from repro.optimizer.statistics import CardinalityEstimator, StatisticsCatalog

__all__ = ["CostModel", "CostReport"]


@dataclass(frozen=True)
class CostReport:
    """Estimated cost of one expression."""

    expression: Expression
    total_cost: float
    output_cardinality: float

    def __lt__(self, other: "CostReport") -> bool:
        return self.total_cost < other.total_cost


class CostModel:
    """Tuple-touch cost model driven by the cardinality estimator."""

    #: Cost charged per tuple read from an input.
    INPUT_COST = 1.0
    #: Cost charged per tuple emitted by an operator.
    OUTPUT_COST = 1.0
    #: Extra per-tuple factor for hash-table maintenance in divisions/joins
    #: (building and probing hash tables or bit maps is noticeably more
    #: expensive than evaluating a scalar predicate on a streaming tuple).
    HASH_FACTOR = 2.0
    #: Extra per-tuple factor for products (materialization of the inner input).
    PRODUCT_FACTOR = 2.0

    def __init__(self, statistics: StatisticsCatalog) -> None:
        self._estimator = CardinalityEstimator(statistics)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def cost(self, expression: Expression) -> float:
        """Total estimated cost of evaluating ``expression``."""
        return self._cost(expression)

    def report(self, expression: Expression) -> CostReport:
        """Cost plus estimated output cardinality."""
        return CostReport(
            expression=expression,
            total_cost=self._cost(expression),
            output_cardinality=self._estimator.cardinality(expression),
        )

    def cheapest(self, alternatives: list[Expression]) -> Expression:
        """Return the lowest-cost expression among ``alternatives``."""
        return min(alternatives, key=self._cost)

    # ------------------------------------------------------------------
    # recursion
    # ------------------------------------------------------------------
    def _cost(self, expression: Expression) -> float:
        children_cost = sum(self._cost(child) for child in expression.children)
        inputs = sum(self._estimator.cardinality(child) for child in expression.children)
        output = self._estimator.cardinality(expression)
        local = self._local_cost(expression, inputs, output)
        return children_cost + local

    def _local_cost(self, expression: Expression, inputs: float, output: float) -> float:
        if isinstance(expression, (RelationRef, LiteralRelation)):
            return self._estimator.cardinality(expression) * self.INPUT_COST
        if isinstance(expression, (Rename, Select)):
            # Streaming operators: they only touch their input once.
            return inputs * self.INPUT_COST
        if isinstance(expression, Project):
            # Duplicate elimination needs a hash set over the output.
            return inputs * self.INPUT_COST + output * self.OUTPUT_COST
        if isinstance(expression, (Union, Intersection, Difference)):
            return inputs * self.INPUT_COST * self.HASH_FACTOR + output * self.OUTPUT_COST
        if isinstance(expression, Product):
            left = self._estimator.cardinality(expression.left)
            right = self._estimator.cardinality(expression.right)
            return left * right * self.PRODUCT_FACTOR + output * self.OUTPUT_COST
        if isinstance(expression, ThetaJoin):
            left = self._estimator.cardinality(expression.left)
            right = self._estimator.cardinality(expression.right)
            return left * right * self.INPUT_COST + output * self.OUTPUT_COST
        if isinstance(expression, (SemiJoin, AntiJoin)):
            # Build a hash set on the (usually small) right input, then stream
            # the left input through it — probing is a plain per-tuple check.
            left = self._estimator.cardinality(expression.left)
            right = self._estimator.cardinality(expression.right)
            return (
                left * self.INPUT_COST
                + right * self.INPUT_COST * self.HASH_FACTOR
                + output * self.OUTPUT_COST
            )
        if isinstance(expression, (NaturalJoin, LeftOuterJoin)):
            return inputs * self.INPUT_COST * self.HASH_FACTOR + output * self.OUTPUT_COST
        if isinstance(expression, GroupBy):
            return inputs * self.INPUT_COST * self.HASH_FACTOR + output * self.OUTPUT_COST
        if isinstance(expression, (SmallDivide, GreatDivide)):
            # Hash-division: one pass over each input plus the output.
            return inputs * self.INPUT_COST * self.HASH_FACTOR + output * self.OUTPUT_COST
        return inputs * self.INPUT_COST + output * self.OUTPUT_COST
