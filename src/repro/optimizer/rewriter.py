"""Rule-based rewriting of logical expressions.

Two strategies are provided:

* :class:`HeuristicRewriter` — repeatedly applies the rule set bottom-up
  until no rule matches anywhere (a Starburst-style fixpoint rewriter).
  This is the mode the paper's push-down laws are designed for: every rule
  in the default set is an improvement or neutral, so a fixpoint is safe.
* :class:`CostBasedRewriter` — explores the space of expressions reachable
  through the rule set (bounded breadth-first search, memoizing visited
  expressions, mini-Cascades style) and returns the cheapest alternative
  according to a :class:`~repro.optimizer.cost.CostModel`.

Both record the rewrite trace so experiments can show *which* laws fired.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.expressions import Expression
from repro.errors import RewriteError
from repro.laws.base import Rewrite, RewriteContext, RewriteRule
from repro.laws.registry import all_rules
from repro.optimizer.cost import CostModel

__all__ = ["RewriteReport", "HeuristicRewriter", "CostBasedRewriter"]


@dataclass
class RewriteReport:
    """The outcome of a rewriting session."""

    original: Expression
    result: Expression
    applied: list[Rewrite] = field(default_factory=list)

    @property
    def rules_fired(self) -> list[str]:
        """Names of the rules that fired, in application order."""
        return [rewrite.rule for rewrite in self.applied]

    def __len__(self) -> int:
        return len(self.applied)


class HeuristicRewriter:
    """Apply a rule set bottom-up until fixpoint."""

    def __init__(
        self,
        rules: Optional[Sequence[RewriteRule]] = None,
        context: Optional[RewriteContext] = None,
        max_passes: int = 10,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.context = context if context is not None else RewriteContext()
        self.max_passes = max_passes

    def rewrite(self, expression: Expression) -> RewriteReport:
        """Rewrite ``expression`` to fixpoint and report the applied rules."""
        report = RewriteReport(original=expression, result=expression)
        current = expression
        for _ in range(self.max_passes):
            rewritten = self._one_pass(current, report)
            if rewritten == current:
                break
            current = rewritten
        report.result = current
        return report

    def _one_pass(self, expression: Expression, report: RewriteReport) -> Expression:
        def visit(node: Expression) -> Expression:
            for rule in self.rules:
                try:
                    if not rule.matches(node, self.context):
                        continue
                    replacement = rule.apply(node, self.context)
                except RewriteError:
                    continue
                if replacement == node:
                    continue
                report.applied.append(
                    Rewrite(rule=rule.name, before=node, after=replacement, note=rule.paper_reference)
                )
                return replacement
            return node

        return expression.transform_bottom_up(visit)


class CostBasedRewriter:
    """Bounded exploration of rule applications, picking the cheapest plan."""

    def __init__(
        self,
        cost_model: CostModel,
        rules: Optional[Sequence[RewriteRule]] = None,
        context: Optional[RewriteContext] = None,
        max_alternatives: int = 200,
    ) -> None:
        self.cost_model = cost_model
        self.rules = list(rules) if rules is not None else all_rules()
        self.context = context if context is not None else RewriteContext()
        self.max_alternatives = max_alternatives

    def rewrite(self, expression: Expression) -> RewriteReport:
        """Search the space reachable via the rules; return the cheapest expression."""
        seen: set[Expression] = {expression}
        frontier: list[Expression] = [expression]
        report = RewriteReport(original=expression, result=expression)

        while frontier and len(seen) < self.max_alternatives:
            current = frontier.pop(0)
            for alternative, rewrite in self._neighbours(current):
                if alternative in seen:
                    continue
                seen.add(alternative)
                frontier.append(alternative)
                report.applied.append(rewrite)

        report.result = self.cost_model.cheapest(list(seen))
        return report

    def _neighbours(self, expression: Expression) -> Iterable[tuple[Expression, Rewrite]]:
        """All expressions reachable by one rule application at any node."""
        nodes = list(expression.walk())
        for target in nodes:
            for rule in self.rules:
                try:
                    if not rule.matches(target, self.context):
                        continue
                    replacement = rule.apply(target, self.context)
                except RewriteError:
                    continue
                if replacement == target:
                    continue
                rebuilt = _replace(expression, target, replacement)
                yield rebuilt, Rewrite(
                    rule=rule.name, before=target, after=replacement, note=rule.paper_reference
                )


def _replace(expression: Expression, target: Expression, replacement: Expression) -> Expression:
    """Return ``expression`` with the first occurrence of ``target`` replaced."""
    replaced = False

    def visit(node: Expression) -> Expression:
        nonlocal replaced
        if not replaced and node == target:
            replaced = True
            return replacement
        return node

    return expression.transform_bottom_up(visit)
