"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while the
more specific subclasses document *why* an operation was rejected.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "RelationError",
    "RowAttributeError",
    "DivisionError",
    "PredicateError",
    "ExpressionError",
    "RewriteError",
    "PlanningError",
    "ExecutionError",
    "WorkerError",
    "TaskTimeoutError",
    "StorageError",
    "StorageCorruptionError",
    "InjectedFaultError",
    "ViewError",
    "VerificationError",
    "SQLSyntaxError",
    "SQLTranslationError",
    "WorkloadError",
    "MiningError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible.

    Raised, for example, when a projection references an attribute that is
    not part of the input schema, or when a union is attempted between
    relations with different attribute sets.
    """


class RelationError(ReproError):
    """A relation value is malformed (e.g. a row misses an attribute)."""


class RowAttributeError(RelationError, KeyError):
    """A row was asked for an attribute it does not have.

    Subclasses :class:`KeyError` as well, so the :class:`collections.abc.Mapping`
    mixins (``get``, ``setdefault``-style lookups) treat it as an ordinary
    missing-key condition.
    """

    def __str__(self) -> str:  # KeyError.__str__ shows repr(args); keep the message
        return self.args[0] if self.args else ""


class DivisionError(SchemaError):
    """The schemas of dividend and divisor violate the operator definition.

    Small divide requires the divisor attributes ``B`` to be a nonempty
    proper subset of the dividend attributes ``A ∪ B``; great divide
    additionally requires a nonempty dividend-only set ``A`` and allows a
    divisor-only set ``C``.
    """


class PredicateError(ReproError):
    """A predicate references unknown attributes or cannot be evaluated."""


class ExpressionError(ReproError):
    """A logical algebra expression is malformed."""


class RewriteError(ReproError):
    """A rewrite rule was applied to an expression it does not match."""


class PlanningError(ReproError):
    """The optimizer could not produce a physical plan."""


class ExecutionError(ReproError):
    """A physical operator failed during execution."""


class WorkerError(ExecutionError):
    """A pool worker failed a partition task after every retry.

    Carries enough structure to locate the failed unit of work without
    parsing the message: the task ``kind`` (``small_divide`` …), the
    ``algorithm`` registry name, the ``partition`` index within the task
    list, and how many ``attempts`` were made.  The last underlying
    exception (if any) is chained as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "",
        algorithm: str = "",
        partition: int = -1,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.algorithm = algorithm
        self.partition = partition
        self.attempts = attempts


class TaskTimeoutError(WorkerError):
    """A partition task exceeded the retry policy's per-task timeout."""


class StorageError(ReproError):
    """A stored table file or store directory is missing or malformed.

    Raised by the persistent columnar format (:mod:`repro.storage`) when a
    file's magic/header/block index cannot be read, and by
    ``repro.connect(path)`` when ``path`` is not a saved store.
    """


class StorageCorruptionError(StorageError):
    """A stored file's content disagrees with its recorded checksums.

    Raised when a block payload, file header or store manifest fails its
    integrity check — a truncated, bit-flipped or torn write.  ``file``
    names the damaged file, ``block`` the zero-based block number (or
    ``None`` for header/manifest damage), and ``expected``/``actual`` the
    mismatched checksums, so operators can report precisely what broke.
    """

    def __init__(
        self,
        message: str,
        *,
        file: str = "",
        block: "int | None" = None,
        expected: "int | str | None" = None,
        actual: "int | str | None" = None,
    ) -> None:
        super().__init__(message)
        self.file = file
        self.block = block
        self.expected = expected
        self.actual = actual


class InjectedFaultError(ReproError):
    """A deterministic fault raised by the fault-injection harness.

    Only ever raised when a :class:`repro.faults.FaultPlan` is active (via
    ``connect(faults=...)`` or the ``REPRO_FAULTS`` environment variable);
    production code paths never construct it spontaneously.  ``point`` is
    the registered fault-point name that fired.
    """

    def __init__(self, message: str, *, point: str = "") -> None:
        super().__init__(message)
        self.point = point


class ViewError(ReproError):
    """A maintained view cannot be created, updated, or persisted.

    Raised by ``Database.create_view`` for invalid definitions (duplicate
    names, views over views) and by ``Database.save`` when a registered
    fallback view has no persistable counter-table form.
    """


class VerificationError(ReproError):
    """Static analysis found severity-``error`` findings in a plan.

    Raised by the executor's debug-mode pre-execution hook and by
    ``Query.verify()``; the offending findings (with their stable RP codes)
    are listed in the message and attached as ``report``.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class SQLSyntaxError(ReproError):
    """The SQL frontend could not tokenize or parse the input text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class SQLTranslationError(ReproError):
    """A parsed SQL statement cannot be translated to the logical algebra."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""


class MiningError(ReproError):
    """A frequent-itemset mining routine received invalid input."""
