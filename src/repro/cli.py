"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``
    Regenerate all 11 figures of the paper, print them and report how many
    match the paper exactly.
``query {Q1,Q2,Q3}``
    Run one of the Section 4 queries against the textbook
    suppliers-and-parts database through the session API — **one**
    execution supplies the printed plan, rules, statistics and result.
``sql "<query>"``
    Parse, optimize and execute an arbitrary query (``--explain`` prints
    the plan instead; ``--db`` picks a built-in database *or* the path of
    a store directory written by ``Database.save`` — stored tables stream
    lazily from disk; ``--batch-size N`` sets the executor chunk size;
    ``--workers N`` lets the planner parallelize large operators over a
    worker pool; ``--memory-budget-mb M`` makes those exchanges spill to
    disk; ``--compile``/``--no-compile`` force or disable segment
    compilation).
``explain {Q1,Q2,Q3}``
    EXPLAIN ANALYZE one of the Section 4 queries (``--verbose`` appends the
    generated source of every compiled segment).
``analyze``
    Collect table statistics (cardinality, distinct counts, min/max,
    scan-order sortedness) for a database — the input the cost-based
    physical planner consumes.
``check``
    Statically verify the prepared plans of the paper workloads — schema
    soundness, operator contracts and compiled-segment audits — without
    executing anything (``--all-workloads`` sweeps every division
    algorithm × compile mode × worker count; ``--json`` emits the findings
    for CI gating; exit code 1 on any severity-``error`` finding).
``views``
    Maintained-view demo: register Q1 as a delta-maintained view over the
    textbook database, churn single-row edits through it and compare
    incremental maintenance against recompute-per-edit (``--edits N``
    sets the churn length; the view is verified RP601–RP604 afterwards).
``claims``
    Re-check the paper's qualitative efficiency claims on synthetic
    workloads (deterministic tuple-count measurements).
``mine``
    Run frequent itemset discovery on a generated basket dataset with both
    the Apriori baseline and the great-divide miner.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.api.database import connect
from repro.errors import ReproError
from repro.experiments import Q1, Q2, Q3, all_figures
from repro.experiments.claims import all_claims
from repro.mining import apriori, frequent_itemsets_by_great_divide, generate_baskets
from repro.relation.render import render_relation
from repro.workloads import generate_catalog, textbook_catalog

__all__ = ["main", "build_parser"]

_QUERIES = {"Q1": Q1, "Q2": Q2, "Q3": Q3}
_DATABASES = {
    "textbook": textbook_catalog,
    "random": generate_catalog,
}


def _database_source(name: str):
    """Resolve a ``--db`` value: a built-in name or a saved-store path.

    Built-in names win; anything else is treated as the path of a store
    directory written by :meth:`Database.save` and handed to ``connect``
    verbatim (the storage layer reports a clear error for bad paths).
    """
    return _DATABASES.get(name, name)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Laws for Rewriting Queries Containing Division Operators'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("figures", help="regenerate and verify the 11 figures of the paper")

    query = subparsers.add_parser("query", help="run one of the Section 4 queries")
    query.add_argument("name", choices=sorted(_QUERIES), help="which query to run")
    query.add_argument(
        "--no-recognizer",
        action="store_true",
        help="translate NOT EXISTS queries without the division recognizer",
    )

    sql = subparsers.add_parser("sql", help="run an arbitrary SQL query")
    sql.add_argument("text", help="the SQL text (quote it)")
    sql.add_argument(
        "--explain",
        action="store_true",
        help="print EXPLAIN ANALYZE output instead of the result table",
    )
    sql.add_argument(
        "--db",
        default="textbook",
        metavar="NAME|PATH",
        help="database to run against: "
        f"one of {sorted(_DATABASES)} or the path of a saved store directory",
    )
    sql.add_argument(
        "--no-recognizer",
        action="store_true",
        help="translate NOT EXISTS queries without the division recognizer",
    )
    sql.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="executor chunk size (tuples per chunk; results are unaffected)",
    )
    sql.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-pool size for partition-parallel execution; the planner "
        "only parallelizes operators whose input is large enough to pay off "
        "(results are unaffected)",
    )
    sql.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        metavar="M",
        help="spill budget for partition-parallel exchanges: buffered "
        "partitions beyond it spill to disk and are re-streamed "
        "(results are unaffected)",
    )
    compilation = sql.add_mutually_exclusive_group()
    compilation.add_argument(
        "--compile",
        dest="compile_mode",
        action="store_const",
        const="on",
        default=None,
        help="force segment compilation of the physical plan "
        "(results are unaffected)",
    )
    compilation.add_argument(
        "--no-compile",
        dest="compile_mode",
        action="store_const",
        const="off",
        help="run the interpreted pipeline without segment compilation",
    )

    explain = subparsers.add_parser("explain", help="EXPLAIN ANALYZE a Section 4 query")
    explain.add_argument("name", choices=sorted(_QUERIES), help="which query to explain")
    explain.add_argument(
        "--verbose",
        action="store_true",
        help="also print the generated source of every compiled segment",
    )

    analyze = subparsers.add_parser(
        "analyze", help="collect table statistics (ANALYZE) for a database"
    )
    analyze.add_argument(
        "--db",
        default="textbook",
        metavar="NAME|PATH",
        help="database to analyze: "
        f"one of {sorted(_DATABASES)} or the path of a saved store directory "
        "(stored tables analyze from save-time metadata without a scan)",
    )
    analyze.add_argument(
        "tables", nargs="*", help="tables to analyze (default: all tables)"
    )

    check = subparsers.add_parser(
        "check", help="statically verify the prepared plans of the paper workloads"
    )
    check.add_argument(
        "--db",
        choices=sorted(_DATABASES),
        default="textbook",
        help="which suppliers-and-parts database to plan against",
    )
    check.add_argument(
        "--all-workloads",
        action="store_true",
        help="sweep every division algorithm × compile mode × worker count "
        "(default: each query once with default planner options)",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit the findings as JSON (the CI gate consumes this)",
    )

    views = subparsers.add_parser(
        "views", help="delta-maintained division views demo (insert/delete churn)"
    )
    views.add_argument(
        "--edits",
        type=int,
        default=200,
        metavar="N",
        help="number of single-row edits to churn through the view",
    )
    views.add_argument("--seed", type=int, default=7, help="random seed for the edit stream")

    subparsers.add_parser("claims", help="verify the paper's qualitative claims")

    mine = subparsers.add_parser("mine", help="frequent itemset discovery demo")
    mine.add_argument("--transactions", type=int, default=150, help="number of transactions")
    mine.add_argument("--min-support", type=int, default=30, help="absolute support threshold")
    mine.add_argument("--seed", type=int, default=7, help="random seed for the generator")

    return parser


def _command_figures() -> int:
    figures = all_figures()
    for figure in figures:
        print(figure.render())
        print()
    reproduced = sum(figure.verify() for figure in figures)
    print(f"{reproduced}/{len(figures)} figures reproduced exactly.")
    return 0 if reproduced == len(figures) else 1


def _command_query(name: str, use_recognizer: bool) -> int:
    database = connect(textbook_catalog)
    sql = _QUERIES[name]
    print(sql.strip())
    outcome = database.sql(sql, recognize_division=use_recognizer).run()
    print("\nlogical plan :", outcome.expression.to_text())
    print("rules fired  :", ", ".join(outcome.rules_fired) or "(none)")
    print(
        f"statistics   : max intermediate = {outcome.max_intermediate} tuples, "
        f"elapsed = {outcome.elapsed_seconds * 1000:.2f} ms"
    )
    print(render_relation(outcome.relation, f"result of {name}"))
    return 0


def _command_sql(
    text: str,
    explain: bool,
    db_name: str,
    use_recognizer: bool,
    batch_size: Optional[int],
    workers: Optional[int],
    compile_mode: Optional[str] = None,
    memory_budget_mb: Optional[float] = None,
) -> int:
    try:
        database = connect(
            _database_source(db_name),
            batch_size=batch_size,
            workers=workers,
            compile=compile_mode,
            memory_budget_mb=memory_budget_mb,
        )
        query = database.sql(text, recognize_division=use_recognizer)
        if explain:
            print(query.explain(analyze=True))
            return 0
        outcome = query.run()
    except ReproError as error:
        print(f"error: {error}")
        return 2
    print("logical plan :", outcome.expression.to_text())
    print("rules fired  :", ", ".join(outcome.rules_fired) or "(none)")
    print(
        f"statistics   : {len(outcome.relation)} result tuples, "
        f"max intermediate = {outcome.max_intermediate} tuples, "
        f"elapsed = {outcome.elapsed_seconds * 1000:.2f} ms"
    )
    print(render_relation(outcome.relation, "result"))
    return 0


def _command_explain(name: str, verbose: bool = False) -> int:
    database = connect(textbook_catalog)
    print(database.sql(_QUERIES[name]).explain(analyze=True, verbose=verbose))
    return 0


def _command_analyze(db_name: str, tables: Sequence[str]) -> int:
    try:
        database = connect(_database_source(db_name))
        report = database.analyze(*tables)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    print(f"analyzed {len(report)} table(s) of the {db_name} database")
    print(report.render())
    return 0


def _command_check(db_name: str, all_workloads: bool, as_json: bool) -> int:
    from repro.analysis import check_workloads

    try:
        run = check_workloads(_DATABASES[db_name], all_workloads=all_workloads)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    print(run.to_json() if as_json else run.render())
    return 0 if run.ok else 1


def _command_views(edits: int, seed: int) -> int:
    import random
    import time

    database = connect(textbook_catalog)
    view = database.create_view("q1", database.sql(Q1))
    print(view.explain())
    print(render_relation(view.relation(), "initial contents of q1"))

    suppliers = [f"s{i}" for i in range(1, 8)]
    parts = [f"p{i}" for i in range(1, 6)]
    rng = random.Random(seed)
    stream = [
        (rng.choice(["insert", "delete"]), (rng.choice(suppliers), rng.choice(parts)))
        for _ in range(max(0, edits))
    ]

    started = time.perf_counter()
    for operation, row in stream:
        if operation == "insert":
            database.insert("supplies", [row])
        else:
            database.delete("supplies", [row])
        view.relation()  # read after every edit, like a dashboard would
    maintained_elapsed = time.perf_counter() - started

    baseline = connect(textbook_catalog)
    started = time.perf_counter()
    for operation, row in stream:
        if operation == "insert":
            baseline.insert("supplies", [row])
        else:
            baseline.delete("supplies", [row])
        baseline.clear_cache()  # recompute-per-edit: no result cache
        baseline.sql(Q1).run()
    recompute_elapsed = time.perf_counter() - started

    report = database.verify_view("q1")
    speedup = recompute_elapsed / maintained_elapsed if maintained_elapsed else float("inf")
    print(f"edits applied    : {len(stream)} (deltas routed={view.deltas_applied})")
    print(f"maintained       : {maintained_elapsed * 1000:.1f} ms")
    print(f"recompute/edit   : {recompute_elapsed * 1000:.1f} ms  ({speedup:.1f}x slower)")
    print(f"view verification: {report.summary()}")
    print(render_relation(view.relation(), "final contents of q1"))
    return 0 if report.ok else 1


def _command_claims() -> int:
    checks = all_claims()
    for check in checks:
        print(check.summary())
    confirmed = sum(check.holds for check in checks)
    print(f"\n{confirmed}/{len(checks)} claims confirmed on this substrate.")
    return 0 if confirmed == len(checks) else 1


def _command_mine(transactions: int, min_support: int, seed: int) -> int:
    dataset = generate_baskets(num_transactions=transactions, seed=seed)
    via_divide = frequent_itemsets_by_great_divide(dataset.relation, min_support, algorithm="hash")
    via_apriori = apriori(dataset.baskets, min_support)
    print(f"transactions      : {dataset.num_transactions}")
    print(f"minimum support   : {min_support}")
    print(f"frequent itemsets : {len(via_divide)} (great divide) / {len(via_apriori)} (Apriori)")
    print(f"identical results : {via_divide == via_apriori}")
    for itemset, support in sorted(via_divide.items(), key=lambda kv: (-len(kv[0]), -kv[1]))[:10]:
        print(f"  {sorted(itemset)}  support={support}")
    return 0 if via_divide == via_apriori else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _command_figures()
    if args.command == "query":
        return _command_query(args.name, not args.no_recognizer)
    if args.command == "sql":
        return _command_sql(
            args.text,
            args.explain,
            args.db,
            not args.no_recognizer,
            args.batch_size,
            args.workers,
            args.compile_mode,
            args.memory_budget_mb,
        )
    if args.command == "explain":
        return _command_explain(args.name, args.verbose)
    if args.command == "analyze":
        return _command_analyze(args.db, args.tables)
    if args.command == "check":
        return _command_check(args.db, args.all_workloads, args.json)
    if args.command == "views":
        return _command_views(args.edits, args.seed)
    if args.command == "claims":
        return _command_claims()
    if args.command == "mine":
        return _command_mine(args.transactions, args.min_support, args.seed)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
