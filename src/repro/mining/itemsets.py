"""Itemset utilities shared by the Apriori baseline and the query-based miner."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.errors import MiningError
from repro.relation.relation import Relation

__all__ = [
    "Itemset",
    "candidate_generation",
    "transactions_to_sets",
    "sets_to_relation",
    "candidates_to_relation",
]

#: An itemset is an immutable set of item identifiers.
Itemset = frozenset


def candidate_generation(frequent: Sequence[Itemset], size: int) -> list[Itemset]:
    """Apriori candidate generation (join + prune).

    Joins pairs of frequent ``(size-1)``-itemsets sharing ``size-2`` items and
    prunes candidates with an infrequent subset.
    """
    if size < 2:
        raise MiningError("candidate generation starts at size 2")
    previous = set(frequent)
    candidates: set[Itemset] = set()
    frequent_list = sorted(frequent, key=sorted)
    for index, left in enumerate(frequent_list):
        for right in frequent_list[index + 1 :]:
            union = left | right
            if len(union) != size:
                continue
            if all(union - {item} in previous for item in union):
                candidates.add(Itemset(union))
    return sorted(candidates, key=sorted)


def transactions_to_sets(transactions: Relation, tid: str = "tid", item: str = "item") -> dict[Any, set]:
    """Group a vertical transactions relation into ``{tid: set(items)}``."""
    transactions.schema.require([tid, item], "transactions")
    grouped: dict[Any, set] = {}
    for row in transactions:
        grouped.setdefault(row[tid], set()).add(row[item])
    return grouped


def sets_to_relation(transactions: Mapping[Any, Iterable[Any]], tid: str = "tid", item: str = "item") -> Relation:
    """Flatten ``{tid: items}`` into the vertical (tid, item) representation."""
    rows = [(key, value) for key, items in transactions.items() for value in items]
    return Relation([tid, item], rows)


def candidates_to_relation(candidates: Sequence[Itemset], item: str = "item", itemset: str = "itemset") -> Relation:
    """The vertical candidate representation of Section 3: (item, itemset id).

    Itemset identifiers are assigned deterministically from the sorted item
    lists so results are reproducible.
    """
    rows = []
    for index, candidate in enumerate(sorted(candidates, key=sorted)):
        for value in candidate:
            rows.append((value, index))
    return Relation([item, itemset], rows)
