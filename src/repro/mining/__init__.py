"""Frequent itemset discovery (Section 3): Apriori baseline and the
great-divide-based query formulation."""

from repro.mining.apriori import apriori
from repro.mining.datagen import BasketDataset, generate_baskets
from repro.mining.itemsets import (
    Itemset,
    candidate_generation,
    candidates_to_relation,
    sets_to_relation,
    transactions_to_sets,
)
from repro.mining.query_based import (
    count_support_by_great_divide,
    frequent_itemsets_by_great_divide,
)

__all__ = [
    "apriori",
    "Itemset",
    "candidate_generation",
    "candidates_to_relation",
    "sets_to_relation",
    "transactions_to_sets",
    "count_support_by_great_divide",
    "frequent_itemsets_by_great_divide",
    "BasketDataset",
    "generate_baskets",
]
