"""Synthetic market-basket data in the spirit of the IBM Quest generator.

The paper references Agrawal et al.'s association-rule setting but publishes
no data; this generator produces transactions with *planted* frequent
patterns so benchmarks have predictable structure: a set of pattern itemsets
is drawn first, and every transaction embeds one or more patterns plus
random noise items.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import MiningError
from repro.mining.itemsets import Itemset, sets_to_relation
from repro.relation.relation import Relation

__all__ = ["BasketDataset", "generate_baskets"]


@dataclass(frozen=True)
class BasketDataset:
    """Generated transactions in both representations plus the planted patterns."""

    baskets: dict[int, frozenset]
    relation: Relation
    patterns: tuple[Itemset, ...]

    @property
    def num_transactions(self) -> int:
        return len(self.baskets)


def generate_baskets(
    num_transactions: int = 200,
    num_items: int = 40,
    num_patterns: int = 4,
    pattern_size: int = 3,
    patterns_per_transaction: int = 1,
    noise_items_per_transaction: int = 3,
    seed: int = 0,
) -> BasketDataset:
    """Generate a market-basket dataset with planted frequent patterns."""
    if pattern_size > num_items:
        raise MiningError("pattern_size cannot exceed num_items")
    if num_transactions < 1:
        raise MiningError("num_transactions must be positive")
    rng = random.Random(seed)
    items = list(range(num_items))
    patterns = []
    for _ in range(num_patterns):
        patterns.append(Itemset(rng.sample(items, pattern_size)))

    baskets: dict[int, frozenset] = {}
    for tid in range(num_transactions):
        content: set = set()
        for _ in range(patterns_per_transaction):
            if patterns:
                content |= rng.choice(patterns)
        content |= set(rng.sample(items, min(noise_items_per_transaction, num_items)))
        baskets[tid] = frozenset(content)

    return BasketDataset(
        baskets=baskets,
        relation=sets_to_relation(baskets),
        patterns=tuple(patterns),
    )
