"""Classic in-memory Apriori — the baseline the query-based miner is checked
against.

This is the algorithm the paper's Section 3 sketches: level-wise candidate
generation followed by support counting against the transactions.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.errors import MiningError
from repro.mining.itemsets import Itemset, candidate_generation

__all__ = ["apriori"]


def apriori(
    transactions: Mapping[Any, Iterable[Any]],
    min_support: int,
    max_size: int | None = None,
) -> dict[Itemset, int]:
    """Frequent itemsets of ``transactions`` with absolute support ≥ ``min_support``.

    Parameters
    ----------
    transactions:
        ``{transaction id: iterable of items}``.
    min_support:
        Absolute support threshold (number of transactions).
    max_size:
        Optional cap on the itemset size (``None`` = run until no candidates
        survive).

    Returns
    -------
    dict mapping each frequent itemset to its support count.
    """
    if min_support < 1:
        raise MiningError("min_support must be at least 1")
    baskets = {tid: set(items) for tid, items in transactions.items()}

    # Level 1: count single items.
    item_counts: dict[Any, int] = {}
    for items in baskets.values():
        for item in items:
            item_counts[item] = item_counts.get(item, 0) + 1
    current = {
        Itemset({item}): count for item, count in item_counts.items() if count >= min_support
    }
    result: dict[Itemset, int] = dict(current)

    size = 2
    while current and (max_size is None or size <= max_size):
        candidates = candidate_generation(list(current), size)
        if not candidates:
            break
        counts = {candidate: 0 for candidate in candidates}
        for items in baskets.values():
            for candidate in candidates:
                if candidate <= items:
                    counts[candidate] += 1
        current = {candidate: count for candidate, count in counts.items() if count >= min_support}
        result.update(current)
        size += 1
    return result
