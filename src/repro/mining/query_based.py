"""Frequent itemset discovery driven by the great divide (Section 3).

The support-counting phase of every Apriori iteration is expressed as a
single great divide::

    quotient = transactions ÷* candidates

with ``transactions(tid, item)`` and ``candidates(item, itemset)``.  The
quotient ``(tid, itemset)`` lists, for every candidate itemset, the
transactions containing it; grouping on ``itemset`` and counting ``tid``
values gives the support.  As the paper notes, the candidates of one
iteration do not even have to share a size.
"""

from __future__ import annotations

from typing import Optional

from repro.division.great import great_divide
from repro.errors import MiningError
from repro.mining.itemsets import Itemset, candidate_generation, candidates_to_relation
from repro.physical import GREAT_DIVIDE_ALGORITHMS, RelationScan
from repro.relation import aggregates
from repro.relation.relation import Relation

__all__ = ["count_support_by_great_divide", "frequent_itemsets_by_great_divide"]


def count_support_by_great_divide(
    transactions: Relation,
    candidates: list[Itemset],
    algorithm: Optional[str] = None,
    tid: str = "tid",
    item: str = "item",
) -> dict[Itemset, int]:
    """Support counts for ``candidates`` using one great divide.

    Parameters
    ----------
    transactions:
        Vertical transactions relation ``(tid, item)``.
    candidates:
        The candidate itemsets to probe.
    algorithm:
        Optional physical algorithm name from
        :data:`repro.physical.GREAT_DIVIDE_ALGORITHMS`; the default uses the
        logical reference implementation.
    """
    if not candidates:
        return {}
    transactions.schema.require([tid, item], "transactions")
    ordered = sorted(candidates, key=sorted)
    candidate_relation = candidates_to_relation(ordered, item=item, itemset="itemset")
    if algorithm is None:
        quotient = great_divide(transactions, candidate_relation)
    else:
        if algorithm not in GREAT_DIVIDE_ALGORITHMS:
            raise MiningError(f"unknown great-divide algorithm {algorithm!r}")
        operator = GREAT_DIVIDE_ALGORITHMS[algorithm](
            RelationScan(transactions, label="transactions"),
            RelationScan(candidate_relation, label="candidates"),
        )
        quotient = operator.execute()
    counted = quotient.group_by(["itemset"], {"support": aggregates.count_distinct(tid)})
    supports = {row["itemset"]: row["support"] for row in counted}
    return {candidate: supports.get(index, 0) for index, candidate in enumerate(ordered)}


def frequent_itemsets_by_great_divide(
    transactions: Relation,
    min_support: int,
    max_size: Optional[int] = None,
    algorithm: Optional[str] = None,
    tid: str = "tid",
    item: str = "item",
) -> dict[Itemset, int]:
    """Level-wise frequent itemset discovery with great-divide support counting.

    Produces exactly the same result as :func:`repro.mining.apriori.apriori`
    run over the nested representation of ``transactions``.
    """
    if min_support < 1:
        raise MiningError("min_support must be at least 1")
    transactions.schema.require([tid, item], "transactions")

    # Level 1 is a plain group-by/count on the vertical representation.
    item_supports = transactions.group_by([item], {"support": aggregates.count_distinct(tid)})
    current = {
        Itemset({row[item]}): row["support"]
        for row in item_supports
        if row["support"] >= min_support
    }
    result: dict[Itemset, int] = dict(current)

    size = 2
    while current and (max_size is None or size <= max_size):
        candidates = candidate_generation(list(current), size)
        if not candidates:
            break
        supports = count_support_by_great_divide(
            transactions, candidates, algorithm=algorithm, tid=tid, item=item
        )
        current = {
            candidate: support for candidate, support in supports.items() if support >= min_support
        }
        result.update(current)
        size += 1
    return result
