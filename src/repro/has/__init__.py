"""Carlis' HAS operator extension."""

from repro.has.operator import Association, has, has_at_least

__all__ = ["Association", "has", "has_at_least"]
