"""Carlis' HAS operator (related-work extension, Section 6 of the paper).

Carlis argues that division "is not enough to conquer" and proposes a more
general three-relation operator::

    r1 VIA r3 HAS <associations> OF r2

with ``r1`` the entities to qualify, ``r2`` the qualification set, ``r3``
the relationship between them, and a *disjunction* of up to six
"associations" describing how an entity's related set must relate to the
qualification set.  The small divide is the combination
``exactly OR strictly_more_than`` ("at least"), which the tests verify.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro.errors import SchemaError
from repro.relation.relation import Relation
from repro.relation.schema import AttributeNames, as_schema

__all__ = ["Association", "has", "has_at_least"]


class Association(Enum):
    """Carlis' six associations between an entity's related set S and the
    qualification set T."""

    #: S ∩ T = T and S − T = ∅ (the entity is related to exactly T).
    EXACTLY = "exactly"
    #: S ∩ T = T and S − T ≠ ∅.
    STRICTLY_MORE_THAN = "strictly_more_than"
    #: ∅ ≠ S ∩ T ⊊ T and S − T = ∅.
    STRICTLY_LESS_THAN = "strictly_less_than"
    #: ∅ ≠ S ∩ T ⊊ T and S − T ≠ ∅.
    SOME_BUT_NOT_ALL_PLUS_ELSE = "some_but_not_all_plus_else"
    #: S ∩ T = ∅ and S − T ≠ ∅.
    NONE_PLUS_ELSE = "none_plus_else"
    #: S = ∅ (no relationships at all).
    NONE_AT_ALL = "none_at_all"


def _classify(related: frozenset, qualification: frozenset) -> Association:
    overlap = related & qualification
    extra = related - qualification
    if not related:
        return Association.NONE_AT_ALL
    if overlap == qualification:
        # Covers the empty qualification set too: any related entity then
        # trivially has "all of it", plus something else.
        return Association.STRICTLY_MORE_THAN if extra else Association.EXACTLY
    if not overlap:
        return Association.NONE_PLUS_ELSE
    return Association.SOME_BUT_NOT_ALL_PLUS_ELSE if extra else Association.STRICTLY_LESS_THAN


def has(
    entities: Relation,
    qualification: Relation,
    relationships: Relation,
    associations: Iterable[Association | str],
    entity_key: AttributeNames | None = None,
    element_key: AttributeNames | None = None,
) -> Relation:
    """Evaluate ``entities VIA relationships HAS <associations> OF qualification``.

    Parameters
    ----------
    entities:
        The relation whose tuples are qualified (e.g. ``suppliers``).
    qualification:
        The qualification set (e.g. the blue parts).
    relationships:
        The relation connecting entity keys to element keys (e.g. ``supplies``).
    associations:
        One or more :class:`Association` values (or their string names);
        they are combined as a disjunction, exactly as in Carlis' proposal.
    entity_key / element_key:
        The attributes joining ``relationships`` with ``entities`` and
        ``qualification``; by default they are inferred as the shared
        attributes.
    """
    chosen = frozenset(
        member if isinstance(member, Association) else Association(member) for member in associations
    )
    if not chosen:
        raise SchemaError("HAS requires at least one association")

    entity_schema = (
        as_schema(entity_key) if entity_key is not None else entities.schema.intersection(relationships.schema)
    )
    element_schema = (
        as_schema(element_key) if element_key is not None else qualification.schema.intersection(relationships.schema)
    )
    if len(entity_schema) == 0 or len(element_schema) == 0:
        raise SchemaError(
            "HAS: could not infer the join attributes; pass entity_key/element_key explicitly"
        )
    entities.schema.require(entity_schema, "HAS entities")
    qualification.schema.require(element_schema, "HAS qualification")
    relationships.schema.require(entity_schema.union(element_schema), "HAS relationships")

    qualification_values = frozenset(row.values_for(element_schema) for row in qualification)
    related: dict[tuple, set] = {}
    for row in relationships:
        related.setdefault(row.values_for(entity_schema), set()).add(row.values_for(element_schema))

    qualified_rows = []
    for row in entities:
        key = row.values_for(entity_schema)
        association = _classify(frozenset(related.get(key, ())), qualification_values)
        if association in chosen:
            qualified_rows.append(row)
    return Relation(entities.schema, qualified_rows)


def has_at_least(
    entities: Relation,
    qualification: Relation,
    relationships: Relation,
    entity_key: AttributeNames | None = None,
    element_key: AttributeNames | None = None,
) -> Relation:
    """The "at least" combination (exactly OR strictly more than) — i.e. division.

    ``has_at_least(suppliers, blue_parts, supplies)`` returns the suppliers
    that supply all blue parts, matching ``supplies ÷ blue_parts`` restricted
    to suppliers present in ``entities``.
    """
    return has(
        entities,
        qualification,
        relationships,
        (Association.EXACTLY, Association.STRICTLY_MORE_THAN),
        entity_key=entity_key,
        element_key=element_key,
    )
