"""Tests for the catalog (tables, keys, foreign keys)."""

import pytest

from repro.algebra.catalog import Catalog
from repro.errors import SchemaError
from repro.relation import Relation


@pytest.fixture
def catalog(figure1_dividend, figure1_divisor):
    cat = Catalog()
    cat.add_table("r1", figure1_dividend)
    cat.add_table("r2", figure1_divisor, key=["b"])
    return cat


class TestTables:
    def test_mapping_protocol(self, catalog, figure1_dividend):
        assert catalog["r1"] == figure1_dividend
        assert set(catalog) == {"r1", "r2"}
        assert len(catalog) == 2

    def test_add_table_returns_ref(self, figure1_dividend):
        cat = Catalog()
        ref = cat.add_table("r1", figure1_dividend)
        assert ref.name == "r1"
        assert ref.schema.names == ("a", "b")

    def test_duplicate_table_rejected(self, catalog, figure1_dividend):
        with pytest.raises(SchemaError):
            catalog.add_table("r1", figure1_dividend)

    def test_ref_unknown_table(self, catalog):
        with pytest.raises(SchemaError):
            catalog.ref("missing")

    def test_replace_table(self, catalog):
        catalog.replace_table("r2", Relation(["b"], [(9,)]))
        assert catalog["r2"].to_set("b") == {9}

    def test_replace_table_schema_change_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.replace_table("r2", Relation(["z"], [(9,)]))

    def test_evaluate_expression_against_catalog(self, catalog, figure1_quotient):
        from repro.algebra import builders as B

        expr = B.divide(catalog.ref("r1"), catalog.ref("r2"))
        assert expr.evaluate(catalog) == figure1_quotient


class TestConstraints:
    def test_declared_key_lookup(self, catalog):
        assert catalog.has_key("r2", ["b"])
        assert catalog.has_key("r2", ["b", "extra"])  # superset of a key is a superkey
        assert not catalog.has_key("r1", ["a"])

    def test_declare_key_unknown_attribute(self, catalog):
        with pytest.raises(SchemaError):
            catalog.declare_key("r2", ["zzz"])

    def test_foreign_key_declaration_and_lookup(self, catalog):
        catalog.declare_foreign_key("r2", ["b"], "r1", ["b"])
        assert catalog.has_foreign_key("r2", ["b"], "r1", ["b"])
        assert not catalog.has_foreign_key("r1", ["b"], "r2", ["b"])
        assert len(catalog.foreign_keys) == 1

    def test_foreign_key_arity_mismatch(self, catalog):
        with pytest.raises(SchemaError):
            catalog.declare_foreign_key("r2", ["b"], "r1", ["a", "b"])

    def test_validate_passes_on_consistent_data(self, catalog):
        catalog.declare_foreign_key("r2", ["b"], "r1", ["b"])
        catalog.validate()

    def test_validate_detects_key_violation(self, figure1_dividend):
        cat = Catalog()
        cat.add_table("r1", figure1_dividend, key=["a"])  # a is not unique in r1
        with pytest.raises(SchemaError, match="key"):
            cat.validate()

    def test_validate_detects_foreign_key_violation(self, figure1_dividend):
        cat = Catalog()
        cat.add_table("r1", figure1_dividend)
        cat.add_table("bad", Relation(["b"], [(99,)]))
        cat.declare_foreign_key("bad", ["b"], "r1", ["b"])
        with pytest.raises(SchemaError, match="foreign key"):
            cat.validate()
