"""Tests for the logical expression trees and their evaluator."""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.expressions import AggregateSpec, LiteralRelation, RelationRef
from repro.errors import ExpressionError, SchemaError
from repro.relation import Relation


@pytest.fixture
def database(figure1_dividend, figure1_divisor):
    return {"r1": figure1_dividend, "r2": figure1_divisor}


@pytest.fixture
def r1():
    return B.ref("r1", ["a", "b"])


@pytest.fixture
def r2():
    return B.ref("r2", ["b"])


class TestLeaves:
    def test_relation_ref_evaluates_from_database(self, r1, database, figure1_dividend):
        assert r1.evaluate(database) == figure1_dividend

    def test_relation_ref_unknown_table(self, r1):
        with pytest.raises(ExpressionError, match="unknown relation"):
            r1.evaluate({})

    def test_relation_ref_schema_mismatch(self, r1):
        with pytest.raises(SchemaError):
            r1.evaluate({"r1": Relation(["x"], [(1,)])})

    def test_relation_ref_requires_name(self):
        with pytest.raises(ExpressionError):
            RelationRef("", ["a"])

    def test_literal_relation(self, figure1_divisor):
        literal = B.literal(figure1_divisor, label="r2")
        assert literal.evaluate({}) == figure1_divisor
        assert literal.schema.names == ("b",)


class TestSchemaInference:
    def test_project_schema(self, r1):
        assert B.project(r1, ["a"]).schema.names == ("a",)

    def test_project_unknown_attribute(self, r1):
        with pytest.raises(SchemaError):
            B.project(r1, ["z"]).schema

    def test_select_keeps_schema(self, r1):
        assert B.select(r1, P.equals(P.attr("a"), 1)).schema == r1.schema

    def test_select_unknown_attribute(self, r1):
        with pytest.raises(SchemaError):
            B.select(r1, P.equals(P.attr("z"), 1)).schema

    def test_select_requires_predicate_ast(self, r1):
        with pytest.raises(ExpressionError):
            B.select(r1, lambda row: True)

    def test_product_requires_disjoint(self, r1):
        with pytest.raises(SchemaError):
            B.product(r1, B.ref("other", ["a"])).schema

    def test_union_requires_same_schema(self, r1, r2):
        with pytest.raises(SchemaError):
            B.union(r1, r2).schema

    def test_divide_schema(self, r1, r2):
        assert B.divide(r1, r2).schema.names == ("a",)

    def test_divide_rejects_bad_schemas(self, r1):
        with pytest.raises(SchemaError):
            B.divide(r1, B.ref("r2", ["z"])).schema

    def test_great_divide_schema(self, r1):
        divisor = B.ref("r2", ["b", "c"])
        assert set(B.great_divide(r1, divisor).schema.names) == {"a", "c"}

    def test_great_divide_requires_shared_attributes(self, r1):
        with pytest.raises(SchemaError):
            B.great_divide(r1, B.ref("r2", ["c"])).schema

    def test_group_by_schema(self, r1):
        expr = B.group_by(r1, ["a"], [B.aggregate("count", "b", "n")])
        assert expr.schema.names == ("a", "n")

    def test_rename_schema(self, r1):
        assert set(B.rename(r1, {"a": "x"}).schema.names) == {"x", "b"}


class TestEvaluation:
    def test_project_select(self, r1, database):
        expr = B.project(B.select(r1, P.greater_equal(P.attr("a"), 2)), ["a"])
        assert expr.evaluate(database).to_set("a") == {2, 3}

    def test_divide_matches_figure_1(self, r1, r2, database, figure1_quotient):
        assert B.divide(r1, r2).evaluate(database) == figure1_quotient

    def test_great_divide_matches_figure_2(self, r1, database, figure1_dividend, figure2_divisor, figure2_quotient):
        database = dict(database)
        database["r2g"] = figure2_divisor
        expr = B.great_divide(r1, B.ref("r2g", ["b", "c"]))
        assert expr.evaluate(database) == figure2_quotient

    def test_set_operators(self, database):
        r2 = B.ref("r2", ["b"])
        other = B.literal(Relation(["b"], [(3,), (9,)]))
        assert B.union(r2, other).evaluate(database).to_set("b") == {1, 3, 9}
        assert B.intersection(r2, other).evaluate(database).to_set("b") == {3}
        assert B.difference(r2, other).evaluate(database).to_set("b") == {1}

    def test_joins(self, r1, database):
        filter_rel = B.literal(Relation(["a"], [(2,)]), label="filter")
        assert B.semijoin(r1, filter_rel).evaluate(database).to_set("a") == {2}
        assert B.antijoin(r1, filter_rel).evaluate(database).to_set("a") == {1, 3}
        joined = B.natural_join(r1, B.ref("r2", ["b"])).evaluate(database)
        assert joined.to_set("b") == {1, 3}

    def test_theta_join(self, database):
        left = B.literal(Relation(["x"], [(1,), (2,)]))
        right = B.literal(Relation(["y"], [(1,), (3,)]))
        expr = B.theta_join(left, right, P.less_than(P.attr("x"), P.attr("y")))
        assert expr.evaluate({}).to_tuples(["x", "y"]) == {(1, 3), (2, 3)}

    def test_group_by(self, r1, database):
        expr = B.group_by(r1, ["a"], [B.aggregate("count", "b", "n")])
        assert expr.evaluate(database).to_tuples(["a", "n"]) == {(1, 2), (2, 4), (3, 3)}

    def test_outer_join(self, database):
        left = B.literal(Relation(["b", "tag"], [(1, "x"), (99, "y")]))
        expr = B.outer_join(left, B.ref("r2", ["b"]))
        assert len(expr.evaluate(database)) == 2


class TestTreeUtilities:
    def test_structural_equality(self, r1, r2):
        assert B.divide(r1, r2) == B.divide(B.ref("r1", ["a", "b"]), B.ref("r2", ["b"]))
        assert B.divide(r1, r2) != B.divide(r1, B.ref("other", ["b"]))

    def test_hashable(self, r1, r2):
        assert len({B.divide(r1, r2), B.divide(r1, r2)}) == 1

    def test_walk_and_size(self, r1, r2):
        expr = B.project(B.divide(r1, r2), ["a"])
        assert expr.size() == 4
        assert sum(isinstance(node, RelationRef) for node in expr.walk()) == 2

    def test_relation_names(self, r1, r2):
        assert B.divide(r1, r2).relation_names() == {"r1", "r2"}

    def test_contains_division(self, r1, r2):
        assert B.divide(r1, r2).contains_division()
        assert not B.project(r1, ["a"]).contains_division()

    def test_transform_bottom_up(self, r1, r2, database, figure1_dividend):
        expr = B.divide(r1, r2)

        def inline(node):
            if isinstance(node, RelationRef):
                return LiteralRelation(database[node.name], label=node.name)
            return node

        inlined = expr.transform_bottom_up(inline)
        assert inlined.relation_names() == frozenset()
        assert inlined.evaluate({}) == expr.evaluate(database)

    def test_with_children_rebuilds(self, r1, r2):
        expr = B.divide(r1, r2)
        swapped_dividend = B.ref("r1b", ["a", "b"])
        rebuilt = expr.with_children(swapped_dividend, r2)
        assert rebuilt.left == swapped_dividend
        assert rebuilt.right == r2

    def test_to_text_and_pretty(self, r1, r2):
        expr = B.project(B.divide(r1, r2), ["a"])
        assert "divide" in expr.to_text()
        assert "Project" in expr.pretty()

    def test_aggregate_spec_validation(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("median", "x", "out")
        with pytest.raises(ExpressionError):
            AggregateSpec("sum", None, "out")
        assert AggregateSpec("count", None, "n").to_text() == "count(*)->n"
