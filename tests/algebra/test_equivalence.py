"""Tests for the testing-based equivalence checker."""

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.equivalence import check_equivalence, equivalent_on, first_counterexample
from repro.workloads import random_databases


def _sides():
    """Law 3 instance: σ_a=1(r1 ÷ r2) vs σ_a=1(r1) ÷ r2."""
    r1 = B.ref("r1", ["a", "b"])
    r2 = B.ref("r2", ["b"])
    predicate = P.equals(P.attr("a"), 1)
    return (
        B.select(B.divide(r1, r2), predicate),
        B.divide(B.select(r1, predicate), r2),
    )


def _unequal_sides():
    """A deliberately wrong 'law': r1 ÷ r2 vs π_a(r1)."""
    r1 = B.ref("r1", ["a", "b"])
    r2 = B.ref("r2", ["b"])
    return B.divide(r1, r2), B.project(r1, ["a"])


SCHEMAS = {"r1": ("a", "b"), "r2": ("b",)}


class TestEquivalence:
    def test_equivalent_on_single_database(self, figure1_dividend, figure1_divisor):
        lhs, rhs = _sides()
        assert equivalent_on(lhs, rhs, {"r1": figure1_dividend, "r2": figure1_divisor})

    def test_check_equivalence_over_random_databases(self):
        lhs, rhs = _sides()
        report = check_equivalence(lhs, rhs, random_databases(SCHEMAS, count=30, seed=1))
        assert report.equivalent
        assert report.databases_checked == 30
        assert bool(report)

    def test_counterexample_found_for_wrong_law(self):
        lhs, rhs = _unequal_sides()
        report = check_equivalence(lhs, rhs, random_databases(SCHEMAS, count=50, seed=2))
        assert not report.equivalent
        assert report.counterexample is not None
        assert report.left_result != report.right_result
        # The report stops at the first counterexample.
        assert report.databases_checked <= 50

    def test_first_counterexample_returns_database(self):
        lhs, rhs = _unequal_sides()
        database = first_counterexample(lhs, rhs, random_databases(SCHEMAS, count=50, seed=3))
        assert database is not None
        assert lhs.evaluate(database) != rhs.evaluate(database)

    def test_first_counterexample_none_for_true_law(self):
        lhs, rhs = _sides()
        assert first_counterexample(lhs, rhs, random_databases(SCHEMAS, count=20, seed=4)) is None
