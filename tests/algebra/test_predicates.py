"""Tests for the predicate AST."""

import pytest

from repro.algebra import predicates as P
from repro.errors import PredicateError
from repro.relation import Row


class TestComparison:
    def test_attribute_vs_literal(self):
        predicate = P.less_than(P.attr("b"), 3)
        assert predicate(Row({"b": 2}))
        assert not predicate(Row({"b": 3}))

    def test_attribute_vs_attribute(self):
        predicate = P.equals(P.attr("x"), P.attr("y"))
        assert predicate(Row({"x": 1, "y": 1}))
        assert not predicate(Row({"x": 1, "y": 2}))

    def test_every_operator(self):
        row = Row({"v": 5})
        assert P.equals(P.attr("v"), 5)(row)
        assert P.not_equals(P.attr("v"), 4)(row)
        assert P.less_than(P.attr("v"), 6)(row)
        assert P.less_equal(P.attr("v"), 5)(row)
        assert P.greater_than(P.attr("v"), 4)(row)
        assert P.greater_equal(P.attr("v"), 5)(row)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            P.Comparison(P.attr("a"), "~", 1)

    def test_attributes_property(self):
        assert P.equals(P.attr("a"), P.attr("b")).attributes == {"a", "b"}
        assert P.equals(P.attr("a"), 1).attributes == {"a"}

    def test_negate_flips_operator(self):
        predicate = P.less_than(P.attr("b"), 3)
        negated = predicate.negate()
        assert negated(Row({"b": 3}))
        assert not negated(Row({"b": 2}))
        assert negated.negate() == predicate

    def test_is_equi_comparison(self):
        assert P.equals(P.attr("a"), P.attr("b")).is_equi_comparison
        assert not P.equals(P.attr("a"), 1).is_equi_comparison
        assert not P.less_than(P.attr("a"), P.attr("b")).is_equi_comparison

    def test_rename(self):
        predicate = P.equals(P.attr("a"), P.attr("b")).rename({"a": "x"})
        assert predicate.attributes == {"x", "b"}


class TestBooleanConnectives:
    def test_and_or_not(self):
        p = P.And(P.greater_than(P.attr("v"), 1), P.less_than(P.attr("v"), 4))
        assert p(Row({"v": 2}))
        assert not p(Row({"v": 5}))
        q = P.Or(P.equals(P.attr("v"), 1), P.equals(P.attr("v"), 9))
        assert q(Row({"v": 9}))
        assert not q(Row({"v": 2}))
        assert P.Not(q)(Row({"v": 2}))

    def test_operator_overloads(self):
        p = (P.greater_than(P.attr("v"), 1) & P.less_than(P.attr("v"), 4)) | P.equals(P.attr("v"), 0)
        assert p(Row({"v": 0}))
        assert p(Row({"v": 2}))
        assert not p(Row({"v": 7}))
        assert (~P.equals(P.attr("v"), 0))(Row({"v": 1}))

    def test_de_morgan_negation(self):
        p = P.And(P.equals(P.attr("a"), 1), P.equals(P.attr("b"), 2))
        negated = p.negate()
        assert isinstance(negated, P.Or)
        assert negated(Row({"a": 1, "b": 3}))
        assert not negated(Row({"a": 1, "b": 2}))

    def test_attributes_are_unioned(self):
        p = P.And(P.equals(P.attr("a"), 1), P.equals(P.attr("b"), 2))
        assert p.attributes == {"a", "b"}

    def test_requires_two_operands(self):
        with pytest.raises(PredicateError):
            P.And(P.TRUE)
        with pytest.raises(PredicateError):
            P.Or(P.TRUE)

    def test_true_false_constants(self):
        row = Row({"a": 1})
        assert P.TRUE(row)
        assert not P.FALSE(row)
        assert P.TRUE.negate() == P.FALSE
        assert P.FALSE.negate() == P.TRUE

    def test_structural_equality(self):
        assert P.equals(P.attr("a"), 1) == P.equals(P.attr("a"), 1)
        assert P.And(P.TRUE, P.FALSE) == P.And(P.TRUE, P.FALSE)
        assert P.And(P.TRUE, P.FALSE) != P.Or(P.TRUE, P.FALSE)


class TestHelpers:
    def test_conjunction_of_none_is_true(self):
        assert P.conjunction([]) == P.TRUE

    def test_conjunction_of_one(self):
        p = P.equals(P.attr("a"), 1)
        assert P.conjunction([p]) == p

    def test_conjunction_drops_true(self):
        p = P.equals(P.attr("a"), 1)
        assert P.conjunction([P.TRUE, p]) == p

    def test_disjunction_of_none_is_false(self):
        assert P.disjunction([]) == P.FALSE

    def test_references_only(self):
        p = P.equals(P.attr("a"), P.attr("b"))
        assert p.references_only({"a", "b", "c"})
        assert not p.references_only({"a"})

    def test_attribute_equality_builder(self):
        p = P.attribute_equality([("a", "x"), ("b", "y")])
        assert p(Row({"a": 1, "x": 1, "b": 2, "y": 2}))
        assert not p(Row({"a": 1, "x": 1, "b": 2, "y": 3}))
