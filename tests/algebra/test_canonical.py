"""Canonicalization (rename pull-up) and canonical fingerprints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.canonical import canonicalize, expression_fingerprint
from repro.algebra.catalog import Catalog
from repro.experiments.queries import Q1, Q2, Q2_NOT_EXISTS, Q3
from repro.sql import translate_sql
from repro.workloads import textbook_catalog
from tests.strategies import relations


@pytest.fixture(scope="module")
def catalog():
    return textbook_catalog()


class TestRenameSimplification:
    def test_identity_rename_is_dropped(self):
        r1 = B.ref("r1", ["a", "b"])
        assert canonicalize(B.rename(r1, {"a": "a"})) == r1

    def test_adjacent_renames_compose(self):
        r1 = B.ref("r1", ["a", "b"])
        twice = B.rename(B.rename(r1, {"a": "x"}), {"x": "y"})
        assert canonicalize(twice) == B.rename(r1, {"a": "y"})

    def test_roundtrip_rename_cancels(self):
        r1 = B.ref("r1", ["a", "b"])
        roundtrip = B.rename(B.rename(r1, {"a": "x", "b": "y"}), {"x": "a", "y": "b"})
        assert canonicalize(roundtrip) == r1

    def test_identity_projection_is_dropped(self):
        r1 = B.ref("r1", ["a", "b"])
        assert canonicalize(B.project(r1, ["b", "a"])) == r1

    def test_nested_projections_collapse(self):
        r1 = B.ref("r1", ["a", "b", "c"])
        nested = B.project(B.project(r1, ["a", "b"]), ["a"])
        assert canonicalize(nested) == B.project(r1, ["a"])

    def test_rename_hoists_above_selection(self):
        r1 = B.ref("r1", ["a", "b"])
        query = B.select(B.rename(r1, {"a": "x"}), P.equals(P.attr("x"), 1))
        expected = B.rename(B.select(r1, P.equals(P.attr("a"), 1)), {"a": "x"})
        assert canonicalize(query) == expected

    def test_rename_kept_when_not_removable(self):
        # A bare rename at the root has nothing to cancel against.
        r1 = B.ref("r1", ["a", "b"])
        renamed = B.rename(r1, {"a": "x"})
        assert canonicalize(renamed) == renamed


class TestSqlTreesCanonicalize:
    def test_q1_collapses_to_bare_great_divide(self, catalog):
        canonical = canonicalize(translate_sql(Q1, catalog))
        assert canonical.to_text() == "great_divide(supplies, parts)"

    def test_q2_collapses_to_clean_small_divide(self, catalog):
        canonical = canonicalize(translate_sql(Q2, catalog))
        assert canonical.to_text() == (
            "divide(supplies, project[p_no](select[color = 'blue'](parts)))"
        )

    def test_q1_and_q3_share_a_canonical_form(self, catalog):
        q1 = canonicalize(translate_sql(Q1, catalog))
        q3 = canonicalize(translate_sql(Q3, catalog))
        assert q1 == q3

    def test_canonical_form_evaluates_identically(self, catalog):
        for sql in (Q1, Q2, Q3, Q2_NOT_EXISTS):
            expression = translate_sql(sql, catalog)
            assert canonicalize(expression).evaluate(catalog) == expression.evaluate(catalog)


class TestFingerprints:
    def test_equivalent_formulations_fingerprint_identically(self, catalog):
        assert (
            translate_sql(Q1, catalog).fingerprint()
            == translate_sql(Q3, catalog).fingerprint()
        )
        assert (
            translate_sql(Q2, catalog).fingerprint()
            == translate_sql(Q2_NOT_EXISTS, catalog).fingerprint()
        )

    def test_fluent_tree_matches_sql_fingerprint(self, catalog):
        supplies, parts = catalog.ref("supplies"), catalog.ref("parts")
        fluent = B.project(
            B.divide(
                supplies,
                B.project(B.select(parts, P.equals(P.attr("color"), "blue")), ["p_no"]),
            ),
            ["s_no"],
        )
        assert fluent.fingerprint() == translate_sql(Q2, catalog).fingerprint()

    def test_different_queries_fingerprint_differently(self, catalog):
        assert (
            translate_sql(Q1, catalog).fingerprint()
            != translate_sql(Q2, catalog).fingerprint()
        )

    def test_literal_contents_change_the_fingerprint(self):
        from repro.relation import Relation

        one = B.literal(Relation(["b"], [(1,)]))
        two = B.literal(Relation(["b"], [(2,)]))
        dividend = B.ref("r1", ["a", "b"])
        assert B.divide(dividend, one).fingerprint() != B.divide(dividend, two).fingerprint()

    def test_fingerprint_is_stable_across_processes_shape(self, catalog):
        # Same expression, two independent translations: identical digests.
        first = translate_sql(Q1, catalog).fingerprint()
        second = translate_sql(Q1, textbook_catalog()).fingerprint()
        assert first == second


# ----------------------------------------------------------------------
# metamorphic property: canonicalization never changes results
# ----------------------------------------------------------------------
PREDICATES = st.sampled_from(
    [P.TRUE, P.equals(P.attr("a"), 1), P.less_than(P.attr("a"), 2)]
)


@st.composite
def renamed_trees(draw):
    """Expression trees salted with the renames canonicalization targets."""
    r1 = B.ref("r1", ["a", "b"])
    r2 = B.ref("r2", ["b"])

    dividend = r1
    if draw(st.booleans()):
        dividend = B.rename(B.rename(r1, {"a": "q.a", "b": "q.b"}), {"q.a": "a", "q.b": "b"})
    if draw(st.booleans()):
        dividend = B.select(dividend, draw(PREDICATES))

    divisor = r2
    if draw(st.booleans()):
        divisor = B.rename(B.rename(r2, {"b": "d.b"}), {"d.b": "b"})
    if draw(st.booleans()):
        divisor = B.union(divisor, B.ref("r2b", ["b"]))

    expression = draw(
        st.sampled_from(["divide", "join", "semijoin", "antijoin", "product_rename"])
    )
    if expression == "divide":
        tree = B.divide(dividend, divisor)
    elif expression == "join":
        tree = B.natural_join(dividend, divisor)
    elif expression == "semijoin":
        tree = B.semijoin(dividend, divisor)
    elif expression == "antijoin":
        tree = B.antijoin(dividend, divisor)
    else:
        tree = B.product(dividend, B.rename(divisor, {"b": "c"}))

    if draw(st.booleans()):
        mapping = {name: f"out.{name}" for name in tree.schema.names}
        tree = B.rename(tree, mapping)
    if draw(st.booleans()) and "a" in tree.schema.name_set:
        tree = B.project(tree, ["a"])
    return tree


@st.composite
def databases(draw):
    catalog = Catalog()
    catalog.add_table("r1", draw(relations(("a", "b"), max_rows=8)))
    catalog.add_table("r2", draw(relations(("b",), max_rows=4)))
    catalog.add_table("r2b", draw(relations(("b",), max_rows=3)))
    return catalog


class TestCanonicalizationIsSemanticsPreserving:
    @settings(max_examples=80, deadline=None)
    @given(expression=renamed_trees(), catalog=databases())
    def test_same_result_on_random_databases(self, expression, catalog):
        canonical = canonicalize(expression)
        assert canonical.evaluate(catalog) == expression.evaluate(catalog)
        assert canonical.schema.name_set == expression.schema.name_set

    @settings(max_examples=40, deadline=None)
    @given(expression=renamed_trees())
    def test_canonicalization_is_idempotent(self, expression):
        canonical = canonicalize(expression)
        assert canonicalize(canonical) == canonical
