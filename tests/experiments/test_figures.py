"""Tests that every figure of the paper is regenerated exactly."""

import pytest

from repro.experiments import all_figures
from repro.experiments import figures as F
from repro.relation import Relation


class TestIndividualFigures:
    def test_figure_1_quotient(self):
        figure = F.figure_1()
        assert figure.verify()
        assert figure.computed == Relation(["a"], [(2,), (3,)])

    def test_figure_2_quotient(self):
        figure = F.figure_2()
        assert figure.verify()
        assert figure.computed.to_tuples(["a", "c"]) == {(2, 1), (2, 2), (3, 2)}

    def test_figure_3_join(self):
        figure = F.figure_3()
        assert figure.verify()
        assert len(figure.computed) == 3

    def test_figure_4_law1(self):
        figure = F.figure_4()
        assert figure.verify()
        assert figure.relations["r1 ÷ r2'"].to_set("a") == {2, 3, 4}

    def test_figure_5_counterexample(self):
        figure = F.figure_5()
        assert figure.verify()
        # The union quotient keeps a=1 although neither partition does.
        assert figure.relations["(r1' ∪ r1'') ÷ r2"].to_set("a") == {1}
        assert figure.relations["(r1' ÷ r2) ∪ (r1'' ÷ r2)"].is_empty()

    def test_figure_6_example1(self):
        figure = F.figure_6()
        assert figure.verify()
        assert figure.computed.is_empty()
        assert figure.relations["σ_b<3(r1) ÷ σ_b<3(r2)"].to_set("a") == {1, 2, 3, 4}

    def test_figure_7_law8(self):
        figure = F.figure_7()
        assert figure.verify()
        assert figure.relations["r1** ÷ r2"].to_set("a2") == {1, 3}
        assert figure.relations["lhs"] == figure.computed

    def test_figure_8_law9(self):
        figure = F.figure_8()
        assert figure.verify()
        assert figure.relations["π_b1(r2)"].to_set("b1") == {1, 3}
        assert figure.relations["lhs"] == figure.computed

    def test_figure_9_example3(self):
        figure = F.figure_9()
        assert figure.verify()
        assert len(figure.relations["r1* ⋈ r1**"]) == 9
        assert figure.relations["lhs"] == figure.computed

    def test_figure_10_law11(self):
        figure = F.figure_10()
        assert figure.verify()
        assert figure.relations["r1 = γ(r0)"].to_tuples(["a", "b"]) == {(1, 6), (2, 4), (3, 8)}

    def test_figure_11_law12(self):
        figure = F.figure_11()
        assert figure.verify()
        assert figure.relations["r1 = γ(r0)"].to_tuples(["a", "b"]) == {(6, 1), (1, 2), (6, 3), (3, 4)}


class TestHarness:
    def test_all_eleven_figures_verify(self):
        figures = all_figures()
        assert len(figures) == 11
        assert all(figure.verify() for figure in figures)

    def test_figure_ids_are_in_paper_order(self):
        ids = [figure.figure_id for figure in all_figures()]
        assert ids == [f"Figure {i}" for i in range(1, 12)]

    def test_render_mentions_status_and_caption(self):
        text = F.figure_1().render()
        assert "Figure 1" in text
        assert "reproduced" in text
        assert "r1 (dividend)" in text

    def test_render_flags_mismatches(self):
        figure = F.figure_1()
        figure.expected = Relation(["a"], [(99,)])
        assert "MISMATCH" in figure.render()
