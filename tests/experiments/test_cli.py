"""Tests for the command-line interface (python -m repro …)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_are_registered(self):
        parser = build_parser()
        for argv in (["figures"], ["query", "Q1"], ["claims"], ["mine"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_query_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "Q9"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "11/11 figures reproduced exactly." in output
        assert "Figure 1" in output and "Figure 11" in output

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3"])
    def test_query_command(self, capsys, name):
        assert main(["query", name]) == 0
        output = capsys.readouterr().out
        assert f"result of {name}" in output
        assert "s1" in output

    def test_query_without_recognizer(self, capsys):
        assert main(["query", "Q3", "--no-recognizer"]) == 0
        output = capsys.readouterr().out
        assert "great_divide" not in output.split("logical plan")[1].splitlines()[0]

    def test_mine_command(self, capsys):
        assert main(["mine", "--transactions", "60", "--min-support", "12", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "identical results : True" in output
