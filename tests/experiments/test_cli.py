"""Tests for the command-line interface (python -m repro …).

Every subcommand is driven through ``main([...])``; the assertions pin the
exit codes and the key output lines.
"""

import pytest

from repro.cli import build_parser, main
from repro.experiments.queries import Q2


class TestParser:
    def test_commands_are_registered(self):
        parser = build_parser()
        for argv in (
            ["figures"],
            ["query", "Q1"],
            ["sql", "SELECT p_no FROM parts"],
            ["explain", "Q2"],
            ["views"],
            ["claims"],
            ["mine"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_query_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "Q9"])

    def test_explain_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "Q9"])

    def test_sql_requires_text(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sql"])

    def test_sql_db_accepts_store_paths(self, capsys):
        # ``--db`` takes a built-in name or a saved-store path; an unknown
        # value parses but fails at open time with a clear error.
        args = build_parser().parse_args(["sql", "SELECT 1", "--db", "prod"])
        assert args.db == "prod"
        assert main(["sql", "SELECT p_no FROM parts", "--db", "prod"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFiguresCommand:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "11/11 figures reproduced exactly." in output
        assert "Figure 1" in output and "Figure 11" in output


class TestQueryCommand:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3"])
    def test_query_command(self, capsys, name):
        assert main(["query", name]) == 0
        output = capsys.readouterr().out
        assert f"result of {name}" in output
        assert "s1" in output

    def test_query_runs_once_and_reports_statistics(self, capsys):
        assert main(["query", "Q1"]) == 0
        output = capsys.readouterr().out
        assert "logical plan :" in output
        assert "rules fired  :" in output
        assert "max intermediate" in output
        assert "elapsed" in output

    def test_query_without_recognizer(self, capsys):
        assert main(["query", "Q3", "--no-recognizer"]) == 0
        output = capsys.readouterr().out
        assert "great_divide" not in output.split("logical plan")[1].splitlines()[0]


class TestSqlCommand:
    def test_sql_runs_an_arbitrary_query(self, capsys):
        assert main(["sql", "SELECT p_no FROM parts WHERE color = 'blue'"]) == 0
        output = capsys.readouterr().out
        assert "result" in output
        assert "p1" in output and "p2" in output
        assert "max intermediate" in output

    def test_sql_divide_by(self, capsys):
        assert main(["sql", Q2]) == 0
        output = capsys.readouterr().out
        assert "s1" in output and "s2" in output

    def test_sql_batch_size_flag(self, capsys):
        assert main(["sql", Q2, "--batch-size", "2"]) == 0
        output = capsys.readouterr().out
        assert "s1" in output and "s2" in output

    def test_sql_batch_size_must_be_positive(self, capsys):
        assert main(["sql", Q2, "--batch-size", "0"]) == 2
        assert "batch size must be positive" in capsys.readouterr().out

    def test_sql_explain_flag(self, capsys):
        assert main(["sql", Q2, "--explain"]) == 0
        output = capsys.readouterr().out
        assert "Physical plan" in output
        assert "actual=" in output

    def test_sql_random_database(self, capsys):
        assert main(["sql", "SELECT color FROM parts", "--db", "random"]) == 0
        output = capsys.readouterr().out
        assert "result" in output

    def test_sql_parse_error_exit_code(self, capsys):
        assert main(["sql", "SELECT"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_sql_unknown_table_exit_code(self, capsys):
        assert main(["sql", "SELECT x FROM missing"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_sql_compile_flag(self, capsys):
        assert main(["sql", Q2, "--compile"]) == 0
        output = capsys.readouterr().out
        assert "s1" in output and "s2" in output

    def test_sql_no_compile_flag(self, capsys):
        assert main(["sql", Q2, "--no-compile"]) == 0
        output = capsys.readouterr().out
        assert "s1" in output and "s2" in output

    def test_sql_compile_flags_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sql", Q2, "--compile", "--no-compile"])

    def test_sql_explain_reports_compilation_status(self, capsys):
        assert main(["sql", Q2, "--explain"]) == 0
        assert "compiled    : yes" in capsys.readouterr().out

    def test_sql_no_compile_explain_reports_off(self, capsys):
        assert main(["sql", Q2, "--explain", "--no-compile"]) == 0
        assert "compiled    : no (compilation off)" in capsys.readouterr().out


class TestExplainCommand:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3"])
    def test_explain_command(self, capsys, name):
        assert main(["explain", name]) == 0
        output = capsys.readouterr().out
        assert "Logical plan (as written)" in output
        assert "Logical plan (canonical, rewritten)" in output
        assert "Physical plan" in output
        assert "actual=" in output

    def test_explain_reports_coordinator_worker_split(self, capsys):
        assert main(["explain", "Q2"]) == 0
        output = capsys.readouterr().out
        assert "(coordinator " in output
        assert " ms + workers " in output

    def test_explain_verbose_appends_segment_source(self, capsys):
        assert main(["explain", "Q2", "--verbose"]) == 0
        output = capsys.readouterr().out
        assert "Compiled segments" in output
        assert "def _segment(_pull, _bind):" in output

    def test_explain_without_verbose_omits_segment_source(self, capsys):
        assert main(["explain", "Q2"]) == 0
        assert "def _segment" not in capsys.readouterr().out


class TestViewsCommand:
    def test_views_command(self, capsys):
        assert main(["views", "--edits", "25", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "maintained  : yes" in output
        assert "edits applied    : 25" in output
        assert "view verification: clean" in output


class TestClaimsCommand:
    def test_claims_command(self, capsys):
        assert main(["claims"]) == 0
        output = capsys.readouterr().out
        assert "claims confirmed" in output


class TestMineCommand:
    def test_mine_command(self, capsys):
        assert main(["mine", "--transactions", "60", "--min-support", "12", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "identical results : True" in output


class TestAnalyzeCommand:
    def test_analyze_textbook(self, capsys):
        assert main(["analyze"]) == 0
        output = capsys.readouterr().out
        assert "analyzed 2 table(s)" in output
        assert "supplies" in output and "distinct=" in output

    def test_analyze_specific_table(self, capsys):
        assert main(["analyze", "parts"]) == 0
        output = capsys.readouterr().out
        assert "analyzed 1 table(s)" in output

    def test_analyze_unknown_table(self, capsys):
        assert main(["analyze", "missing"]) == 2
        assert "error:" in capsys.readouterr().out
