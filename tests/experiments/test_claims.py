"""Tests for the qualitative-claim verification harness."""

import pytest

from repro.experiments import claims as C


@pytest.fixture(scope="module")
def checks():
    """Run the whole claim suite once and index the results by claim id."""
    return {check.claim_id: check for check in C.all_claims()}


class TestIndividualClaims:
    def test_quadratic_intermediate(self, checks):
        check = checks["first-class-operator"]
        assert check.holds
        assert check.baseline_value > 4 * check.improved_value

    def test_law7_short_circuit(self, checks):
        check = checks["law-7-short-circuit"]
        assert check.holds
        assert check.improved_value < check.baseline_value

    def test_law2_partitioning(self, checks):
        check = checks["law-2-parallel-scan"]
        assert check.holds
        assert check.improved_value < check.baseline_value

    def test_law13_partitioning(self, checks):
        check = checks["law-13-divisor-partitioning"]
        assert check.holds
        assert check.improved_value <= check.baseline_value

    def test_q3_recognition(self, checks):
        check = checks["q3-divide-recognition"]
        assert check.holds
        assert check.improved_value < check.baseline_value

    def test_example3_join_elimination(self, checks):
        check = checks["example-3-join-elimination"]
        assert check.holds

    def test_mining_equivalence(self, checks):
        check = checks["mining-support-counting"]
        assert check.holds
        assert check.baseline_value == check.improved_value


class TestHarness:
    def test_all_claims_confirmed(self, checks):
        assert len(checks) == 7
        assert all(check.holds for check in checks.values())

    def test_summaries_mention_status_and_metric(self, checks):
        for check in checks.values():
            summary = check.summary()
            assert "CONFIRMED" in summary
            assert check.claim_id in summary
