"""Tests for the Section 4 query experiments (Q1, Q2, Q3)."""

import pytest

from repro.experiments import Q1, Q2, Q2_NOT_EXISTS, Q3, q1_equals_q3, run_query
from repro.workloads import generate_catalog, textbook_catalog


@pytest.fixture
def catalog():
    return textbook_catalog()


class TestRunQuery:
    def test_q1_experiment(self, catalog):
        experiment = run_query(Q1, catalog)
        assert experiment.sql == Q1
        assert experiment.expression.contains_division()
        assert ("s1", "blue") in experiment.result.to_tuples(["s_no", "color"])

    def test_q2_experiment(self, catalog):
        experiment = run_query(Q2, catalog)
        assert experiment.result.to_set("s_no") == {"s1", "s2"}

    def test_q3_with_and_without_recognition(self, catalog):
        with_divide = run_query(Q3, catalog, recognize_division=True)
        without_divide = run_query(Q3, catalog, recognize_division=False)
        assert with_divide.expression.contains_division()
        assert not without_divide.expression.contains_division()
        assert with_divide.result == without_divide.result

    def test_q2_not_exists_matches_q2(self, catalog):
        assert run_query(Q2_NOT_EXISTS, catalog).result.to_set("s_no") == {"s1", "s2"}


class TestQ1EqualsQ3:
    def test_on_textbook_catalog(self, catalog):
        assert q1_equals_q3(catalog)

    @pytest.mark.parametrize("seed", range(3))
    def test_on_generated_catalogs(self, seed):
        catalog = generate_catalog(num_suppliers=15, num_parts=12, parts_per_supplier=5, seed=seed)
        assert q1_equals_q3(catalog)
