"""Tests for frequent itemset discovery (Apriori vs the great-divide miner)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.mining import (
    Itemset,
    apriori,
    candidate_generation,
    candidates_to_relation,
    count_support_by_great_divide,
    frequent_itemsets_by_great_divide,
    generate_baskets,
    sets_to_relation,
    transactions_to_sets,
)
from repro.relation import Relation


@pytest.fixture
def small_baskets():
    """The classic beer/bread example, small enough to verify by hand."""
    return {
        1: {"bread", "milk"},
        2: {"bread", "beer", "eggs"},
        3: {"milk", "beer", "cola"},
        4: {"bread", "milk", "beer"},
        5: {"bread", "milk", "cola"},
    }


class TestItemsetUtilities:
    def test_candidate_generation_joins_and_prunes(self):
        frequent = [Itemset({"a", "b"}), Itemset({"a", "c"}), Itemset({"b", "c"}), Itemset({"b", "d"})]
        candidates = candidate_generation(frequent, 3)
        # {a,b,c} survives; {a,b,d} is pruned because {a,d} is not frequent;
        # {b,c,d} is pruned because {c,d} is not frequent.
        assert candidates == [Itemset({"a", "b", "c"})]

    def test_candidate_generation_requires_size_two(self):
        with pytest.raises(MiningError):
            candidate_generation([], 1)

    def test_vertical_roundtrip(self, small_baskets):
        relation = sets_to_relation(small_baskets)
        assert transactions_to_sets(relation) == {k: set(v) for k, v in small_baskets.items()}

    def test_candidates_to_relation_is_deterministic(self):
        candidates = [Itemset({"b", "a"}), Itemset({"c"})]
        relation = candidates_to_relation(candidates)
        assert relation.to_tuples(["item", "itemset"]) == {("a", 0), ("b", 0), ("c", 1)}


class TestApriori:
    def test_hand_checked_supports(self, small_baskets):
        result = apriori(small_baskets, min_support=3)
        assert result[Itemset({"bread"})] == 4
        assert result[Itemset({"milk"})] == 4
        assert result[Itemset({"beer"})] == 3
        assert result[Itemset({"bread", "milk"})] == 3
        assert Itemset({"bread", "beer"}) not in result

    def test_min_support_validation(self, small_baskets):
        with pytest.raises(MiningError):
            apriori(small_baskets, min_support=0)

    def test_max_size_limits_exploration(self, small_baskets):
        result = apriori(small_baskets, min_support=1, max_size=1)
        assert all(len(itemset) == 1 for itemset in result)

    def test_planted_patterns_are_found(self):
        dataset = generate_baskets(num_transactions=120, num_patterns=2, pattern_size=3, seed=4)
        result = apriori(dataset.baskets, min_support=int(0.2 * dataset.num_transactions))
        for pattern in dataset.patterns:
            assert pattern in result


class TestGreatDivideMiner:
    def test_support_counting_matches_manual_check(self, small_baskets):
        relation = sets_to_relation(small_baskets)
        supports = count_support_by_great_divide(
            relation, [Itemset({"bread", "milk"}), Itemset({"beer", "cola"})]
        )
        assert supports[Itemset({"bread", "milk"})] == 3
        assert supports[Itemset({"beer", "cola"})] == 1

    def test_empty_candidate_list(self, small_baskets):
        assert count_support_by_great_divide(sets_to_relation(small_baskets), []) == {}

    def test_candidates_of_mixed_sizes_are_supported(self, small_baskets):
        """The paper notes the computation does not require equal-size candidates."""
        relation = sets_to_relation(small_baskets)
        supports = count_support_by_great_divide(
            relation, [Itemset({"bread"}), Itemset({"bread", "milk", "cola"})]
        )
        assert supports[Itemset({"bread"})] == 4
        assert supports[Itemset({"bread", "milk", "cola"})] == 1

    def test_agrees_with_apriori_on_small_example(self, small_baskets):
        relation = sets_to_relation(small_baskets)
        via_divide = frequent_itemsets_by_great_divide(relation, min_support=3)
        via_apriori = apriori(small_baskets, min_support=3)
        assert via_divide == via_apriori

    @pytest.mark.parametrize("algorithm", [None, "hash", "groupwise", "nested_loops"])
    def test_agrees_with_apriori_on_generated_data(self, algorithm):
        dataset = generate_baskets(num_transactions=80, num_items=20, num_patterns=3, seed=13)
        min_support = max(2, int(0.15 * dataset.num_transactions))
        via_divide = frequent_itemsets_by_great_divide(
            dataset.relation, min_support=min_support, algorithm=algorithm
        )
        via_apriori = apriori(dataset.baskets, min_support=min_support)
        assert via_divide == via_apriori

    @settings(max_examples=15, deadline=None)
    @given(
        data=st.dictionaries(
            keys=st.integers(min_value=0, max_value=15),
            values=st.frozensets(st.integers(min_value=0, max_value=6), min_size=1, max_size=5),
            min_size=1,
            max_size=12,
        ),
        min_support=st.integers(min_value=1, max_value=4),
    )
    def test_property_agreement_with_apriori(self, data, min_support):
        relation = sets_to_relation(data)
        assert frequent_itemsets_by_great_divide(relation, min_support) == apriori(data, min_support)

    def test_unknown_algorithm_is_rejected(self, small_baskets):
        with pytest.raises(MiningError):
            count_support_by_great_divide(
                sets_to_relation(small_baskets), [Itemset({"bread"})], algorithm="quantum"
            )

    def test_invalid_min_support(self, small_baskets):
        with pytest.raises(MiningError):
            frequent_itemsets_by_great_divide(sets_to_relation(small_baskets), 0)


class TestDataGenerator:
    def test_deterministic_given_seed(self):
        a = generate_baskets(seed=5)
        b = generate_baskets(seed=5)
        assert a.baskets == b.baskets

    def test_shapes(self):
        dataset = generate_baskets(num_transactions=50, num_items=15, seed=1)
        assert dataset.num_transactions == 50
        assert dataset.relation.schema.names == ("tid", "item")
        assert all(len(pattern) == 3 for pattern in dataset.patterns)

    def test_parameter_validation(self):
        with pytest.raises(MiningError):
            generate_baskets(num_items=2, pattern_size=5)
        with pytest.raises(MiningError):
            generate_baskets(num_transactions=0)
