"""Tests for the rewrite-rule framework and the registry."""

import pytest

from repro.algebra import builders as B
from repro.algebra.catalog import Catalog
from repro.errors import RewriteError
from repro.laws import (
    RewriteContext,
    all_rules,
    find_applicable,
    get_rule,
    great_divide_rules,
    pushdown_rules,
    rules_by_reference,
    small_divide_rules,
)


class TestRegistry:
    def test_every_law_of_the_paper_is_implemented(self):
        references = set(rules_by_reference())
        expected_laws = {f"Law {i}" for i in range(1, 18)}
        expected_examples = {f"Example {i}" for i in range(1, 5)}
        assert expected_laws <= references
        assert expected_examples <= references

    def test_rule_counts(self):
        assert len(small_divide_rules()) == 15  # Laws 1-12 + Examples 1-3
        assert len(great_divide_rules()) == 6  # Laws 13-17 + Example 4
        assert len(all_rules()) == 21

    def test_names_are_unique(self):
        names = [rule.name for rule in all_rules()]
        assert len(names) == len(set(names))

    def test_get_rule_by_name(self):
        rule = get_rule("law_03_selection_pushdown")
        assert rule.paper_reference == "Law 3"

    def test_get_rule_unknown_name(self):
        with pytest.raises(RewriteError):
            get_rule("law_99_does_not_exist")

    def test_pushdown_rules_are_static(self):
        assert all(not rule.requires_data for rule in pushdown_rules())
        assert len(pushdown_rules()) >= 8

    def test_every_rule_has_documentation(self):
        for rule in all_rules():
            assert rule.paper_reference, rule.name
            assert rule.description, rule.name


class TestRewriteContext:
    def test_from_catalog(self, figure1_dividend):
        catalog = Catalog()
        catalog.add_table("r1", figure1_dividend)
        context = RewriteContext.from_catalog(catalog)
        assert context.can_inspect_data
        assert context.evaluate(catalog.ref("r1")) == figure1_dividend

    def test_static_only_blocks_data_access(self, figure1_dividend):
        catalog = Catalog()
        catalog.add_table("r1", figure1_dividend)
        context = RewriteContext.from_catalog(catalog, static_only=True)
        assert not context.can_inspect_data
        with pytest.raises(RewriteError):
            context.evaluate(catalog.ref("r1"))

    def test_empty_context_cannot_inspect_data(self):
        context = RewriteContext()
        assert not context.can_inspect_data


class TestRuleProtocol:
    def test_try_apply_returns_none_on_mismatch(self, figure1_dividend):
        rule = get_rule("law_03_selection_pushdown")
        expr = B.literal(figure1_dividend)
        assert rule.try_apply(expr) is None

    def test_apply_raises_on_mismatch(self, figure1_dividend):
        rule = get_rule("law_03_selection_pushdown")
        expr = B.literal(figure1_dividend)
        with pytest.raises(RewriteError):
            rule.apply(expr)

    def test_find_applicable(self, figure1_dividend, figure1_divisor):
        from repro.algebra import predicates as P

        expr = B.select(
            B.divide(B.literal(figure1_dividend), B.literal(figure1_divisor)),
            P.equals(P.attr("a"), 2),
        )
        applicable = find_applicable(expr)
        assert any(rule.paper_reference == "Law 3" for rule in applicable)

    def test_repr_mentions_reference(self):
        assert "Law 3" in repr(get_rule("law_03_selection_pushdown"))
