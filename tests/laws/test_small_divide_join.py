"""Property and example tests for Law 10 and Example 3 (divide vs joins)."""

from hypothesis import assume, given

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.laws.small_divide import Example3JoinElimination, Law10SemiJoinCommute
from repro.relation import Relation
from tests.laws.helpers import assert_rewrite_preserves_semantics, assert_sides_equal, context_for, lit
from tests.strategies import dividends, divisors, relations


class TestLaw10:
    @given(dividends(), divisors(), relations(("a",), max_rows=4))
    def test_equivalence_on_random_relations(self, dividend, divisor, filter_relation):
        lhs, rhs = Law10SemiJoinCommute.sides(lit(dividend), lit(divisor), lit(filter_relation))
        assert_sides_equal(lhs, rhs)

    @given(relations(("a1", "a2", "b"), max_rows=10), divisors(), relations(("a1",), max_rows=3))
    def test_equivalence_with_partial_quotient_filter(self, dividend, divisor, filter_relation):
        """The filter relation may cover a strict subset of the quotient attributes."""
        lhs, rhs = Law10SemiJoinCommute.sides(lit(dividend), lit(divisor), lit(filter_relation))
        assert_sides_equal(lhs, rhs)

    def test_rule_application(self, figure1_dividend, figure1_divisor):
        rule = Law10SemiJoinCommute()
        filter_relation = Relation(["a"], [(2,), (9,)])
        expr = B.semijoin(
            B.divide(lit(figure1_dividend), lit(figure1_divisor)), lit(filter_relation)
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        # After the rewrite the semi-join is applied to the dividend first.
        assert rewritten.to_text().startswith("divide")
        assert rewritten.evaluate({}).to_set("a") == {2}

    def test_rule_rejects_filter_on_divisor_attributes(self, figure1_dividend, figure1_divisor):
        rule = Law10SemiJoinCommute()
        expr = B.semijoin(
            B.divide(lit(figure1_dividend), lit(figure1_divisor)),
            lit(Relation(["b"], [(1,)])),
        )
        assert not rule.matches(expr)

    def test_rule_rejects_semijoin_over_non_divide(self, figure1_dividend):
        rule = Law10SemiJoinCommute()
        expr = B.semijoin(lit(figure1_dividend), lit(Relation(["a"], [(1,)])))
        assert not rule.matches(expr)


class TestExample3:
    @staticmethod
    def _divisor_within(drop: Relation, size: int) -> Relation:
        """A divisor r2(b1, b2) whose b2 values are drawn from ``drop``."""
        drop_values = sorted(drop.to_set("b2"))
        rows = [(i % 3, drop_values[i % len(drop_values)]) for i in range(size)]
        return Relation(["b1", "b2"], rows)

    @given(
        relations(("a", "b1"), max_rows=10),
        relations(("b2",), min_rows=1, max_rows=3),
        relations(("b1",), min_rows=1, max_rows=3),
    )
    def test_equivalence_under_foreign_key(self, keep, drop, divisor_b1_values):
        drop_values = sorted(drop.to_set("b2"))
        divisor_rows = [
            (row["b1"], drop_values[i % len(drop_values)])
            for i, row in enumerate(divisor_b1_values.sorted_rows())
        ]
        divisor = Relation(["b1", "b2"], divisor_rows)
        assume(not divisor.is_empty())
        predicate = P.less_than(P.attr("b1"), P.attr("b2"))
        lhs, rhs = Example3JoinElimination.sides(lit(keep), lit(drop), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)

    def test_figure_9_worked_example(self, figure9_relations):
        predicate = P.less_than(P.attr("b1"), P.attr("b2"))
        lhs, rhs = Example3JoinElimination.sides(
            lit(figure9_relations["r1_star"]),
            lit(figure9_relations["r1_star_star"]),
            lit(figure9_relations["r2"]),
            predicate,
        )
        # Figure 9 (d): the theta-join has 9 tuples.
        joined = figure9_relations["r1_star"].theta_join(
            figure9_relations["r1_star_star"].rename({"b2": "b2"}), predicate
        )
        assert len(joined) == 9
        # Figure 9 (e): π_b1(σ_b1<b2(r2)) = {1, 3}.
        selected = figure9_relations["r2"].select(predicate).project(["b1"])
        assert selected.to_set("b1") == {1, 3}
        # Figure 9 (f): the quotient is {1, 3}.
        assert lhs.evaluate({}) == figure9_relations["quotient"]
        assert rhs.evaluate({}) == figure9_relations["quotient"]

    def test_rule_application_removes_the_join(self, figure9_relations):
        rule = Example3JoinElimination()
        predicate = P.less_than(P.attr("b1"), P.attr("b2"))
        expr = B.divide(
            B.theta_join(
                lit(figure9_relations["r1_star"]),
                lit(figure9_relations["r1_star_star"]),
                predicate,
            ),
            lit(figure9_relations["r2"]),
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert "theta_join" not in rewritten.to_text()

    def test_rule_rejects_predicate_on_quotient_attributes(self, figure9_relations):
        rule = Example3JoinElimination()
        predicate = P.less_than(P.attr("a"), P.attr("b2"))
        expr = B.divide(
            B.theta_join(
                lit(figure9_relations["r1_star"]),
                lit(figure9_relations["r1_star_star"]),
                predicate,
            ),
            lit(figure9_relations["r2"]),
        )
        assert not rule.matches(expr, context_for())

    def test_rule_rejects_violated_foreign_key(self, figure9_relations):
        rule = Example3JoinElimination()
        predicate = P.less_than(P.attr("b1"), P.attr("b2"))
        missing_reference = Relation(["b2"], [(1,)])  # r2 references value 4
        expr = B.divide(
            B.theta_join(lit(figure9_relations["r1_star"]), lit(missing_reference), predicate),
            lit(figure9_relations["r2"]),
        )
        assert not rule.matches(expr, context_for())
