"""Property and example tests for Laws 11 and 12 (divide vs grouping)."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.algebra import builders as B
from repro.algebra.catalog import Catalog
from repro.algebra.expressions import LiteralRelation
from repro.division import small_divide
from repro.laws import RewriteContext
from repro.laws.conditions import attribute_is_key
from repro.laws.small_divide import (
    Law11GroupedDividend,
    Law12GroupedDivisorKey,
    law11_divide,
    law12_divide,
)
from repro.relation import Relation, aggregates
from tests.laws.helpers import context_for, lit
from tests.strategies import divisors, relations


def grouped_dividends_on_a():
    """Dividends where ``a`` is a key (one tuple per quotient candidate),
    built the way Law 11 prescribes: as the output of a grouping on a."""
    return relations(("a", "x"), min_rows=0, max_rows=10).map(
        lambda r0: r0.group_by(["a"], {"b": aggregates.sum_of("x")})
    )


def grouped_dividends_on_b():
    """Dividends where ``b`` is a key, as Law 12 prescribes (grouping on b)."""
    return relations(("x", "b"), min_rows=0, max_rows=10).map(
        lambda r0: r0.group_by(["b"], {"a": aggregates.sum_of("x")})
    )


class TestLaw11:
    @given(grouped_dividends_on_a(), divisors())
    def test_case_analysis_matches_reference(self, dividend, divisor):
        assert attribute_is_key(dividend, ["a"])
        assert law11_divide(dividend, divisor) == small_divide(dividend, divisor)

    def test_figure_10_worked_example(self, figure10_relations):
        r0, r1, r2 = (figure10_relations[k] for k in ("r0", "r1", "r2"))
        grouped = r0.group_by(["a"], {"b": aggregates.sum_of("x")})
        assert grouped == r1  # Figure 10 (b)
        assert r1.semijoin(r2).to_tuples(["a", "b"]) == {(2, 4)}  # Figure 10 (d)
        assert law11_divide(r1, r2) == figure10_relations["quotient"]
        assert small_divide(r1, r2) == figure10_relations["quotient"]

    def test_empty_divisor_branch(self, figure10_relations):
        """Paper: r1 ÷ ∅ = r1; we project to the quotient schema A."""
        r1 = figure10_relations["r1"]
        result = law11_divide(r1, Relation.empty(["b"]))
        assert result == r1.project(["a"])

    def test_large_divisor_branch(self, figure10_relations):
        r1 = figure10_relations["r1"]
        divisor = Relation(["b"], [(4,), (6,)])
        assert law11_divide(r1, divisor).is_empty()
        assert small_divide(r1, divisor).is_empty()

    def test_rule_application_on_group_by_expression(self, figure10_relations):
        rule = Law11GroupedDividend()
        catalog = Catalog()
        catalog.add_table("r0", figure10_relations["r0"])
        catalog.add_table("r2", figure10_relations["r2"])
        grouped = B.group_by(catalog.ref("r0"), ["a"], [B.aggregate("sum", "x", "b")])
        expr = B.divide(grouped, catalog.ref("r2"))
        context = RewriteContext.from_catalog(catalog)
        assert rule.matches(expr, context)
        rewritten = rule.apply(expr, context)
        assert rewritten.evaluate(catalog) == figure10_relations["quotient"]
        assert "divide" not in rewritten.to_text()

    def test_rule_branches(self, figure10_relations):
        rule = Law11GroupedDividend()
        r1 = figure10_relations["r1"]

        def rewrite_with_divisor(divisor):
            context = context_for(r1=r1, r2=divisor)
            expr = B.divide(context.catalog.ref("r1"), context.catalog.ref("r2"))
            assert rule.matches(expr, context)
            rewritten = rule.apply(expr, context)
            assert rewritten.evaluate(context.database) == small_divide(r1, divisor)
            return rewritten

        empty = rewrite_with_divisor(Relation.empty(["b"]))
        assert "semijoin" not in empty.to_text()
        single = rewrite_with_divisor(Relation(["b"], [(4,)]))
        assert "semijoin" in single.to_text()
        large = rewrite_with_divisor(Relation(["b"], [(4,), (8,)]))
        assert isinstance(large, LiteralRelation)

    def test_rule_rejects_non_key_dividend(self, figure1_dividend, figure1_divisor):
        rule = Law11GroupedDividend()
        context = context_for(r1=figure1_dividend, r2=figure1_divisor)
        expr = B.divide(context.catalog.ref("r1"), context.catalog.ref("r2"))
        assert not rule.matches(expr, context)

    def test_rule_uses_declared_key_without_data(self, figure10_relations):
        rule = Law11GroupedDividend()
        catalog = Catalog()
        catalog.add_table("r1", figure10_relations["r1"], key=["a"])
        catalog.add_table("r2", figure10_relations["r2"])
        expr = B.divide(catalog.ref("r1"), catalog.ref("r2"))
        static_context = RewriteContext(catalog=catalog)
        assert rule.matches(expr, static_context)


class TestLaw12:
    @given(grouped_dividends_on_b(), st.data())
    def test_case_analysis_matches_reference(self, dividend, data):
        assume(not dividend.is_empty())
        # Draw a nonempty divisor from the dividend's own b values so the
        # foreign-key precondition r2.B ⊆ π_B(r1) holds.
        b_values = sorted(dividend.to_set("b"))
        chosen = data.draw(
            st.lists(st.sampled_from(b_values), min_size=1, max_size=len(b_values), unique=True)
        )
        divisor = Relation(["b"], [(value,) for value in chosen])
        assert attribute_is_key(dividend, ["b"])
        assert law12_divide(dividend, divisor) == small_divide(dividend, divisor)

    def test_figure_11_worked_example(self, figure11_relations):
        r0, r1, r2 = (figure11_relations[k] for k in ("r0", "r1", "r2"))
        grouped = r0.group_by(["b"], {"a": aggregates.sum_of("x")})
        assert grouped == r1  # Figure 11 (b)
        assert r1.semijoin(r2).to_tuples(["a", "b"]) == {(6, 1), (6, 3)}  # Figure 11 (d)
        assert law12_divide(r1, r2) == figure11_relations["quotient"]
        assert small_divide(r1, r2) == figure11_relations["quotient"]

    def test_multiple_candidates_yield_empty_quotient(self, figure11_relations):
        r1 = figure11_relations["r1"]
        divisor = Relation(["b"], [(1,), (2,)])  # π_A(r1 ⋉ r2) = {6, 1}: two values
        assert law12_divide(r1, divisor).is_empty()
        assert small_divide(r1, divisor).is_empty()

    def test_rule_application(self, figure11_relations):
        rule = Law12GroupedDivisorKey()
        context = context_for(r1=figure11_relations["r1"], r2=figure11_relations["r2"])
        expr = B.divide(context.catalog.ref("r1"), context.catalog.ref("r2"))
        assert rule.matches(expr, context)
        rewritten = rule.apply(expr, context)
        assert rewritten.evaluate(context.database) == figure11_relations["quotient"]
        assert "divide" not in rewritten.to_text()

    def test_rule_returns_empty_literal_for_ambiguous_candidates(self, figure11_relations):
        rule = Law12GroupedDivisorKey()
        divisor = Relation(["b"], [(1,), (2,)])
        context = context_for(r1=figure11_relations["r1"], r2=divisor)
        expr = B.divide(context.catalog.ref("r1"), context.catalog.ref("r2"))
        rewritten = rule.apply(expr, context)
        assert isinstance(rewritten, LiteralRelation)
        assert rewritten.evaluate(context.database).is_empty()

    def test_rule_rejects_empty_divisor(self, figure11_relations):
        rule = Law12GroupedDivisorKey()
        context = context_for(r1=figure11_relations["r1"], r2=Relation.empty(["b"]))
        expr = B.divide(context.catalog.ref("r1"), context.catalog.ref("r2"))
        assert not rule.matches(expr, context)

    def test_rule_rejects_foreign_key_violation(self, figure11_relations):
        rule = Law12GroupedDivisorKey()
        divisor = Relation(["b"], [(1,), (99,)])  # 99 does not appear in r1.b
        context = context_for(r1=figure11_relations["r1"], r2=divisor)
        expr = B.divide(context.catalog.ref("r1"), context.catalog.ref("r2"))
        assert not rule.matches(expr, context)

    def test_rule_rejects_non_key_dividend(self, figure1_dividend, figure1_divisor):
        rule = Law12GroupedDivisorKey()
        context = context_for(r1=figure1_dividend, r2=figure1_divisor)
        expr = B.divide(context.catalog.ref("r1"), context.catalog.ref("r2"))
        assert not rule.matches(expr, context)
