"""Property and example tests for Laws 3, 4 and Example 1 (divide vs selection)."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.laws.small_divide import (
    Example1DividendRestriction,
    Law3SelectionPushdown,
    Law4ReplicateSelection,
)
from repro.relation import Relation
from tests.laws.helpers import assert_rewrite_preserves_semantics, assert_sides_equal, context_for, lit
from tests.strategies import VALUES, dividends, divisors

#: Predicates over the quotient attribute a.
A_PREDICATES = st.sampled_from(
    [
        P.equals(P.attr("a"), 1),
        P.less_than(P.attr("a"), 2),
        P.greater_equal(P.attr("a"), 2),
        P.not_equals(P.attr("a"), 0),
    ]
)

#: Predicates over the divisor attribute b.
B_PREDICATES = st.sampled_from(
    [
        P.less_than(P.attr("b"), 3),
        P.less_than(P.attr("b"), 2),
        P.equals(P.attr("b"), 1),
        P.greater_than(P.attr("b"), 0),
    ]
)


class TestLaw3:
    @given(dividends(), divisors(), A_PREDICATES)
    def test_equivalence_on_random_relations(self, dividend, divisor, predicate):
        lhs, rhs = Law3SelectionPushdown.sides(lit(dividend), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)

    def test_rule_application(self, figure1_dividend, figure1_divisor):
        rule = Law3SelectionPushdown()
        expr = B.select(
            B.divide(lit(figure1_dividend), lit(figure1_divisor)), P.equals(P.attr("a"), 2)
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        # After the rewrite the selection sits below the divide.
        assert rewritten.to_text().startswith("divide")
        assert rewritten.evaluate({}).to_set("a") == {2}

    def test_rule_rejects_predicate_on_divisor_attributes(self, figure1_dividend, figure1_divisor):
        rule = Law3SelectionPushdown()
        # The predicate references b, which is not a quotient attribute —
        # such an expression is not even well-typed, so the rule must not
        # claim to match it (schema inference rejects it first).
        expr = B.select(
            B.divide(lit(figure1_dividend), lit(figure1_divisor)), P.equals(P.attr("a"), 1)
        )
        assert rule.matches(expr)
        other = B.select(B.divide(lit(figure1_dividend), lit(figure1_divisor)), P.TRUE)
        assert rule.matches(other)  # TRUE references no attributes at all

    def test_rule_ignores_selection_over_non_divide(self, figure1_dividend):
        rule = Law3SelectionPushdown()
        expr = B.select(lit(figure1_dividend), P.equals(P.attr("a"), 1))
        assert not rule.matches(expr)


class TestLaw4:
    @given(dividends(), divisors(), B_PREDICATES)
    def test_equivalence_when_selected_divisor_nonempty(self, dividend, divisor, predicate):
        assume(not divisor.select(predicate).is_empty())
        lhs, rhs = Law4ReplicateSelection.sides(lit(dividend), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)

    def test_empty_selected_divisor_breaks_the_equivalence(self):
        """Documents why the rule checks σ_p(r2) ≠ ∅ (see the docstring)."""
        dividend = Relation(["a", "b"], [(1, 5)])
        divisor = Relation(["b"], [(5,)])
        predicate = P.less_than(P.attr("b"), 3)  # selects nothing from the divisor
        lhs, rhs = Law4ReplicateSelection.sides(lit(dividend), lit(divisor), predicate)
        assert lhs.evaluate({}).to_set("a") == {1}  # divide by ∅ keeps all candidates
        assert rhs.evaluate({}).is_empty()

    def test_rule_application(self, figure1_dividend, figure1_divisor):
        rule = Law4ReplicateSelection()
        predicate = P.less_than(P.attr("b"), 3)
        expr = B.divide(lit(figure1_dividend), B.select(lit(figure1_divisor), predicate))
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().count("select") == 2

    def test_rule_is_conservative_without_data(self, figure1_dividend, figure1_divisor):
        rule = Law4ReplicateSelection()
        predicate = P.less_than(P.attr("b"), 3)
        expr = B.divide(lit(figure1_dividend), B.select(lit(figure1_divisor), predicate))
        assert not rule.matches(expr)  # no database available
        assert Law4ReplicateSelection(assume_nonempty_divisor=True).matches(expr)

    def test_rule_rejects_empty_selected_divisor(self, figure1_dividend, figure1_divisor):
        rule = Law4ReplicateSelection()
        predicate = P.greater_than(P.attr("b"), 100)
        expr = B.divide(lit(figure1_dividend), B.select(lit(figure1_divisor), predicate))
        assert not rule.matches(expr, context_for())


class TestExample1:
    @given(dividends(), divisors(), B_PREDICATES)
    def test_equivalence_on_random_relations(self, dividend, divisor, predicate):
        lhs, rhs = Example1DividendRestriction.sides(lit(dividend), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)

    def test_figure_6_worked_example(self, figure4_dividend):
        """Figure 6: σ_{b<3}(r1) ÷ r2 is empty because σ_{b≥3}(r2) is nonempty."""
        divisor = Relation(["b"], [(1,), (3,), (4,)])
        predicate = P.less_than(P.attr("b"), 3)
        lhs, rhs = Example1DividendRestriction.sides(lit(figure4_dividend), lit(divisor), predicate)

        restricted_dividend = figure4_dividend.select(predicate)
        assert len(restricted_dividend) == 5  # Figure 6 (b)
        restricted_divisor = divisor.select(predicate)
        assert restricted_divisor.to_set("b") == {1}  # Figure 6 (d)
        from repro.division import small_divide

        assert small_divide(restricted_dividend, restricted_divisor).to_set("a") == {1, 2, 3, 4}  # (f)
        assert lhs.evaluate({}).is_empty()  # Figure 6 (e)
        assert rhs.evaluate({}).is_empty()  # Figure 6 (i)

    def test_rule_application(self, figure4_dividend):
        rule = Example1DividendRestriction()
        divisor = Relation(["b"], [(1,), (3,), (4,)])
        predicate = P.less_than(P.attr("b"), 3)
        expr = B.divide(B.select(lit(figure4_dividend), predicate), lit(divisor))
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("difference")

    def test_rule_rejects_predicate_on_quotient_attributes(self, figure1_dividend, figure1_divisor):
        rule = Example1DividendRestriction()
        expr = B.divide(
            B.select(lit(figure1_dividend), P.equals(P.attr("a"), 1)), lit(figure1_divisor)
        )
        assert not rule.matches(expr)
