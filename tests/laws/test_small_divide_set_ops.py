"""Property and example tests for Laws 5, 6 and 7 (intersection and difference)."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.laws.conditions import projections_disjoint
from repro.laws.small_divide import (
    Law5IntersectionPushdown,
    Law6DifferencePushdown,
    Law7DisjointDifferenceElimination,
    predicate_implies,
)
from repro.relation import Relation
from tests.laws.helpers import assert_rewrite_preserves_semantics, assert_sides_equal, context_for, lit
from tests.strategies import dividends, divisors, nonempty_divisors

#: Predicate pairs (outer, inner) over the quotient attribute a with inner ⇒ outer.
A_PREDICATE_PAIRS = st.sampled_from(
    [
        (P.greater_than(P.attr("a"), 0), P.greater_than(P.attr("a"), 1)),
        (P.greater_equal(P.attr("a"), 1), P.And(P.greater_equal(P.attr("a"), 1), P.less_than(P.attr("a"), 3))),
        (P.less_equal(P.attr("a"), 3), P.equals(P.attr("a"), 2)),
        (P.TRUE, P.equals(P.attr("a"), 1)),
    ]
)


class TestLaw5:
    @given(dividends(), dividends(), nonempty_divisors())
    def test_equivalence_for_nonempty_divisor(self, part1, part2, divisor):
        lhs, rhs = Law5IntersectionPushdown.sides(lit(part1), lit(part2), lit(divisor))
        assert_sides_equal(lhs, rhs)

    def test_empty_divisor_breaks_the_equivalence(self):
        """Documents the nonemptiness requirement recorded in the rule docstring."""
        part1 = Relation(["a", "b"], [(1, 1)])
        part2 = Relation(["a", "b"], [(1, 2)])
        divisor = Relation.empty(["b"])
        lhs, rhs = Law5IntersectionPushdown.sides(lit(part1), lit(part2), lit(divisor))
        assert lhs.evaluate({}).is_empty()
        assert rhs.evaluate({}).to_set("a") == {1}

    def test_rule_application(self, figure1_dividend, figure1_divisor):
        rule = Law5IntersectionPushdown()
        part1 = figure1_dividend.select(lambda row: row["a"] != 1)
        expr = B.divide(B.intersection(lit(figure1_dividend), lit(part1)), lit(figure1_divisor))
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("intersect")

    def test_rule_is_conservative_without_data(self, figure1_dividend, figure1_divisor):
        rule = Law5IntersectionPushdown()
        expr = B.divide(
            B.intersection(lit(figure1_dividend), lit(figure1_dividend)), lit(figure1_divisor)
        )
        assert not rule.matches(expr)
        assert Law5IntersectionPushdown(assume_nonempty_divisor=True).matches(expr)
        assert rule.matches(expr, context_for())


class TestLaw6:
    @given(dividends(), divisors(), A_PREDICATE_PAIRS)
    def test_equivalence_for_a_restrictions(self, dividend, divisor, predicates):
        outer, inner = predicates
        lhs, rhs = Law6DifferencePushdown.sides(lit(dividend), outer, inner, lit(divisor))
        assert_sides_equal(lhs, rhs)

    def test_plain_containment_is_not_enough(self):
        """The law needs A-restrictions of the same relation, not just r1' ⊇ r1''."""
        part_outer = Relation(["a", "b"], [(1, 1), (1, 2)])
        part_inner = Relation(["a", "b"], [(1, 1)])  # subset, but not an A-restriction
        divisor = Relation(["b"], [(1,), (2,)])
        lhs = B.divide(B.difference(lit(part_outer), lit(part_inner)), lit(divisor))
        rhs = B.difference(
            B.divide(lit(part_outer), lit(divisor)),
            B.divide(lit(part_inner), lit(divisor)),
        )
        assert lhs.evaluate({}).is_empty()
        assert rhs.evaluate({}).to_set("a") == {1}

    def test_predicate_implies_helper(self):
        p = P.greater_than(P.attr("a"), 0)
        q = P.And(p, P.less_than(P.attr("a"), 5))
        assert predicate_implies(q, p)
        assert predicate_implies(p, p)
        assert not predicate_implies(p, q)

    def test_rule_application_with_syntactic_implication(self, figure4_dividend, figure1_divisor):
        rule = Law6DifferencePushdown()
        outer = P.greater_than(P.attr("a"), 0)
        inner = P.And(P.greater_than(P.attr("a"), 0), P.greater_than(P.attr("a"), 2))
        dividend = lit(figure4_dividend)
        expr = B.divide(
            B.difference(B.select(dividend, outer), B.select(dividend, inner)),
            lit(figure1_divisor),
        )
        assert rule.matches(expr)  # static match, no data needed
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("difference")

    def test_rule_uses_data_when_implication_is_not_syntactic(self, figure4_dividend, figure1_divisor):
        rule = Law6DifferencePushdown()
        outer = P.less_than(P.attr("a"), 10)     # keeps everything
        inner = P.greater_than(P.attr("a"), 2)   # subset, but not syntactically implied
        dividend = lit(figure4_dividend)
        expr = B.divide(
            B.difference(B.select(dividend, outer), B.select(dividend, inner)),
            lit(figure1_divisor),
        )
        assert not rule.matches(expr)  # cannot be established statically
        assert rule.matches(expr, context_for())

    def test_rule_rejects_predicates_on_divisor_attributes(self, figure4_dividend, figure1_divisor):
        rule = Law6DifferencePushdown()
        outer = P.greater_than(P.attr("b"), 0)
        inner = P.And(P.greater_than(P.attr("b"), 0), P.greater_than(P.attr("b"), 2))
        dividend = lit(figure4_dividend)
        expr = B.divide(
            B.difference(B.select(dividend, outer), B.select(dividend, inner)),
            lit(figure1_divisor),
        )
        assert not rule.matches(expr, context_for())


class TestLaw7:
    @given(dividends(), dividends(), divisors())
    def test_equivalence_for_disjoint_candidates(self, part1, part2, divisor):
        assume(projections_disjoint(part1, part2, ["a"]))
        lhs, rhs = Law7DisjointDifferenceElimination.sides(lit(part1), lit(part2), lit(divisor))
        assert_sides_equal(lhs, rhs)

    @given(dividends(min_rows=1), divisors())
    def test_equivalence_after_range_partitioning(self, dividend, divisor):
        from repro.workloads import split_dividend_by_quotient

        low, high = split_dividend_by_quotient(dividend, "a")
        lhs, rhs = Law7DisjointDifferenceElimination.sides(lit(low), lit(high), lit(divisor))
        assert_sides_equal(lhs, rhs)

    def test_rule_application_saves_the_second_divide(self, figure4_dividend, figure1_divisor):
        rule = Law7DisjointDifferenceElimination()
        low = figure4_dividend.select(lambda row: row["a"] <= 2)
        high = figure4_dividend.select(lambda row: row["a"] > 2)
        expr = B.difference(
            B.divide(lit(low), lit(figure1_divisor)),
            B.divide(lit(high), lit(figure1_divisor)),
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().count("divide") == 1

    def test_rule_rejects_overlapping_candidates(self, figure4_dividend, figure1_divisor):
        rule = Law7DisjointDifferenceElimination()
        expr = B.difference(
            B.divide(lit(figure4_dividend), lit(figure1_divisor)),
            B.divide(lit(figure4_dividend), lit(figure1_divisor)),
        )
        assert not rule.matches(expr, context_for())

    def test_rule_rejects_different_divisors(self, figure4_dividend):
        rule = Law7DisjointDifferenceElimination()
        low = figure4_dividend.select(lambda row: row["a"] <= 2)
        high = figure4_dividend.select(lambda row: row["a"] > 2)
        expr = B.difference(
            B.divide(lit(low), lit(Relation(["b"], [(1,)]))),
            B.divide(lit(high), lit(Relation(["b"], [(2,)]))),
        )
        assert not rule.matches(expr, context_for())
