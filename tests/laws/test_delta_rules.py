"""The four delta rules: registry contract, matching, and delta equations.

The delta equations are the paper's union/difference laws read as
maintenance rules: ``(r1 ∪ Δ) ÷ r2`` from ``r1 ÷ r2`` by a per-group mask
OR, and so on.  Each property test applies one rule's counter update and
compares against the from-scratch division of the mutated inputs.
"""

from hypothesis import given, settings

from repro.algebra import builders as B
from repro.algebra.expressions import SmallDivide
from repro.division import great_divide, small_divide
from repro.laws import delta_rules
from repro.laws.delta import (
    DeltaRule,
    DividendDeleteDelta,
    DividendInsertDelta,
    DivisorDeleteDelta,
    DivisorInsertDelta,
)
from repro.laws.registry import all_rules, get_rule
from repro.views.counters import CounterTable
from tests.strategies import VALUES, dividends, divisors, great_divisors


def small_expression():
    return SmallDivide(B.ref("r1", ["a", "b"]), B.ref("r2", ["b"]))


class TestRegistryContract:
    def test_four_rules_with_full_coverage(self):
        rules = delta_rules()
        assert len(rules) == 4
        assert {(rule.target, rule.operation) for rule in rules} == {
            ("dividend", "insert"),
            ("dividend", "delete"),
            ("divisor", "insert"),
            ("divisor", "delete"),
        }

    def test_delta_rules_stay_out_of_the_rewrite_registry(self):
        # ``apply`` is the identity; in ``all_rules()`` they would pollute
        # every fixpoint rewrite with no-op "rewrites".
        rewrite_names = {rule.name for rule in all_rules()}
        for rule in delta_rules():
            assert rule.name not in rewrite_names

    def test_get_rule_still_finds_them_by_name(self):
        rule = get_rule("delta_dividend_insert")
        assert isinstance(rule, DividendInsertDelta)

    def test_conditions_declared_rp403_contract(self):
        for rule in delta_rules():
            assert rule.conditions, rule.name
            assert rule.paper_reference
            assert rule.description

    def test_popcount_rules_declare_the_threshold_condition(self):
        assert "popcount_threshold" in DivisorInsertDelta().conditions
        assert "popcount_threshold" in DivisorDeleteDelta().conditions
        assert "set_semantics" in DividendDeleteDelta().conditions


class TestMatching:
    def test_maintainable_shape_matches(self):
        for rule in delta_rules():
            assert rule.matches(small_expression())

    def test_projection_input_does_not_match(self):
        expression = SmallDivide(
            B.project(B.ref("r1", ["a", "b"]), ["a", "b"]), B.ref("r2", ["b"])
        )
        for rule in delta_rules():
            assert not rule.matches(expression)

    def test_apply_is_the_identity(self):
        expression = small_expression()
        assert DividendInsertDelta().apply(expression) is expression

    def test_apply_rejects_unmaintainable_shapes(self):
        import pytest

        from repro.errors import ReproError

        expression = SmallDivide(
            B.project(B.ref("r1", ["a", "b", "x"]), ["a", "b"]), B.ref("r2", ["b"])
        )
        with pytest.raises(ReproError):
            DividendDeleteDelta().apply(expression)

    def test_delta_rule_base_is_abstractly_empty(self):
        assert DeltaRule.target == "" and DeltaRule.operation == ""


# ----------------------------------------------------------------------
# the delta equations, at the counter level
# ----------------------------------------------------------------------
def build_small(dividend, divisor):
    counters = CounterTable("small", 1)
    counters.rebuild(
        ((row.values_for(("a",)), row.values_for(("b",))) for row in dividend),
        ((row.values_for(("b",)), ()) for row in divisor),
    )
    return counters


def build_great(dividend, divisor):
    counters = CounterTable("great", 1, 1)
    counters.rebuild(
        ((row.values_for(("a",)), row.values_for(("b",))) for row in dividend),
        ((row.values_for(("b",)), row.values_for(("c",))) for row in divisor),
    )
    return counters


def small_quotient(dividend, divisor):
    return {t for t in small_divide(dividend, divisor).aligned_tuples()}


class TestSmallDivideDeltaEquations:
    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(), divisor=divisors(), a=VALUES, b=VALUES)
    def test_dividend_insert_equation(self, dividend, divisor, a, b):
        counters = build_small(dividend, divisor)
        if ((a,), (b,)) not in set(
            (row.values_for(("a",)), row.values_for(("b",))) for row in dividend
        ):
            counters.insert_dividend((a,), (b,))
        mutated = dividend.union(type(dividend)(["a", "b"], [(a, b)]))
        assert {t + () for t in counters.quotient_tuples()} == small_quotient(
            mutated, divisor
        )

    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(min_rows=1), divisor=divisors())
    def test_dividend_delete_equation(self, dividend, divisor):
        victim = sorted(dividend.aligned_tuples())[0]
        counters = build_small(dividend, divisor)
        counters.delete_dividend((victim[0],), (victim[1],))
        mutated = dividend.difference(type(dividend)(["a", "b"], [victim]))
        assert {t for t in counters.quotient_tuples()} == small_quotient(
            mutated, divisor
        )

    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(), divisor=divisors(), b=VALUES)
    def test_divisor_insert_equation(self, dividend, divisor, b):
        counters = build_small(dividend, divisor)
        if (b,) not in set(row.values_for(("b",)) for row in divisor):
            counters.insert_divisor((b,))
        mutated = divisor.union(type(divisor)(["b"], [(b,)]))
        assert {t for t in counters.quotient_tuples()} == small_quotient(
            dividend, mutated
        )

    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(), divisor=divisors(min_rows=1))
    def test_divisor_delete_equation(self, dividend, divisor):
        victim = sorted(divisor.aligned_tuples())[0]
        counters = build_small(dividend, divisor)
        counters.delete_divisor((victim[0],))
        mutated = divisor.difference(type(divisor)(["b"], [victim]))
        assert {t for t in counters.quotient_tuples()} == small_quotient(
            dividend, mutated
        )


class TestGreatDivideDeltaEquations:
    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(), divisor=great_divisors(), b=VALUES, c=VALUES)
    def test_divisor_insert_equation(self, dividend, divisor, b, c):
        counters = build_great(dividend, divisor)
        if (b, c) not in set(divisor.aligned_tuples()):
            counters.insert_divisor((b,), (c,))
        mutated = divisor.union(type(divisor)(["b", "c"], [(b, c)]))
        expected = {t for t in great_divide(dividend, mutated).aligned_tuples()}
        assert counters.quotient_tuples() == expected

    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(), divisor=great_divisors(min_rows=1))
    def test_divisor_delete_equation(self, dividend, divisor):
        victim = sorted(divisor.aligned_tuples())[0]
        counters = build_great(dividend, divisor)
        counters.delete_divisor((victim[0],), (victim[1],))
        mutated = divisor.difference(type(divisor)(["b", "c"], [victim]))
        expected = {t for t in great_divide(dividend, mutated).aligned_tuples()}
        assert counters.quotient_tuples() == expected
