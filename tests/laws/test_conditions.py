"""Tests for the law preconditions (conditions c1, c2, disjointness, keys)."""

from hypothesis import given

from repro.laws.conditions import (
    attribute_is_key,
    condition_c1,
    condition_c2,
    inclusion_holds,
    is_superset_of,
    projections_disjoint,
)
from repro.relation import Relation
from tests.strategies import dividends, divisors


class TestConditionC1:
    def test_figure_5_violates_c1(self):
        """Figure 5: the quotient candidate a=1 is dispersed over both parts."""
        part1 = Relation(["a", "b"], [(1, 1), (1, 2), (1, 3)])
        part2 = Relation(["a", "b"], [(1, 2), (1, 4)])
        divisor = Relation(["b"], [(1,), (4,)])
        assert not condition_c1(part1, part2, divisor)

    def test_satisfied_when_one_part_contains_divisor(self):
        part1 = Relation(["a", "b"], [(1, 1), (1, 4)])
        part2 = Relation(["a", "b"], [(1, 2)])
        divisor = Relation(["b"], [(1,), (4,)])
        assert condition_c1(part1, part2, divisor)

    def test_satisfied_when_union_misses_divisor(self):
        part1 = Relation(["a", "b"], [(1, 1)])
        part2 = Relation(["a", "b"], [(1, 2)])
        divisor = Relation(["b"], [(1,), (9,)])
        assert condition_c1(part1, part2, divisor)

    def test_trivially_satisfied_without_shared_candidates(self):
        part1 = Relation(["a", "b"], [(1, 1)])
        part2 = Relation(["a", "b"], [(2, 2)])
        divisor = Relation(["b"], [(1,), (2,)])
        assert condition_c1(part1, part2, divisor)

    @given(dividends(), dividends(), divisors())
    def test_c2_implies_c1(self, part1, part2, divisor):
        """The paper: condition c2 is stricter than c1."""
        if condition_c2(part1, part2, ["a"]):
            assert condition_c1(part1, part2, divisor)


class TestConditionC2:
    def test_disjoint_candidates(self):
        part1 = Relation(["a", "b"], [(1, 1)])
        part2 = Relation(["a", "b"], [(2, 1)])
        assert condition_c2(part1, part2, ["a"])

    def test_shared_candidates(self):
        part1 = Relation(["a", "b"], [(1, 1)])
        part2 = Relation(["a", "b"], [(1, 2)])
        assert not condition_c2(part1, part2, ["a"])


class TestOtherConditions:
    def test_projections_disjoint(self):
        left = Relation(["b", "c"], [(1, 1)])
        right = Relation(["b", "c"], [(1, 2)])
        assert projections_disjoint(left, right, ["c"])
        assert not projections_disjoint(left, right, ["b"])

    def test_is_superset_of(self):
        big = Relation(["a"], [(1,), (2,)])
        small = Relation(["a"], [(1,)])
        assert is_superset_of(big, small)
        assert not is_superset_of(small, big)
        assert not is_superset_of(big, Relation(["z"], [(1,)]))

    def test_inclusion_holds(self):
        source = Relation(["b", "c"], [(1, 1), (2, 1)])
        target = Relation(["b"], [(1,), (2,), (3,)])
        assert inclusion_holds(source, target, ["b"])
        assert not inclusion_holds(target, source, ["b"])

    def test_attribute_is_key(self, figure10_relations):
        assert attribute_is_key(figure10_relations["r1"], ["a"])
        assert not attribute_is_key(figure10_relations["r0"], ["a"])
