"""Property and example tests for Laws 13–17 and Example 4 (great divide)."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.division import great_divide
from repro.laws.conditions import projections_disjoint
from repro.laws.great_divide import (
    Example4JoinPushdown,
    Law13DivisorPartitioning,
    Law14QuotientSelectionPushdown,
    Law15GroupSelectionPushdown,
    Law16SharedSelectionReplication,
    Law17ProductFactorOut,
)
from repro.relation import Relation
from tests.laws.helpers import assert_rewrite_preserves_semantics, assert_sides_equal, context_for, lit
from tests.strategies import dividends, great_divisors, relations

A_PREDICATES = st.sampled_from(
    [P.equals(P.attr("a"), 1), P.greater_than(P.attr("a"), 1), P.not_equals(P.attr("a"), 2)]
)
B_PREDICATES = st.sampled_from(
    [P.less_than(P.attr("b"), 2), P.greater_equal(P.attr("b"), 1), P.equals(P.attr("b"), 3)]
)
C_PREDICATES = st.sampled_from(
    [P.equals(P.attr("c"), 0), P.greater_than(P.attr("c"), 1), P.not_equals(P.attr("c"), 3)]
)


class TestLaw13:
    @given(dividends(), great_divisors(), great_divisors())
    def test_equivalence_for_disjoint_group_ids(self, dividend, part_a, part_b):
        assume(projections_disjoint(part_a, part_b, ["c"]))
        lhs, rhs = Law13DivisorPartitioning.sides(lit(dividend), lit(part_a), lit(part_b))
        assert_sides_equal(lhs, rhs)

    @given(dividends(), great_divisors(min_rows=1))
    def test_equivalence_for_hash_partitioning(self, dividend, divisor):
        """The distribution scheme the paper proposes: hash the groups on C."""
        part_a = divisor.select(lambda row: row["c"] % 2 == 0)
        part_b = divisor.select(lambda row: row["c"] % 2 == 1)
        lhs, rhs = Law13DivisorPartitioning.sides(lit(dividend), lit(part_a), lit(part_b))
        assert_sides_equal(lhs, rhs)
        assert lhs.evaluate({}) == great_divide(dividend, divisor)

    def test_overlapping_group_ids_break_the_equivalence(self, figure1_dividend):
        """Splitting one group across partitions changes its containment test."""
        part_a = Relation(["b", "c"], [(1, 1), (2, 1)])
        part_b = Relation(["b", "c"], [(4, 1)])
        divisor = part_a.union(part_b)
        lhs, rhs = Law13DivisorPartitioning.sides(lit(figure1_dividend), lit(part_a), lit(part_b))
        assert lhs.evaluate({}) == great_divide(figure1_dividend, divisor)
        assert lhs.evaluate({}) != rhs.evaluate({})

    def test_rule_application(self, figure1_dividend, figure2_divisor):
        rule = Law13DivisorPartitioning()
        part_a = figure2_divisor.select(lambda row: row["c"] == 1)
        part_b = figure2_divisor.select(lambda row: row["c"] == 2)
        expr = B.great_divide(lit(figure1_dividend), B.union(lit(part_a), lit(part_b)))
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("union")

    def test_rule_rejects_overlapping_partitions(self, figure1_dividend, figure2_divisor):
        rule = Law13DivisorPartitioning()
        expr = B.great_divide(
            lit(figure1_dividend), B.union(lit(figure2_divisor), lit(figure2_divisor))
        )
        assert not rule.matches(expr, context_for())


class TestLaw14:
    @given(dividends(), great_divisors(), A_PREDICATES)
    def test_equivalence_on_random_relations(self, dividend, divisor, predicate):
        lhs, rhs = Law14QuotientSelectionPushdown.sides(lit(dividend), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)

    def test_rule_application(self, figure1_dividend, figure2_divisor):
        rule = Law14QuotientSelectionPushdown()
        expr = B.select(
            B.great_divide(lit(figure1_dividend), lit(figure2_divisor)),
            P.equals(P.attr("a"), 2),
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("great_divide")

    def test_rule_rejects_predicate_on_group_attributes(self, figure1_dividend, figure2_divisor):
        rule = Law14QuotientSelectionPushdown()
        expr = B.select(
            B.great_divide(lit(figure1_dividend), lit(figure2_divisor)),
            P.equals(P.attr("c"), 1),
        )
        assert not rule.matches(expr)


class TestLaw15:
    @given(dividends(), great_divisors(), C_PREDICATES)
    def test_equivalence_on_random_relations(self, dividend, divisor, predicate):
        lhs, rhs = Law15GroupSelectionPushdown.sides(lit(dividend), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)

    def test_rule_application(self, figure1_dividend, figure2_divisor):
        rule = Law15GroupSelectionPushdown()
        expr = B.select(
            B.great_divide(lit(figure1_dividend), lit(figure2_divisor)),
            P.equals(P.attr("c"), 2),
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("great_divide")
        assert rewritten.evaluate({}).to_set("c") == {2}

    def test_rule_rejects_predicate_on_quotient_attributes(self, figure1_dividend, figure2_divisor):
        rule = Law15GroupSelectionPushdown()
        expr = B.select(
            B.great_divide(lit(figure1_dividend), lit(figure2_divisor)),
            P.equals(P.attr("a"), 2),
        )
        assert not rule.matches(expr)

    def test_law14_and_law15_partition_mixed_predicates(self, figure1_dividend, figure2_divisor):
        """A predicate over both A and C matches neither push-down rule."""
        expr = B.select(
            B.great_divide(lit(figure1_dividend), lit(figure2_divisor)),
            P.And(P.equals(P.attr("a"), 2), P.equals(P.attr("c"), 1)),
        )
        assert not Law14QuotientSelectionPushdown().matches(expr)
        assert not Law15GroupSelectionPushdown().matches(expr)


class TestLaw16:
    @given(dividends(), great_divisors(), B_PREDICATES)
    def test_equivalence_on_random_relations(self, dividend, divisor, predicate):
        lhs, rhs = Law16SharedSelectionReplication.sides(lit(dividend), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)

    @given(dividends(), great_divisors(), B_PREDICATES)
    def test_holds_even_for_empty_selected_divisor(self, dividend, divisor, predicate):
        """Unlike Law 4 the great-divide variant needs no nonemptiness check."""
        empty_selection = divisor.select(predicate).is_empty()
        lhs, rhs = Law16SharedSelectionReplication.sides(lit(dividend), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)
        if empty_selection:
            assert lhs.evaluate({}).is_empty()

    def test_rule_application(self, figure1_dividend, figure2_divisor):
        rule = Law16SharedSelectionReplication()
        predicate = P.less_than(P.attr("b"), 4)
        expr = B.great_divide(lit(figure1_dividend), B.select(lit(figure2_divisor), predicate))
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().count("select") == 2


class TestLaw17:
    @given(relations(("a1",), max_rows=4), relations(("a2", "b"), max_rows=10), great_divisors())
    def test_equivalence_on_random_relations(self, factor, dividend_part, divisor):
        lhs, rhs = Law17ProductFactorOut.sides(lit(factor), lit(dividend_part), lit(divisor))
        assert_sides_equal(lhs, rhs)

    def test_rule_application(self, figure1_dividend, figure2_divisor):
        rule = Law17ProductFactorOut()
        factor = Relation(["k"], [(1,), (2,)])
        expr = B.great_divide(B.product(lit(factor), lit(figure1_dividend)), lit(figure2_divisor))
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("product")

    def test_rule_rejects_shared_attributes_in_left_factor(self, figure1_dividend, figure2_divisor):
        rule = Law17ProductFactorOut()
        expr = B.great_divide(
            B.product(B.ref("x", ["k", "b"]), B.ref("y", ["a"])), B.ref("r2", ["b", "c"])
        )
        assert not rule.matches(expr)


class TestExample4:
    @given(
        relations(("a1",), max_rows=4),
        relations(("a2", "b"), max_rows=10),
        great_divisors(),
    )
    def test_equivalence_on_random_relations(self, outer, dividend, divisor):
        predicate = P.equals(P.attr("a1"), P.attr("a2"))
        lhs, rhs = Example4JoinPushdown.sides(lit(outer), lit(dividend), lit(divisor), predicate)
        assert_sides_equal(lhs, rhs)

    def test_rule_application(self, figure1_dividend, figure2_divisor):
        rule = Example4JoinPushdown()
        outer = Relation(["a1"], [(2,), (3,)])
        dividend = figure1_dividend.rename({"a": "a2"})
        predicate = P.equals(P.attr("a1"), P.attr("a2"))
        expr = B.theta_join(lit(outer), B.great_divide(lit(dividend), lit(figure2_divisor)), predicate)
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("great_divide")

    def test_rule_rejects_predicate_on_group_attributes(self, figure1_dividend, figure2_divisor):
        rule = Example4JoinPushdown()
        outer = Relation(["a1"], [(2,)])
        dividend = figure1_dividend.rename({"a": "a2"})
        predicate = P.equals(P.attr("a1"), P.attr("c"))
        expr = B.theta_join(lit(outer), B.great_divide(lit(dividend), lit(figure2_divisor)), predicate)
        assert not rule.matches(expr)
