"""Small helpers shared by the law tests."""

from __future__ import annotations

from repro.algebra.builders import literal
from repro.algebra.catalog import Catalog
from repro.algebra.expressions import Expression
from repro.laws.base import RewriteContext
from repro.relation import Relation


def lit(relation: Relation, label: str = "r") -> Expression:
    """Wrap a relation value as a literal leaf expression."""
    return literal(relation, label=label)


def assert_sides_equal(lhs: Expression, rhs: Expression) -> None:
    """Evaluate both sides of a law (built over literals) and compare."""
    left = lhs.evaluate({})
    right = rhs.evaluate({})
    assert left == right, f"law violated:\n  lhs = {sorted(map(repr, left.rows))}\n  rhs = {sorted(map(repr, right.rows))}"


def context_for(**tables: Relation) -> RewriteContext:
    """A rewrite context backed by a catalog holding the given tables."""
    catalog = Catalog()
    for name, relation in tables.items():
        catalog.add_table(name, relation)
    return RewriteContext.from_catalog(catalog)


def assert_rewrite_preserves_semantics(rule, expression: Expression, context: RewriteContext) -> Expression:
    """Apply ``rule`` and check the rewritten expression evaluates identically."""
    assert rule.matches(expression, context), f"{rule.name} should match {expression.to_text()}"
    rewritten = rule.apply(expression, context)
    assert rewritten != expression or True  # a rewrite may be a no-op only for Law 7
    original_value = expression.evaluate(context.database)
    rewritten_value = rewritten.evaluate(context.database)
    assert original_value == rewritten_value, (
        f"{rule.name} changed the result:\n  before = {sorted(map(repr, original_value.rows))}"
        f"\n  after  = {sorted(map(repr, rewritten_value.rows))}"
    )
    return rewritten
