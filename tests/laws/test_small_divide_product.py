"""Property and example tests for Laws 8, 9 and Example 2 (divide vs product)."""

from hypothesis import assume, given

from repro.algebra import builders as B
from repro.laws.conditions import inclusion_holds
from repro.laws.small_divide import (
    Example2CommonFactorCancellation,
    Law8ProductFactorOut,
    Law9ProductElimination,
)
from repro.relation import Relation
from tests.laws.helpers import assert_rewrite_preserves_semantics, assert_sides_equal, context_for, lit
from tests.strategies import dividends, divisors, relations


class TestLaw8:
    @given(relations(("a1",), max_rows=4), relations(("a2", "b"), max_rows=10), divisors())
    def test_equivalence_on_random_relations(self, factor, dividend_part, divisor):
        lhs, rhs = Law8ProductFactorOut.sides(lit(factor), lit(dividend_part), lit(divisor))
        assert_sides_equal(lhs, rhs)

    def test_figure_7_worked_example(self, figure7_relations):
        lhs, rhs = Law8ProductFactorOut.sides(
            lit(figure7_relations["r1_star"]),
            lit(figure7_relations["r1_star_star"]),
            lit(figure7_relations["r2"]),
        )
        assert lhs.evaluate({}) == figure7_relations["quotient"]
        assert rhs.evaluate({}) == figure7_relations["quotient"]

    def test_inner_quotient_matches_figure_7e(self, figure7_relations):
        from repro.division import small_divide

        inner = small_divide(figure7_relations["r1_star_star"], figure7_relations["r2"])
        assert inner.to_set("a2") == {1, 3}

    def test_rule_application(self, figure7_relations):
        rule = Law8ProductFactorOut()
        expr = B.divide(
            B.product(lit(figure7_relations["r1_star"]), lit(figure7_relations["r1_star_star"])),
            lit(figure7_relations["r2"]),
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert rewritten.to_text().startswith("product")

    def test_rule_rejects_divisor_spanning_both_factors(self):
        rule = Law8ProductFactorOut()
        expr = B.divide(
            B.product(B.ref("x", ["a", "b1"]), B.ref("y", ["a2", "b2"])),
            B.ref("r2", ["b1", "b2"]),
        )
        assert not rule.matches(expr)

    def test_rule_rejects_factor_without_extra_attributes(self):
        """If the right factor is exactly the divisor attributes the inner
        divide would have an empty quotient schema — that is Law 9 territory."""
        rule = Law8ProductFactorOut()
        expr = B.divide(
            B.product(B.ref("x", ["a"]), B.ref("y", ["b"])),
            B.ref("r2", ["b"]),
        )
        assert not rule.matches(expr)


class TestLaw9:
    @given(dividends(min_rows=0, max_rows=10), relations(("b2",), min_rows=1, max_rows=4), divisors(max_rows=3))
    def test_equivalence_under_inclusion(self, keep, drop, divisor_b1):
        """Build a divisor r2(b, b2) whose b2 projection is contained in the factor."""
        drop_values = sorted(drop.to_set("b2"))
        divisor_rows = [
            (row["b"], drop_values[i % len(drop_values)])
            for i, row in enumerate(divisor_b1.sorted_rows())
        ]
        divisor = Relation(["b", "b2"], divisor_rows)
        keep_renamed = keep  # schema (a, b): a is the quotient, b is B1
        assume(not (divisor.is_empty() and drop.is_empty()))
        assert inclusion_holds(divisor, drop, ["b2"])
        lhs, rhs = Law9ProductElimination.sides(lit(keep_renamed), lit(drop), lit(divisor))
        assert_sides_equal(lhs, rhs)

    def test_figure_8_worked_example(self, figure8_relations):
        lhs, rhs = Law9ProductElimination.sides(
            lit(figure8_relations["r1_star"]),
            lit(figure8_relations["r1_star_star"]),
            lit(figure8_relations["r2"]),
        )
        assert lhs.evaluate({}) == figure8_relations["quotient"]
        assert rhs.evaluate({}) == figure8_relations["quotient"]

    def test_divisor_b1_projection_matches_figure_8e(self, figure8_relations):
        projected = figure8_relations["r2"].project(["b1"])
        assert projected.to_set("b1") == {1, 3}

    def test_rule_application(self, figure8_relations):
        rule = Law9ProductElimination()
        expr = B.divide(
            B.product(lit(figure8_relations["r1_star"]), lit(figure8_relations["r1_star_star"])),
            lit(figure8_relations["r2"]),
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        # The rewritten expression no longer contains the product.
        assert "product" not in rewritten.to_text()

    def test_rule_rejects_violated_inclusion(self, figure8_relations):
        rule = Law9ProductElimination()
        too_small = Relation(["b2"], [(1,)])  # missing value 2 referenced by r2
        expr = B.divide(
            B.product(lit(figure8_relations["r1_star"]), lit(too_small)),
            lit(figure8_relations["r2"]),
        )
        assert not rule.matches(expr, context_for())

    def test_rule_requires_data(self, figure8_relations):
        rule = Law9ProductElimination()
        expr = B.divide(
            B.product(lit(figure8_relations["r1_star"]), lit(figure8_relations["r1_star_star"])),
            lit(figure8_relations["r2"]),
        )
        assert not rule.matches(expr)


class TestExample2:
    @given(dividends(), divisors(), relations(("s",), min_rows=1, max_rows=3))
    def test_equivalence_with_nonempty_shared_factor(self, core_dividend, core_divisor, shared):
        lhs, rhs = Example2CommonFactorCancellation.sides(
            lit(core_dividend), lit(core_divisor), lit(shared)
        )
        assert_sides_equal(lhs, rhs)

    def test_empty_shared_factor_breaks_the_equivalence(self):
        core_dividend = Relation(["a", "b"], [(1, 1)])
        core_divisor = Relation(["b"], [(1,)])
        shared = Relation.empty(["s"])
        lhs, rhs = Example2CommonFactorCancellation.sides(
            lit(core_dividend), lit(core_divisor), lit(shared)
        )
        assert lhs.evaluate({}).is_empty()
        assert rhs.evaluate({}).to_set("a") == {1}

    def test_rule_application(self, figure1_dividend, figure1_divisor):
        rule = Example2CommonFactorCancellation()
        shared = Relation(["s"], [(10,), (20,)])
        expr = B.divide(
            B.product(lit(figure1_dividend), lit(shared)),
            B.product(lit(figure1_divisor), lit(shared)),
        )
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context_for())
        assert "product" not in rewritten.to_text()

    def test_rule_rejects_different_shared_factors(self, figure1_dividend, figure1_divisor):
        rule = Example2CommonFactorCancellation()
        expr = B.divide(
            B.product(lit(figure1_dividend), lit(Relation(["s"], [(1,)]))),
            B.product(lit(figure1_divisor), lit(Relation(["s"], [(2,)]))),
        )
        assert not rule.matches(expr, context_for())
