"""Property and example tests for Laws 1 and 2 (divide versus union)."""

from hypothesis import assume, given

from repro.algebra import builders as B
from repro.division import small_divide
from repro.laws.conditions import condition_c1, condition_c2
from repro.laws.small_divide import Law1DivisorUnionSplit, Law2DividendUnionSplit
from repro.relation import Relation
from repro.workloads import split_dividend_by_quotient
from tests.laws.helpers import assert_rewrite_preserves_semantics, assert_sides_equal, context_for, lit
from tests.strategies import dividends, divisors


class TestLaw1:
    @given(dividends(), divisors(), divisors())
    def test_equivalence_on_random_relations(self, dividend, divisor_a, divisor_b):
        lhs, rhs = Law1DivisorUnionSplit.sides(lit(dividend), lit(divisor_a), lit(divisor_b))
        assert_sides_equal(lhs, rhs)

    @given(dividends(), divisors(min_rows=1))
    def test_equivalence_with_overlapping_partitions(self, dividend, divisor):
        """The paper stresses that Law 1 also holds for overlapping partitions."""
        rows = sorted(divisor.rows, key=repr)
        part_a = Relation(divisor.schema, rows[: len(rows) // 2 + 1])
        part_b = Relation(divisor.schema, rows[len(rows) // 2 :])
        assume(part_a.union(part_b) == divisor)
        lhs, rhs = Law1DivisorUnionSplit.sides(lit(dividend), lit(part_a), lit(part_b))
        assert_sides_equal(lhs, rhs)
        assert lhs.evaluate({}) == small_divide(dividend, divisor)

    def test_figure_4_worked_example(self, figure4_dividend):
        """Figure 4: dividing by {1,3} ∪ {3,4} in two stages gives {2, 3}."""
        part_a = Relation(["b"], [(1,), (3,)])
        part_b = Relation(["b"], [(3,), (4,)])
        lhs, rhs = Law1DivisorUnionSplit.sides(lit(figure4_dividend), lit(part_a), lit(part_b))
        intermediate = small_divide(figure4_dividend, part_a)
        assert intermediate.to_set("a") == {2, 3, 4}  # Figure 4 (e)
        semi = figure4_dividend.semijoin(intermediate)
        assert len(semi) == 9  # Figure 4 (f)
        assert lhs.evaluate({}).to_set("a") == {2, 3}  # Figure 4 (g)
        assert_sides_equal(lhs, rhs)

    def test_rule_application(self, figure4_dividend):
        rule = Law1DivisorUnionSplit()
        part_a = Relation(["b"], [(1,), (3,)])
        part_b = Relation(["b"], [(3,), (4,)])
        expr = B.divide(lit(figure4_dividend), B.union(lit(part_a), lit(part_b)))
        context = context_for()
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context)
        assert "semijoin" in rewritten.to_text()

    def test_rule_does_not_match_plain_divisor(self, figure1_dividend, figure1_divisor):
        rule = Law1DivisorUnionSplit()
        expr = B.divide(lit(figure1_dividend), lit(figure1_divisor))
        assert not rule.matches(expr)


class TestLaw2:
    @given(dividends(), dividends(), divisors())
    def test_equivalence_under_condition_c1(self, part1, part2, divisor):
        assume(condition_c1(part1, part2, divisor))
        lhs, rhs = Law2DividendUnionSplit.sides(lit(part1), lit(part2), lit(divisor))
        assert_sides_equal(lhs, rhs)

    @given(dividends(min_rows=2), divisors())
    def test_equivalence_for_quotient_partitioning(self, dividend, divisor):
        """Splitting the dividend by a range predicate on A satisfies c2."""
        low, high = split_dividend_by_quotient(dividend, "a")
        assert condition_c2(low, high, ["a"])
        lhs, rhs = Law2DividendUnionSplit.sides(lit(low), lit(high), lit(divisor))
        assert_sides_equal(lhs, rhs)
        assert lhs.evaluate({}) == small_divide(dividend, divisor)

    def test_figure_5_counterexample(self):
        """Figure 5: without c1 the law really is violated."""
        part1 = Relation(["a", "b"], [(1, 1), (1, 2), (1, 3)])
        part2 = Relation(["a", "b"], [(1, 2), (1, 4)])
        divisor = Relation(["b"], [(1,), (4,)])
        assert not condition_c1(part1, part2, divisor)
        lhs, rhs = Law2DividendUnionSplit.sides(lit(part1), lit(part2), lit(divisor))
        assert lhs.evaluate({}).to_set("a") == {1}
        assert rhs.evaluate({}).is_empty()

    def test_rule_requires_data_to_check_c1(self, figure1_dividend, figure1_divisor):
        rule = Law2DividendUnionSplit()
        low, high = split_dividend_by_quotient(figure1_dividend, "a")
        expr = B.divide(B.union(lit(low), lit(high)), lit(figure1_divisor))
        assert not rule.matches(expr)  # no database in context
        context = context_for()
        rewritten = assert_rewrite_preserves_semantics(rule, expr, context)
        assert rewritten.to_text().startswith("union")

    def test_rule_rejects_figure_5(self):
        rule = Law2DividendUnionSplit()
        part1 = Relation(["a", "b"], [(1, 1), (1, 2), (1, 3)])
        part2 = Relation(["a", "b"], [(1, 2), (1, 4)])
        divisor = Relation(["b"], [(1,), (4,)])
        expr = B.divide(B.union(lit(part1), lit(part2)), lit(divisor))
        assert not rule.matches(expr, context_for())

    def test_prefer_c2_is_stricter(self):
        rule_c2 = Law2DividendUnionSplit(prefer_c2=True)
        rule_c1 = Law2DividendUnionSplit()
        # Satisfies c1 (part1 contains the divisor for the shared candidate)
        # but not c2 (the candidate appears in both parts).
        part1 = Relation(["a", "b"], [(1, 1), (1, 4)])
        part2 = Relation(["a", "b"], [(1, 2)])
        divisor = Relation(["b"], [(1,), (4,)])
        expr = B.divide(B.union(lit(part1), lit(part2)), lit(divisor))
        context = context_for()
        assert rule_c1.matches(expr, context)
        assert not rule_c2.matches(expr, context)
