"""Tests for the fuzzy-relation extension (fuzzy division, Yager's quotient)."""

import pytest
from hypothesis import given

from repro.division import small_divide
from repro.errors import DivisionError, RelationError
from repro.fuzzy import (
    IMPLICATIONS,
    FuzzyRelation,
    fuzzy_divide,
    owa_weights_almost_all,
    yager_quotient,
)
from repro.relation import Relation
from tests.strategies import dividends, divisors


class TestFuzzyRelation:
    def test_membership_lookup(self):
        relation = FuzzyRelation(["a"], [((1,), 0.5), ((2,), 1.0)])
        assert relation.membership((1,)) == 0.5
        assert relation.membership((3,)) == 0.0
        assert len(relation) == 2

    def test_zero_degrees_are_dropped(self):
        relation = FuzzyRelation(["a"], [((1,), 0.0)])
        assert len(relation) == 0

    def test_invalid_degree_rejected(self):
        with pytest.raises(RelationError):
            FuzzyRelation(["a"], [((1,), 1.5)])

    def test_duplicate_rows_keep_max_degree(self):
        relation = FuzzyRelation(["a"], [((1,), 0.3), ((1,), 0.8)])
        assert relation.membership((1,)) == 0.8

    def test_union_and_intersection(self):
        left = FuzzyRelation(["a"], [((1,), 0.4), ((2,), 0.9)])
        right = FuzzyRelation(["a"], [((1,), 0.7)])
        assert left.union(right).membership((1,)) == 0.7
        assert left.intersection(right).membership((1,)) == 0.4
        assert left.intersection(right).membership((2,)) == 0.0

    def test_projection_takes_max(self):
        relation = FuzzyRelation(["a", "b"], [((1, 1), 0.2), ((1, 2), 0.9)])
        assert relation.project(["a"]).membership((1,)) == 0.9

    def test_alpha_cut_and_from_crisp(self, figure1_divisor):
        fuzzy = FuzzyRelation.from_crisp(figure1_divisor, degree=0.6)
        assert fuzzy.alpha_cut(0.5) == figure1_divisor
        assert fuzzy.alpha_cut(0.7).is_empty()

    def test_schema_mismatch_rejected(self):
        with pytest.raises(RelationError):
            FuzzyRelation(["a"], [((1,), 1.0)]).union(FuzzyRelation(["b"], [((1,), 1.0)]))


class TestFuzzyDivide:
    @pytest.mark.parametrize("implication", sorted(IMPLICATIONS))
    @given(dividend=dividends(), divisor=divisors())
    def test_reduces_to_small_divide_on_crisp_inputs(self, implication, dividend, divisor):
        fuzzy_dividend = FuzzyRelation.from_crisp(dividend)
        fuzzy_divisor = FuzzyRelation.from_crisp(divisor)
        if len(dividend.schema.difference(divisor.schema)) == 0:
            return  # invalid division schema, covered elsewhere
        result = fuzzy_divide(fuzzy_dividend, fuzzy_divisor, implication=implication)
        assert result.alpha_cut(1.0) == small_divide(dividend, divisor)

    def test_graded_memberships(self):
        dividend = FuzzyRelation(["a", "b"], [((1, 10), 0.9), ((1, 20), 0.4), ((2, 10), 1.0)])
        divisor = FuzzyRelation(["b"], [((10,), 1.0), ((20,), 1.0)])
        result = fuzzy_divide(dividend, divisor, implication="goedel")
        assert result.membership((1,)) == pytest.approx(0.4)
        assert result.membership((2,)) == 0.0  # misses b=20 entirely

    def test_goguen_ratio_semantics(self):
        dividend = FuzzyRelation(["a", "b"], [((1, 10), 0.5)])
        divisor = FuzzyRelation(["b"], [((10,), 1.0)])
        result = fuzzy_divide(dividend, divisor, implication="goguen")
        assert result.membership((1,)) == pytest.approx(0.5)

    def test_lukasiewicz_semantics(self):
        dividend = FuzzyRelation(["a", "b"], [((1, 10), 0.5)])
        divisor = FuzzyRelation(["b"], [((10,), 0.8)])
        result = fuzzy_divide(dividend, divisor, implication="lukasiewicz")
        assert result.membership((1,)) == pytest.approx(0.7)

    def test_unknown_implication(self):
        dividend = FuzzyRelation(["a", "b"], [((1, 10), 1.0)])
        divisor = FuzzyRelation(["b"], [((10,), 1.0)])
        with pytest.raises(DivisionError):
            fuzzy_divide(dividend, divisor, implication="unknown")

    def test_schema_validation(self):
        with pytest.raises(DivisionError):
            fuzzy_divide(FuzzyRelation(["a"], [((1,), 1.0)]), FuzzyRelation(["b"], [((1,), 1.0)]))


class TestYagerQuotient:
    def test_weights_sum_to_one(self):
        weights = owa_weights_almost_all(5, strictness=2.0)
        assert sum(weights) == pytest.approx(1.0)
        assert len(weights) == 5
        # Later (smaller-satisfaction) positions carry more weight for strictness > 1.
        assert weights[-1] > weights[0]

    def test_empty_weights(self):
        assert owa_weights_almost_all(0) == []

    def test_invalid_strictness(self):
        with pytest.raises(DivisionError):
            owa_weights_almost_all(3, strictness=0)

    def test_almost_all_tolerates_one_missing_element(self, figure1_dividend):
        """a=1 relates to only {1, 4}: rejected by strict division but gets a
        positive "almost all" degree, while full groups get degree 1."""
        dividend = FuzzyRelation.from_crisp(figure1_dividend)
        divisor = FuzzyRelation.from_crisp(Relation(["b"], [(1,), (3,), (4,)]))
        strict = fuzzy_divide(dividend, divisor)
        relaxed = yager_quotient(dividend, divisor, strictness=1.0)
        assert strict.membership((1,)) == 0.0
        assert relaxed.membership((1,)) == pytest.approx(2 / 3)
        assert relaxed.membership((2,)) == pytest.approx(1.0)
        assert relaxed.membership((3,)) == pytest.approx(1.0)

    def test_custom_weights_length_check(self, figure1_dividend, figure1_divisor):
        dividend = FuzzyRelation.from_crisp(figure1_dividend)
        divisor = FuzzyRelation.from_crisp(figure1_divisor)
        with pytest.raises(DivisionError):
            yager_quotient(dividend, divisor, weights=[1.0])
