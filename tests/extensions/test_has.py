"""Tests for Carlis' HAS operator extension."""

import pytest
from hypothesis import given

from repro.division import small_divide
from repro.errors import SchemaError
from repro.has import Association, has, has_at_least
from repro.relation import Relation
from tests.strategies import dividends, divisors


@pytest.fixture
def suppliers():
    return Relation(["s_no"], [("s1",), ("s2",), ("s3",), ("s4",)])


@pytest.fixture
def blue_parts():
    return Relation(["p_no"], [("p1",), ("p2",)])


@pytest.fixture
def supplies():
    return Relation(
        ["s_no", "p_no"],
        [
            ("s1", "p1"), ("s1", "p2"),                 # exactly the blue parts
            ("s2", "p1"), ("s2", "p2"), ("s2", "p9"),   # strictly more
            ("s3", "p1"),                               # strictly less
            ("s4", "p7"),                               # none of them, plus else
        ],
    )


class TestAssociations:
    def test_exactly(self, suppliers, blue_parts, supplies):
        result = has(suppliers, blue_parts, supplies, [Association.EXACTLY])
        assert result.to_set("s_no") == {"s1"}

    def test_strictly_more_than(self, suppliers, blue_parts, supplies):
        result = has(suppliers, blue_parts, supplies, [Association.STRICTLY_MORE_THAN])
        assert result.to_set("s_no") == {"s2"}

    def test_strictly_less_than(self, suppliers, blue_parts, supplies):
        result = has(suppliers, blue_parts, supplies, [Association.STRICTLY_LESS_THAN])
        assert result.to_set("s_no") == {"s3"}

    def test_none_plus_else(self, suppliers, blue_parts, supplies):
        result = has(suppliers, blue_parts, supplies, [Association.NONE_PLUS_ELSE])
        assert result.to_set("s_no") == {"s4"}

    def test_none_at_all(self, blue_parts, supplies):
        entities = Relation(["s_no"], [("s1",), ("s9",)])
        result = has(entities, blue_parts, supplies, [Association.NONE_AT_ALL])
        assert result.to_set("s_no") == {"s9"}

    def test_some_but_not_all_plus_else(self, suppliers, blue_parts):
        relationships = Relation(["s_no", "p_no"], [("s1", "p1"), ("s1", "p8")])
        result = has(suppliers, blue_parts, relationships, [Association.SOME_BUT_NOT_ALL_PLUS_ELSE])
        assert result.to_set("s_no") == {"s1"}

    def test_disjunction_of_associations(self, suppliers, blue_parts, supplies):
        result = has(
            suppliers,
            blue_parts,
            supplies,
            [Association.EXACTLY, Association.STRICTLY_MORE_THAN, Association.STRICTLY_LESS_THAN],
        )
        assert result.to_set("s_no") == {"s1", "s2", "s3"}

    def test_string_names_are_accepted(self, suppliers, blue_parts, supplies):
        result = has(suppliers, blue_parts, supplies, ["exactly"])
        assert result.to_set("s_no") == {"s1"}

    def test_requires_at_least_one_association(self, suppliers, blue_parts, supplies):
        with pytest.raises(SchemaError):
            has(suppliers, blue_parts, supplies, [])

    def test_join_attribute_inference_failure(self, blue_parts):
        entities = Relation(["name"], [("x",)])
        relationships = Relation(["a", "b"], [(1, 2)])
        with pytest.raises(SchemaError):
            has(entities, blue_parts, relationships, [Association.EXACTLY])


class TestHasAtLeastEqualsDivision:
    def test_at_least_is_division(self, suppliers, blue_parts, supplies):
        """The paper: small divide = HAS (exactly OR strictly more than)."""
        result = has_at_least(suppliers, blue_parts, supplies)
        divided = small_divide(supplies, blue_parts.rename({"p_no": "p_no"}))
        assert result.to_set("s_no") == divided.to_set("s_no")

    @given(dividend=dividends(), divisor=divisors(min_rows=1))
    def test_property_at_least_equals_division(self, dividend, divisor):
        """For entities drawn from the relationships the two operators agree."""
        entities = dividend.project(["a"])
        result = has_at_least(entities, divisor, dividend, entity_key=["a"], element_key=["b"])
        assert result == small_divide(dividend, divisor)
