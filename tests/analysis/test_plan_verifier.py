"""Unit tests for the logical and physical verification passes.

The mutation-style corruption sweep lives in
``tests/tooling/test_verifier_mutations.py``; these tests pin the clean
paths and a couple of targeted checks with hand-built trees.
"""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.catalog import Catalog
from repro.analysis import verify_expression, verify_expression_tree, verify_physical, verify_plan
from repro.physical import (
    Filter,
    HashDivision,
    HashJoin,
    ProjectOp,
    RelationScan,
)
from repro.relation import Relation


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.add_table("r1", Relation(["a", "b"], [(1, 1), (1, 2), (2, 1)]))
    catalog.add_table("r2", Relation(["b"], [(1,), (2,)]))
    return catalog


class TestLogicalPass:
    def test_clean_division_query(self, catalog):
        expression = B.project(
            B.divide(B.ref("r1", ["a", "b"]), B.ref("r2", ["b"])), ["a"]
        )
        findings, checked = verify_expression(expression, catalog)
        assert findings == []
        assert checked == 4  # two refs, the divide, the projection

    def test_shared_subtrees_are_checked_once(self, catalog):
        r1 = B.ref("r1", ["a", "b"])
        expression = B.union(r1, r1)
        _findings, checked = verify_expression(expression)
        assert checked == 2  # the ref appears twice but is one node

    def test_catalog_mismatch_is_rp107(self, catalog):
        expression = B.ref("r1", ["a", "wrong"])
        findings, _ = verify_expression(expression, catalog)
        assert [f.code for f in findings] == ["RP107"]

    def test_unknown_relation_is_rp107(self, catalog):
        findings, _ = verify_expression(B.ref("r9", ["a"]), catalog)
        assert [f.code for f in findings] == ["RP107"]

    def test_without_catalog_refs_pass_on_their_word(self):
        findings, _ = verify_expression(B.ref("anything", ["x", "y"]))
        assert findings == []

    def test_report_wrapper_names_the_pass(self, catalog):
        report = verify_expression_tree(B.ref("r1", ["a", "b"]), catalog)
        assert report.ok
        assert report.passes == ("logical",)


class TestPhysicalPass:
    def test_clean_hand_built_plan(self):
        r1 = Relation(["a", "b"], [(1, 1), (2, 1), (2, 2)])
        r2 = Relation(["b"], [(1,), (2,)])
        plan = ProjectOp(
            HashDivision(RelationScan(r1, "r1"), RelationScan(r2, "r2")), ("a",)
        )
        findings, checked = verify_physical(plan)
        assert findings == []
        assert checked == 4

    def test_filter_predicate_attributes_are_resolved(self):
        scan = RelationScan(Relation(["a", "b"], [(1, 2)]), "r1")
        plan = Filter(scan, P.equals(P.attr("b"), 2))
        findings, _ = verify_physical(plan)
        assert findings == []

    def test_key_type_disagreement_warns_rp112(self):
        left = RelationScan(Relation(["a", "k"], [(1, 1), (2, 2)]), "left")
        right = RelationScan(Relation(["k", "c"], [("one", 5)]), "right")
        plan = HashJoin(left, right)
        findings, _ = verify_physical(plan)
        assert [f.code for f in findings] == ["RP112"]
        assert "'k'" in findings[0].message
        # a warning: the report still passes
        assert verify_plan(plan).ok

    def test_rp112_ignores_none_and_bool_int_mixes(self):
        left = RelationScan(Relation(["k"], [(True,), (None,)]), "left")
        right = RelationScan(Relation(["k", "c"], [(1, "x")]), "right")
        findings, _ = verify_physical(HashJoin(left, right))
        assert findings == []

    def test_verify_plan_merges_codegen_pass_only_when_segments_exist(self):
        scan = RelationScan(Relation(["a"], [(1,)]), "r")
        report = verify_plan(scan)
        assert report.passes == ("physical",)
