"""Unit tests for the finding registry and verification reports."""

import json

import pytest

from repro.analysis import FINDING_CODES, Finding, Severity, VerificationReport, finding


class TestRegistry:
    def test_every_code_is_stable_and_described(self):
        assert len(FINDING_CODES) == 37
        for code, (severity, description) in FINDING_CODES.items():
            assert code.startswith("RP") and len(code) == 5
            assert isinstance(severity, Severity)
            assert description

    def test_code_ranges_map_to_passes(self):
        prefixes = {code[:3] for code in FINDING_CODES}
        assert prefixes == {"RP1", "RP2", "RP3", "RP4", "RP5", "RP6", "RP7"}

    def test_sampled_warnings_stay_warnings(self):
        """RP112 (data-sampled types), RP204 (degradable payloads) and RP701
        (readable legacy files) must not gate CI; everything else is an
        error."""
        warnings = {code for code, (sev, _) in FINDING_CODES.items() if sev is Severity.WARNING}
        assert warnings == {"RP112", "RP204", "RP701"}

    def test_factory_applies_registry_severity(self):
        f = finding("RP101", "boom", "node")
        assert f.severity is Severity.ERROR
        assert finding("RP112", "types", "op").severity is Severity.WARNING

    def test_factory_rejects_unknown_codes(self):
        with pytest.raises(ValueError, match="RP999"):
            finding("RP999", "nope", "nowhere")


class TestFinding:
    def test_render_carries_code_severity_and_location(self):
        f = finding("RP103", "quotient is wrong", "divide#0001", "physical")
        line = f.render()
        assert "RP103" in line and "error" in line and "[divide#0001]" in line

    def test_to_dict_is_json_ready(self):
        f = finding("RP204", "lambda payload", "agg#0002", "physical")
        payload = json.loads(json.dumps(f.to_dict()))
        assert payload["severity"] == "warning"
        assert payload["origin"] == "physical"


class TestVerificationReport:
    def test_clean_report(self):
        report = VerificationReport(passes=("logical",), checked=5)
        assert report.ok
        assert report.errors() == () and report.warnings() == ()
        assert "clean" in report.summary() and "5 node(s)" in report.summary()

    def test_warnings_do_not_fail_the_report(self):
        report = VerificationReport(
            findings=(finding("RP112", "types differ", "join#0001"),),
            passes=("physical",),
            checked=3,
        )
        assert report.ok
        assert len(report.warnings()) == 1
        assert "1 warning(s)" in report.summary()

    def test_errors_fail_the_report(self):
        report = VerificationReport(
            findings=(finding("RP101", "missing attr", "proj#0001"),),
            passes=("logical",),
            checked=2,
        )
        assert not report.ok
        assert "1 error(s)" in report.summary()

    def test_merged_concatenates_and_dedupes_passes(self):
        left = VerificationReport(
            findings=(finding("RP101", "a", "x"),), passes=("logical",), checked=2
        )
        right = VerificationReport(
            findings=(finding("RP111", "b", "y"),), passes=("logical", "physical"), checked=3
        )
        merged = left.merged(right)
        assert [f.code for f in merged.findings] == ["RP101", "RP111"]
        assert merged.passes == ("logical", "physical")
        assert merged.checked == 5

    def test_to_json_round_trips(self):
        report = VerificationReport(
            findings=(finding("RP106", "stale schema", "02:Project"),),
            passes=("logical",),
            checked=4,
        )
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "RP106"

    def test_render_lists_every_finding(self):
        report = VerificationReport(
            findings=(finding("RP101", "a", "x"), finding("RP112", "b", "y")),
            passes=("physical",),
            checked=1,
        )
        text = report.render()
        assert "RP101" in text and "RP112" in text
