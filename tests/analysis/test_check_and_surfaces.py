"""The `repro check` sweep and every surface that exposes verification:
`Query.verify`, `explain(verify=True)`, the executor debug hook, the CLI."""

import json

import pytest

from repro.analysis import check_workloads
from repro.api import connect
from repro.errors import VerificationError
from repro.experiments.queries import Q2
from repro.physical import RelationScan, execute_plan, set_debug_verify
from repro.physical.base import PhysicalOperator
from repro.physical.basic import ProjectOp
from repro.relation import Relation
from repro.relation.schema import Schema
from repro.workloads import textbook_catalog


@pytest.fixture
def db():
    return connect(textbook_catalog)


def corrupted_plan():
    """A projection whose schema no longer resolves against its child."""
    plan = ProjectOp(RelationScan(Relation(["a", "b"], [(1, 2)]), "r"), ("a",))
    plan._schema = Schema(("nope",))
    return plan


class _PassThrough(PhysicalOperator):
    """Executable, but fails verification: no own PhysicalProperties (RP201)."""

    name = "passthrough_without_properties"

    def _produce_chunks(self):
        yield from self._children[0].chunks()


def executable_but_flagged_plan():
    scan = RelationScan(Relation(["a"], [(1,), (2,)]), "r")
    return _PassThrough(scan.schema, (scan,))


class TestCheckWorkloads:
    def test_default_sweep_is_clean(self):
        run = check_workloads()
        assert run.ok
        assert len(run.checks) == 4  # Q1, Q2, Q2_NOT_EXISTS, Q3 at defaults
        assert run.findings == ()

    def test_render_lists_one_row_per_cell(self):
        run = check_workloads()
        text = run.render()
        assert text.count("\n") == len(run.checks)  # rows + the verdict line
        assert "all clean" in text

    def test_to_json_is_ci_consumable(self):
        payload = json.loads(check_workloads().to_json())
        assert payload["ok"] is True
        assert payload["cells"] == len(payload["checks"])

    def test_queries_override_limits_the_sweep(self):
        run = check_workloads(queries={"Q2": Q2})
        assert [c.workload for c in run.checks] == ["Q2"]


class TestQueryVerify:
    def test_query_verify_is_clean_for_the_paper_queries(self, db):
        report = db.sql(Q2).verify()
        assert report.ok
        assert set(report.passes) >= {"logical", "physical"}

    def test_database_verify_delegates(self, db):
        assert db.verify(Q2).ok

    def test_explain_verify_appends_a_verification_line(self, db):
        text = db.sql(Q2).explain(verify=True)
        assert "verification:" in text
        assert "clean" in text.split("verification:")[1]

    def test_explain_without_verify_stays_silent(self, db):
        assert "verification:" not in db.sql(Q2).explain()


class TestExecutorHook:
    def test_explicit_verify_rejects_a_corrupted_plan(self):
        with pytest.raises(VerificationError) as excinfo:
            execute_plan(corrupted_plan(), verify=True)
        assert "RP101" in str(excinfo.value)
        assert excinfo.value.report is not None
        assert not excinfo.value.report.ok

    def test_explicit_verify_accepts_a_clean_plan(self):
        plan = ProjectOp(RelationScan(Relation(["a", "b"], [(1, 2)]), "r"), ("a",))
        result = execute_plan(plan, verify=True)
        assert result.relation == Relation(["a"], [(1,)])

    def test_debug_mode_verifies_every_execution(self):
        previous = set_debug_verify(True)
        try:
            with pytest.raises(VerificationError):
                execute_plan(corrupted_plan())
        finally:
            set_debug_verify(previous)

    def test_explicit_opt_out_overrides_debug_mode(self):
        previous = set_debug_verify(True)
        try:
            plan = executable_but_flagged_plan()
            with pytest.raises(VerificationError):
                execute_plan(plan)
            result = execute_plan(plan, verify=False)
            assert result.relation == Relation(["a"], [(1,), (2,)])
        finally:
            set_debug_verify(previous)

    def test_set_debug_verify_returns_the_previous_value(self):
        first = set_debug_verify(True)
        second = set_debug_verify(first)
        assert second is True


class TestCheckCLI:
    def test_check_exits_zero_and_prints_the_table(self, capsys):
        from repro.cli import main

        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "all clean" in out
        assert "Q2" in out

    def test_check_json_emits_the_run_document(self, capsys):
        from repro.cli import main

        assert main(["check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
