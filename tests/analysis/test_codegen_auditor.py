"""Unit tests for the compiled-segment codegen audit."""

import pytest

from repro.analysis import audit_plan, audit_source
from repro.api.database import connect
from repro.experiments.queries import Q2
from repro.optimizer.planner import PlannerOptions
from repro.physical.compile.segments import _chain
from repro.workloads import textbook_catalog


@pytest.fixture
def compiled():
    """(plan, compiled root, its fused chain, its source) for Q2."""
    database = connect(textbook_catalog, planner_options=PlannerOptions(compile="on"))
    prepared, _cached = database._prepare(database.sql(Q2).expression)
    roots = [op for op in prepared.plan.walk() if getattr(op, "_compiled_source", None)]
    assert roots, "Q2 must compile at least one segment under compile='on'"
    root = roots[0]
    return prepared.plan, root, _chain(root), root._compiled_source


class TestRealSegments:
    def test_q2_compiled_plan_audits_clean(self, compiled):
        plan, _root, _stages, _source = compiled
        findings, audited = audit_plan(plan)
        assert findings == []
        assert audited >= 1

    def test_source_alone_audits_clean(self, compiled):
        _plan, _root, stages, source = compiled
        assert audit_source(source, stages, "Q2") == []

    def test_effect_checks_run_without_a_chain(self, compiled):
        _plan, _root, _stages, source = compiled
        assert audit_source(source) == []


class TestCorruptedSources:
    def test_unparseable_source_is_rp305(self):
        findings = audit_source("def _segment(")
        assert [f.code for f in findings] == ["RP305"]

    def test_wrong_signature_is_rp304(self, compiled):
        _plan, _root, _stages, source = compiled
        bad = source.replace("def _segment(_pull, _bind):", "def _segment(_pull):")
        assert "RP304" in [f.code for f in audit_source(bad)]

    def test_injected_call_is_rp301(self, compiled):
        _plan, _root, _stages, source = compiled
        bad = source.replace("        if _t:", "        print(_t)\n        if _t:")
        assert "RP301" in [f.code for f in audit_source(bad)]

    def test_injected_import_is_rp302(self, compiled):
        _plan, _root, _stages, source = compiled
        bad = source.replace(
            "    for _chunk in _pull():", "    import os\n    for _chunk in _pull():"
        )
        assert "RP302" in [f.code for f in audit_source(bad)]

    def test_binding_shadowing_is_rp303(self, compiled):
        _plan, _root, _stages, source = compiled
        bad = source.replace(
            "    for _chunk in _pull():", "    _b0 = None\n    for _chunk in _pull():"
        )
        assert "RP303" in [f.code for f in audit_source(bad)]

    def test_missing_counter_bump_is_rp304(self, compiled):
        _plan, _root, stages, source = compiled
        lines = [l for l in source.splitlines() if "tuples_out" not in l]
        bad = "\n".join(lines)
        findings = audit_source(bad, stages)
        assert "RP304" in [f.code for f in findings]

    def test_missing_emit_tail_is_rp304(self, compiled):
        _plan, _root, stages, source = compiled
        head, _sep, _tail = source.partition("        if _t:")
        findings = audit_source(head + "        pass", stages)
        assert "RP304" in [f.code for f in findings]
