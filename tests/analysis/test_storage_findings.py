"""RP5xx storage invariants: registry entries and triggered findings.

Each test corrupts one piece of stored-table metadata (the header is a
plain dict on the reader, so tampering is direct) and pins the exact
finding code the physical verification pass reports.  All checks are
metadata reads — none of them decodes a block.
"""

import pytest

from repro.algebra import predicates as P
from repro.analysis import verify_physical
from repro.analysis.findings import FINDING_CODES, Severity
from repro.physical import PartitionedDivision, RelationScan
from repro.relation import Relation
from repro.storage.scan import StoredScan
from repro.storage.store import load_catalog, save_database


@pytest.fixture
def scan(tmp_path):
    from repro.algebra.catalog import Catalog

    relation = Relation.from_aligned(
        ("k", "g"), [(i, i % 5) for i in range(100)]
    ).clustered(["k"])
    catalog = Catalog()
    catalog.add_table("t", relation, key=["k"])
    save_database(tmp_path / "db", catalog, block_size=25)
    return StoredScan(load_catalog(tmp_path / "db")["t"], "t")


def codes(plan):
    findings, _checked = verify_physical(plan)
    return [f.code for f in findings]


class TestRegistry:
    @pytest.mark.parametrize("code", ["RP501", "RP502", "RP503", "RP504", "RP505"])
    def test_storage_codes_are_registered_errors(self, code):
        severity, _description = FINDING_CODES[code]
        assert severity is Severity.ERROR


class TestStoredScanFindings:
    def test_clean_scan(self, scan):
        assert codes(scan) == []

    def test_clean_scan_with_skip_predicate(self, scan):
        scan.set_skip_predicate(P.less_than(P.attr("k"), 10))
        assert codes(scan) == []

    def test_header_schema_mismatch_is_rp501(self, scan):
        scan.relation.reader._header["attributes"] = ("k", "other")
        assert codes(scan) == ["RP501"]

    def test_inverted_zone_map_is_rp502(self, scan):
        scan.relation.reader.blocks[0]["zones"]["k"] = (5, 1)
        assert codes(scan) == ["RP502"]

    def test_unknown_zone_attribute_is_rp502(self, scan):
        scan.relation.reader.blocks[1]["zones"]["ghost"] = (0, 9)
        assert codes(scan) == ["RP502"]

    def test_unpackable_zone_bounds_are_rp502(self, scan):
        scan.relation.reader.blocks[2]["zones"]["k"] = 7
        assert codes(scan) == ["RP502"]

    def test_skip_predicate_outside_schema_is_rp503(self, scan):
        # ``set_skip_predicate`` rejects this up front; the verifier guards
        # against a plan assembled around that check.
        scan.skip_predicate = P.equals(P.attr("ghost"), 1)
        assert codes(scan) == ["RP503"]

    def test_block_count_drift_is_rp504(self, scan):
        scan.relation.reader.blocks[0]["count"] += 1
        assert codes(scan) == ["RP504"]

    def test_findings_carry_the_storage_origin(self, scan):
        scan.relation.reader.blocks[0]["zones"]["k"] = (5, 1)
        findings, _ = verify_physical(scan)
        assert [f.origin for f in findings] == ["storage"]


class TestExchangeBudgetFinding:
    def plan(self, budget):
        dividend = Relation(["a", "b"], [(1, 1), (1, 2), (2, 1)])
        divisor = Relation(["b"], [(1,), (2,)])
        operator = PartitionedDivision(
            RelationScan(dividend), RelationScan(divisor), partitions=2
        )
        operator.memory_budget_mb = budget
        return operator

    def test_positive_budget_is_clean(self):
        assert codes(self.plan(8.0)) == []

    def test_non_positive_budget_is_rp505(self):
        assert "RP505" in codes(self.plan(-1.0))
        assert "RP505" in codes(self.plan(0.0))
