"""Range-predicate selectivity from min/max interpolation.

Zone-map statistics give every stored (and analyzed) table exact per-column
bounds; the estimator linearly interpolates ``attr < literal`` style
predicates against them instead of falling back to the fixed default
selectivity.  These tests pin the interpolation, the mirrored-operand and
Rename handling, and the conservative fallbacks.
"""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.optimizer import CardinalityEstimator, StatisticsCatalog
from repro.relation import Relation

ROWS = 1000


@pytest.fixture
def estimator():
    # ``k`` spans [0, 999] uniformly; ``flag`` is boolean.
    relation = Relation.from_aligned(
        ("k", "flag"), [(i, i % 2 == 0) for i in range(ROWS)]
    )
    return CardinalityEstimator(StatisticsCatalog.from_database({"t": relation}))


def ref():
    return B.ref("t", ["k", "flag"])


def estimate(estimator, predicate, expression=None):
    return estimator.cardinality(B.select(expression or ref(), predicate))


class TestInterpolation:
    @pytest.mark.parametrize(
        "literal,expected_fraction",
        [(100, 0.1), (500, 0.5), (900, 0.9)],
    )
    def test_less_than_scales_with_the_literal(self, estimator, literal, expected_fraction):
        cardinality = estimate(estimator, P.less_than(P.attr("k"), literal))
        assert cardinality == pytest.approx(ROWS * expected_fraction, rel=0.02)

    def test_greater_than_is_the_complement(self, estimator):
        low = estimate(estimator, P.greater_than(P.attr("k"), 900))
        high = estimate(estimator, P.greater_than(P.attr("k"), 100))
        assert low == pytest.approx(ROWS * 0.1, rel=0.02)
        assert high == pytest.approx(ROWS * 0.9, rel=0.02)

    def test_out_of_range_clamps_to_the_floor(self, estimator):
        # Nothing is below the minimum, but the estimate never hits zero.
        cardinality = estimate(estimator, P.less_than(P.attr("k"), 0))
        assert 0 < cardinality <= ROWS * 0.001 + 1

    def test_everything_in_range_clamps_to_one(self, estimator):
        cardinality = estimate(estimator, P.less_equal(P.attr("k"), 99999))
        assert cardinality == pytest.approx(ROWS)

    def test_mirrored_literal_on_the_left(self, estimator):
        # ``100 > k``  ≡  ``k < 100``.
        mirrored = estimate(estimator, P.greater_than(100, P.attr("k")))
        direct = estimate(estimator, P.less_than(P.attr("k"), 100))
        assert mirrored == direct


class TestStructureTraversal:
    def test_bounds_survive_projection(self, estimator):
        expression = B.project(ref(), ["k"])
        cardinality = estimate(estimator, P.less_than(P.attr("k"), 100), expression)
        # Projection caps at the distinct count but the range fraction holds.
        assert cardinality <= ROWS * 0.1 + 1

    def test_bounds_survive_rename(self, estimator):
        expression = B.rename(ref(), {"k": "key"})
        cardinality = estimator.cardinality(
            B.select(expression, P.less_than(P.attr("key"), 100))
        )
        assert cardinality == pytest.approx(ROWS * 0.1, rel=0.02)


class TestConservativeFallbacks:
    def default(self, estimator):
        from repro.optimizer.statistics import DEFAULT_SELECTIVITY

        return ROWS * DEFAULT_SELECTIVITY

    def test_boolean_columns_fall_back(self, estimator):
        # Interpolating over booleans would be meaningless; use the default.
        cardinality = estimate(estimator, P.less_than(P.attr("flag"), True))
        assert cardinality == pytest.approx(self.default(estimator))

    def test_unknown_attribute_falls_back(self, estimator):
        cardinality = estimate(estimator, P.less_than(P.attr("ghost"), 10))
        assert cardinality == pytest.approx(self.default(estimator))

    def test_non_numeric_literal_falls_back(self, estimator):
        cardinality = estimate(estimator, P.less_than(P.attr("k"), "zzz"))
        assert cardinality == pytest.approx(self.default(estimator))
