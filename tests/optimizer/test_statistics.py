"""Tests for table statistics and cardinality estimation."""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.optimizer import CardinalityEstimator, StatisticsCatalog, TableStatistics
from repro.relation import Relation
from repro.workloads import make_division_workload


@pytest.fixture
def workload():
    return make_division_workload(num_groups=50, divisor_size=6, containing_fraction=0.4, seed=5)


@pytest.fixture
def statistics(workload):
    return StatisticsCatalog.from_database(
        {"r1": workload.dividend, "r2": workload.divisor}
    )


@pytest.fixture
def estimator(statistics):
    return CardinalityEstimator(statistics)


@pytest.fixture
def r1(workload):
    return B.ref("r1", workload.dividend.attributes)


@pytest.fixture
def r2(workload):
    return B.ref("r2", workload.divisor.attributes)


class TestTableStatistics:
    def test_from_relation(self, figure1_dividend):
        stats = TableStatistics.from_relation(figure1_dividend)
        assert stats.cardinality == 9
        assert stats.distinct_values["a"] == 3
        assert stats.distinct_values["b"] == 4

    def test_unknown_attribute_defaults_to_one(self, figure1_dividend):
        stats = TableStatistics.from_relation(figure1_dividend)
        assert stats.distinct("missing") == 1

    def test_catalog_lookup_and_default(self, statistics):
        assert "r1" in statistics
        assert "unknown" not in statistics
        assert statistics.table("unknown").cardinality == 1000


class TestCardinalityEstimation:
    def test_base_table(self, estimator, r1, workload):
        assert estimator.cardinality(r1) == len(workload.dividend)

    def test_projection_bounded_by_distinct_count(self, estimator, r1, workload):
        estimate = estimator.cardinality(B.project(r1, ["a"]))
        actual = len(workload.dividend.project(["a"]))
        assert estimate == pytest.approx(actual, rel=0.01)

    def test_equality_selection_uses_distinct_count(self, estimator, r1, workload):
        estimate = estimator.cardinality(B.select(r1, P.equals(P.attr("a"), 1)))
        expected = len(workload.dividend) / len(workload.dividend.project(["a"]))
        assert estimate == pytest.approx(expected, rel=0.01)

    def test_product_multiplies(self, estimator, workload):
        left = B.ref("r1", workload.dividend.attributes)
        right = B.literal(Relation(["z"], [(1,), (2,)]))
        assert estimator.cardinality(B.product(left, right)) == pytest.approx(
            2 * len(workload.dividend)
        )

    def test_union_adds(self, estimator, r2, workload):
        assert estimator.cardinality(B.union(r2, r2)) == pytest.approx(2 * len(workload.divisor))

    def test_small_divide_estimate_is_sane(self, estimator, r1, r2, workload):
        """The estimate must stay within [0, number of candidates]."""
        estimate = estimator.cardinality(B.divide(r1, r2))
        candidates = len(workload.dividend.project(["a"]))
        assert 0 <= estimate <= candidates

    def test_divide_estimate_decreases_with_divisor_size(self, statistics, workload):
        estimator = CardinalityEstimator(statistics)
        r1 = B.ref("r1", workload.dividend.attributes)
        small = estimator.cardinality(B.divide(r1, B.literal(Relation(["b"], [(0,)]))))
        large = estimator.cardinality(
            B.divide(r1, B.literal(Relation(["b"], [(0,), (1,), (2,), (3,), (4,)])))
        )
        assert large <= small

    def test_great_divide_estimate_is_sane(self, estimator, r1, workload):
        divisor = B.literal(Relation(["b", "c"], [(1, 1), (2, 1), (1, 2)]))
        estimate = estimator.cardinality(B.great_divide(r1, divisor))
        candidates = len(workload.dividend.project(["a"]))
        assert 0 <= estimate <= candidates * 2

    def test_semijoin_is_reducing(self, estimator, r1, workload):
        estimate = estimator.cardinality(B.semijoin(r1, B.literal(Relation(["a"], [(1,)]))))
        assert estimate <= len(workload.dividend)


class TestExtendedStatistics:
    def test_min_max_collected(self, figure1_dividend):
        stats = TableStatistics.from_relation(figure1_dividend)
        column = figure1_dividend.to_set("b")
        assert stats.minimum("b") == min(column)
        assert stats.maximum("b") == max(column)
        assert stats.minimum("missing") is None

    def test_sortedness_reflects_scan_order(self):
        clustered = Relation(
            ["a", "b"], [(g, v) for g in range(40) for v in range(3)]
        ).clustered(["a"])
        stats = TableStatistics.from_relation(clustered)
        assert stats.is_sorted("a")
        assert stats.sorted_attributes <= {"a", "b"}

    def test_single_row_and_empty_relations(self):
        one = TableStatistics.from_relation(Relation(["a"], [(7,)]))
        assert one.is_sorted("a") and one.minimum("a") == 7
        empty = TableStatistics.from_relation(Relation.empty(["a"]))
        assert empty.cardinality == 0
        assert empty.distinct_values == {"a": 0}
        assert not empty.is_sorted("a")

    def test_mixed_incomparable_types_are_not_sorted(self):
        mixed = Relation(["a"], [(1,), ("x",), (2,)])
        stats = TableStatistics.from_relation(mixed)
        assert not stats.is_sorted("a")
        assert stats.minimum("a") is None

    def test_one_pass_matches_per_attribute_projection(self, workload):
        """The columnar one-pass collection computes the same distinct
        counts as the old one-Relation-per-attribute implementation."""
        relation = workload.dividend
        stats = TableStatistics.from_relation(relation)
        for attribute in relation.attributes:
            assert stats.distinct_values[attribute] == len(relation.project([attribute]))

    def test_catalog_analyze_updates_in_place(self, workload):
        catalog = StatisticsCatalog()
        gathered = catalog.analyze({"r1": workload.dividend})
        assert set(gathered) == {"r1"}
        assert catalog.table("r1").cardinality == len(workload.dividend)
        assert "r1" in catalog.tables()

    def test_literal_statistics_cache_is_bounded(self):
        from repro.optimizer import CardinalityEstimator

        estimator = CardinalityEstimator(StatisticsCatalog())
        limit = CardinalityEstimator.LITERAL_CACHE_SIZE
        relations = [Relation(["a"], [(i,)]) for i in range(limit + 10)]
        for relation in relations:
            estimator.literal_statistics(relation)
        assert len(estimator._literal_statistics) <= limit
        # evicted entries are recomputed correctly on reuse
        assert estimator.literal_statistics(relations[0]).cardinality == 1

    def test_catalog_analyze_unknown_table_raises_schema_error(self, workload):
        from repro.errors import SchemaError

        catalog = StatisticsCatalog()
        with pytest.raises(SchemaError) as excinfo:
            catalog.analyze({"r1": workload.dividend}, ["typo"])
        assert "typo" in str(excinfo.value) and "r1" in str(excinfo.value)
