"""Tests for the physical planner and the optimizer facade."""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.catalog import Catalog
from repro.errors import PlanningError
from repro.optimizer import Optimizer, PhysicalPlanner, PlannerOptions
from repro.physical import HashDivision, MergeSortDivision, NestedLoopsGreatDivision
from repro.relation import Relation
from repro.workloads import make_division_workload, textbook_catalog
from tests.strategies import dividends, divisors


@pytest.fixture
def catalog():
    workload = make_division_workload(num_groups=30, divisor_size=4, seed=2)
    cat = Catalog()
    cat.add_table("r1", workload.dividend)
    cat.add_table("r2", workload.divisor)
    return cat


class TestPlannerOptions:
    def test_defaults_are_cost_based(self):
        options = PlannerOptions()
        assert options.small_divide_algorithm is None
        assert options.great_divide_algorithm is None
        assert options.join_algorithm is None

    def test_unknown_algorithm_rejected_at_prepare_time(self, catalog):
        """Regression: an unknown override must fail when the plan is
        prepared — not at execution — and name the valid choices for the
        specific divide kind."""
        divide = B.divide(catalog.ref("r1"), catalog.ref("r2"))
        # Building the options object alone does not raise...
        options = PlannerOptions(small_divide_algorithm="quantum")
        planner = PhysicalPlanner(catalog, options)
        # ...planning (prepare time) does, listing the small-divide choices.
        with pytest.raises(PlanningError) as excinfo:
            planner.plan(divide)
        message = str(excinfo.value)
        assert "small divide" in message
        assert "quantum" in message
        assert "hash" in message and "merge_sort" in message

    def test_unknown_great_divide_algorithm_lists_its_own_choices(self, catalog):
        planner = PhysicalPlanner(catalog, PlannerOptions(great_divide_algorithm="quantum"))
        with pytest.raises(PlanningError) as excinfo:
            planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        message = str(excinfo.value)
        assert "great divide" in message
        assert "groupwise" in message
        # the small-divide-only algorithms are not offered for the great divide
        assert "merge_count" not in message

    def test_unknown_join_algorithm_rejected(self, catalog):
        planner = PhysicalPlanner(catalog, PlannerOptions(join_algorithm="sort_merge"))
        with pytest.raises(PlanningError) as excinfo:
            planner.plan(B.natural_join(catalog.ref("r1"), catalog.ref("r2")))
        assert "natural join" in str(excinfo.value)


class TestPhysicalPlanner:
    def test_every_logical_operator_is_mapped(self, catalog):
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        planner = PhysicalPlanner(catalog)
        expressions = [
            r1,
            B.literal(Relation(["x"], [(1,)])),
            B.project(r1, ["a"]),
            B.select(r1, P.equals(P.attr("a"), 1)),
            B.rename(r1, {"a": "aa"}),
            B.group_by(r1, ["a"], [B.aggregate("count", "b", "n")]),
            B.union(r2, r2),
            B.intersection(r2, r2),
            B.difference(r2, r2),
            B.product(B.project(r1, ["a"]), r2),
            B.theta_join(B.project(r1, ["a"]), r2, P.less_than(P.attr("a"), P.attr("b"))),
            B.natural_join(r1, r2),
            B.semijoin(r1, r2),
            B.antijoin(r1, r2),
            B.outer_join(r1, r2),
            B.divide(r1, r2),
            B.great_divide(r1, B.literal(Relation(["b", "c"], [(1, 1)]))),
        ]
        for expression in expressions:
            plan = planner.plan(expression)
            assert plan.execute() == expression.evaluate(catalog), expression.to_text()

    def test_algorithm_selection(self, catalog):
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        planner = PhysicalPlanner(catalog, PlannerOptions(small_divide_algorithm="merge_sort"))
        plan = planner.plan(B.divide(r1, r2))
        assert isinstance(plan, MergeSortDivision)
        default_plan = PhysicalPlanner(catalog).plan(B.divide(r1, r2))
        assert isinstance(default_plan, HashDivision)

    def test_great_divide_algorithm_selection(self, catalog):
        r1 = catalog.ref("r1")
        divisor = B.literal(Relation(["b", "c"], [(1, 1), (2, 1)]))
        planner = PhysicalPlanner(catalog, PlannerOptions(great_divide_algorithm="nested_loops"))
        assert isinstance(planner.plan(B.great_divide(r1, divisor)), NestedLoopsGreatDivision)


class TestOptimizerFacade:
    def test_optimize_reports_rules_and_costs(self, catalog):
        optimizer = Optimizer(catalog)
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        query = B.select(B.divide(r1, r2), P.equals(P.attr("a"), 1))
        result = optimizer.optimize(query)
        assert "law_03_selection_pushdown" in result.rules_fired
        assert result.estimated_speedup >= 1.0
        assert result.plan.execute() == query.evaluate(catalog)

    def test_execute_runs_the_optimized_plan(self, catalog):
        optimizer = Optimizer(catalog)
        query = B.divide(catalog.ref("r1"), catalog.ref("r2"))
        result = optimizer.execute(query)
        assert result.relation == query.evaluate(catalog)
        assert result.statistics.total_tuples > 0

    def test_plan_without_rewriting_is_the_baseline(self, catalog):
        optimizer = Optimizer(catalog)
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        query = B.select(B.divide(r1, r2), P.equals(P.attr("a"), 1))
        baseline = optimizer.plan_without_rewriting(query)
        assert baseline.execute() == query.evaluate(catalog)

    def test_cost_based_mode(self, catalog):
        optimizer = Optimizer(catalog, cost_based=True)
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        query = B.select(B.divide(r1, r2), P.equals(P.attr("a"), 1))
        result = optimizer.optimize(query)
        assert result.plan.execute() == query.evaluate(catalog)
        assert result.rewritten_cost.total_cost <= result.original_cost.total_cost

    def test_suppliers_parts_query_q1_shape(self):
        """The Q1 query built by hand through the algebra (SQL tests cover parsing)."""
        catalog = textbook_catalog()
        supplies = catalog.ref("supplies")
        parts = catalog.ref("parts")
        query = B.great_divide(supplies, parts)
        optimizer = Optimizer(catalog)
        result = optimizer.execute(query)
        assert ("s1", "blue") in result.relation.to_tuples(["s_no", "color"])
        assert ("s1", "red") in result.relation.to_tuples(["s_no", "color"])
        assert ("s3", "blue") not in result.relation.to_tuples(["s_no", "color"])

    @pytest.mark.parametrize("cost_based", [False, True])
    def test_optimizer_preserves_semantics_on_random_inputs(self, cost_based):
        from hypothesis import given, settings

        @settings(max_examples=20, deadline=None)
        @given(dividend=dividends(), divisor=divisors())
        def run(dividend, divisor):
            catalog = Catalog()
            catalog.add_table("r1", dividend)
            catalog.add_table("r2", divisor)
            optimizer = Optimizer(catalog, cost_based=cost_based)
            query = B.select(
                B.divide(catalog.ref("r1"), catalog.ref("r2")), P.not_equals(P.attr("a"), 0)
            )
            result = optimizer.optimize(query)
            assert result.plan.execute() == query.evaluate(catalog)

        run()
