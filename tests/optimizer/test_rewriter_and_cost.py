"""Tests for the heuristic/cost-based rewriters and the cost model."""

import pytest

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.catalog import Catalog
from repro.laws import RewriteContext, get_rule, pushdown_rules
from repro.optimizer import CostBasedRewriter, CostModel, HeuristicRewriter, StatisticsCatalog
from repro.relation import Relation
from repro.workloads import make_division_workload


@pytest.fixture
def catalog():
    workload = make_division_workload(num_groups=60, divisor_size=6, containing_fraction=0.3, seed=9)
    cat = Catalog()
    cat.add_table("r1", workload.dividend)
    cat.add_table("r2", workload.divisor)
    cat.add_table("interesting", Relation(["a"], [(0,), (1,), (2,)]))
    return cat


@pytest.fixture
def statistics(catalog):
    return StatisticsCatalog.from_database(catalog)


@pytest.fixture
def cost_model(statistics):
    return CostModel(statistics)


class TestCostModel:
    def test_cost_is_positive_and_monotone_in_tree_size(self, catalog, cost_model):
        r1 = catalog.ref("r1")
        small = cost_model.cost(r1)
        bigger = cost_model.cost(B.project(r1, ["a"]))
        assert 0 < small < bigger

    def test_selection_pushdown_is_cheaper(self, catalog, cost_model):
        """Law 3's direction: filtering the dividend first costs less."""
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        predicate = P.equals(P.attr("a"), 1)
        outside = B.select(B.divide(r1, r2), predicate)
        inside = B.divide(B.select(r1, predicate), r2)
        assert cost_model.cost(inside) < cost_model.cost(outside)

    def test_law7_short_circuit_is_cheaper(self, catalog, cost_model):
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        low = B.select(r1, P.less_than(P.attr("a"), 10))
        high = B.select(r1, P.greater_equal(P.attr("a"), 10))
        both = B.difference(B.divide(low, r2), B.divide(high, r2))
        only_first = B.divide(low, r2)
        assert cost_model.cost(only_first) < cost_model.cost(both)

    def test_report_and_cheapest(self, catalog, cost_model):
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        report = cost_model.report(B.divide(r1, r2))
        assert report.total_cost > 0
        assert report.output_cardinality >= 0
        alternatives = [B.divide(r1, r2), B.project(B.divide(r1, r2), ["a"])]
        assert cost_model.cheapest(alternatives) == alternatives[0]


class TestHeuristicRewriter:
    def test_pushes_selection_below_divide(self, catalog):
        rewriter = HeuristicRewriter(context=RewriteContext.from_catalog(catalog))
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        query = B.select(B.divide(r1, r2), P.equals(P.attr("a"), 1))
        report = rewriter.rewrite(query)
        assert "law_03_selection_pushdown" in report.rules_fired
        assert report.result.evaluate(catalog) == query.evaluate(catalog)

    def test_semijoin_pushdown_via_law_10(self, catalog):
        rewriter = HeuristicRewriter(context=RewriteContext.from_catalog(catalog))
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        query = B.semijoin(B.divide(r1, r2), catalog.ref("interesting"))
        report = rewriter.rewrite(query)
        assert "law_10_semijoin_commute" in report.rules_fired
        assert report.result.evaluate(catalog) == query.evaluate(catalog)

    def test_fixpoint_terminates_with_all_rules(self, catalog):
        rewriter = HeuristicRewriter(context=RewriteContext.from_catalog(catalog))
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        predicate = P.less_than(P.attr("b"), 3)
        query = B.divide(r1, B.select(r2, predicate))
        report = rewriter.rewrite(query)
        assert report.result.evaluate(catalog) == query.evaluate(catalog)
        # The rewriter must not have exploded the expression.
        assert report.result.size() < 30

    def test_no_rules_no_changes(self, catalog):
        rewriter = HeuristicRewriter(rules=[], context=RewriteContext.from_catalog(catalog))
        query = B.divide(catalog.ref("r1"), catalog.ref("r2"))
        report = rewriter.rewrite(query)
        assert report.result == query
        assert len(report) == 0

    def test_static_rule_set_never_needs_data(self, catalog):
        rewriter = HeuristicRewriter(
            rules=pushdown_rules(), context=RewriteContext(static_only=True)
        )
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        query = B.select(B.divide(r1, r2), P.equals(P.attr("a"), 1))
        report = rewriter.rewrite(query)
        assert report.result.evaluate(catalog) == query.evaluate(catalog)
        assert "law_03_selection_pushdown" in report.rules_fired


class TestCostBasedRewriter:
    def test_explores_alternatives_and_preserves_semantics(self, catalog, cost_model):
        rewriter = CostBasedRewriter(cost_model, context=RewriteContext.from_catalog(catalog))
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        query = B.select(B.divide(r1, r2), P.equals(P.attr("a"), 1))
        report = rewriter.rewrite(query)
        assert report.result.evaluate(catalog) == query.evaluate(catalog)
        assert cost_model.cost(report.result) <= cost_model.cost(query)

    def test_applies_law7_when_candidates_are_disjoint(self, catalog, cost_model):
        rewriter = CostBasedRewriter(cost_model, context=RewriteContext.from_catalog(catalog))
        r1, r2 = catalog.ref("r1"), catalog.ref("r2")
        low = B.select(r1, P.less_than(P.attr("a"), 30))
        high = B.select(r1, P.greater_equal(P.attr("a"), 30))
        query = B.difference(B.divide(low, r2), B.divide(high, r2))
        report = rewriter.rewrite(query)
        assert report.result.evaluate(catalog) == query.evaluate(catalog)
        assert "law_07_disjoint_difference_elimination" in {r.rule for r in report.applied}
        # The chosen plan contains a single divide.
        assert sum("divide" == type(node).__name__.lower() or node.__class__.__name__ == "SmallDivide" for node in report.result.walk() if node.__class__.__name__ == "SmallDivide") <= 1


class TestLaw11RewriteThroughOptimizerRules:
    def test_grouped_dividend_rule_via_rewriter(self, figure10_relations):
        catalog = Catalog()
        catalog.add_table("r0", figure10_relations["r0"])
        catalog.add_table("r2", figure10_relations["r2"])
        rewriter = HeuristicRewriter(
            rules=[get_rule("law_11_grouped_dividend")],
            context=RewriteContext.from_catalog(catalog),
        )
        grouped = B.group_by(catalog.ref("r0"), ["a"], [B.aggregate("sum", "x", "b")])
        query = B.divide(grouped, catalog.ref("r2"))
        report = rewriter.rewrite(query)
        assert report.rules_fired == ["law_11_grouped_dividend"]
        assert report.result.evaluate(catalog) == figure10_relations["quotient"]
