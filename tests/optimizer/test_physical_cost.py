"""Tests for the physical cost model and the cost-driven planner choices.

The paper's experimental claim is that no division algorithm dominates;
these tests pin down that the cost-based planner picks the measured-fastest
algorithm *family* on the benchmark scenario shapes:

* big divisor, many groups, arbitrary scan order → hash-division;
* the same workload pre-clustered on the quotient attribute → streaming
  merge-group (merge-sort) division with the sort waived;
* tiny dividend → nested-loops division;

plus a hypothesis sweep showing forced and cost-chosen plans return
identical quotients.
"""

import pytest
from hypothesis import given, settings

from repro.algebra import builders as B
from repro.algebra.catalog import Catalog
from repro.optimizer import PhysicalPlanner, PlannerOptions
from repro.optimizer.physical_cost import PhysicalCostModel
from repro.optimizer.statistics import StatisticsCatalog
from repro.physical import (
    HashDivision,
    HashJoin,
    NestedLoopsDivision,
    NestedLoopsGreatDivision,
    NestedLoopsNaturalJoin,
    SMALL_DIVIDE_ALGORITHMS,
)
from repro.physical.division import MergeSortDivision
from repro.relation import Relation
from repro.workloads import make_division_workload, make_great_division_workload
from tests.strategies import dividends, divisors


def catalog_for(dividend, divisor) -> Catalog:
    catalog = Catalog()
    catalog.add_table("r1", dividend)
    catalog.add_table("r2", divisor)
    return catalog


@pytest.fixture(scope="module")
def benchmark_workload():
    """The committed division-benchmark scenario shape."""
    return make_division_workload(
        num_groups=400, divisor_size=8, containing_fraction=0.25, extra_values_per_group=6, seed=1
    )


class TestPlannerChoices:
    def test_big_divisor_scenario_chooses_hash(self, benchmark_workload):
        catalog = catalog_for(benchmark_workload.dividend, benchmark_workload.divisor)
        planner = PhysicalPlanner(catalog)
        plan = planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        assert isinstance(plan, HashDivision)
        decision = planner.decisions[0]
        assert decision.chosen.name == "hash"
        assert not decision.forced
        # every registered algorithm was priced
        assert {alt.name for alt in decision.alternatives} == set(SMALL_DIVIDE_ALGORITHMS)

    def test_clustered_dividend_chooses_streaming_merge_sort(self, benchmark_workload):
        clustered = benchmark_workload.dividend.clustered(["a"])
        catalog = catalog_for(clustered, benchmark_workload.divisor)
        planner = PhysicalPlanner(catalog)
        plan = planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        assert isinstance(plan, MergeSortDivision)
        assert plan.assume_clustered
        decision = planner.decisions[0]
        assert decision.chosen.name == "merge_sort"
        assert decision.chosen.clustered
        # clustering survives an order-preserving selection on top
        import repro.algebra.predicates as P

        selected = B.select(catalog.ref("r1"), P.not_equals(P.attr("b"), -1))
        plan = planner.plan(B.divide(selected, catalog.ref("r2")))
        assert isinstance(plan, MergeSortDivision) and plan.assume_clustered

    def test_tiny_dividend_chooses_nested_loops(self):
        catalog = catalog_for(
            Relation(["a", "b"], [(1, 1), (1, 2), (2, 1), (3, 2)]),
            Relation(["b"], [(1,), (2,)]),
        )
        planner = PhysicalPlanner(catalog)
        plan = planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        assert isinstance(plan, NestedLoopsDivision)

    def test_great_divide_records_decision(self):
        workload = make_great_division_workload(
            dividend_groups=200,
            dividend_group_size=14,
            divisor_groups=20,
            divisor_group_size=5,
            domain_size=60,
            seed=3,
        )
        catalog = catalog_for(workload.dividend, workload.divisor)
        planner = PhysicalPlanner(catalog)
        plan = planner.plan(B.great_divide(catalog.ref("r1"), catalog.ref("r2")))
        # the measured-fastest family on this shape (see benchmarks)
        assert isinstance(plan, NestedLoopsGreatDivision)
        assert planner.decisions[0].kind == "great divide"

    def test_forced_choice_is_marked_forced(self, benchmark_workload):
        catalog = catalog_for(benchmark_workload.dividend, benchmark_workload.divisor)
        planner = PhysicalPlanner(catalog, PlannerOptions(small_divide_algorithm="merge_sort"))
        plan = planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        assert isinstance(plan, MergeSortDivision)
        decision = planner.decisions[0]
        assert decision.forced and decision.chosen.name == "merge_sort"
        assert "forced" in decision.describe()

    def test_tiny_join_uses_nested_loops_large_join_uses_hash(self):
        tiny = Catalog()
        tiny.add_table("l", Relation(["a", "b"], [(1, 1), (2, 2)]))
        tiny.add_table("r", Relation(["b", "c"], [(1, 10), (2, 20)]))
        planner = PhysicalPlanner(tiny)
        assert isinstance(
            planner.plan(B.natural_join(tiny.ref("l"), tiny.ref("r"))), NestedLoopsNaturalJoin
        )

        big = Catalog()
        big.add_table("l", Relation(["a", "b"], [(i, i % 50) for i in range(400)]))
        big.add_table("r", Relation(["b", "c"], [(i, i) for i in range(50)]))
        planner = PhysicalPlanner(big)
        assert isinstance(planner.plan(B.natural_join(big.ref("l"), big.ref("r"))), HashJoin)

    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(), divisor=divisors())
    def test_forced_and_chosen_plans_return_identical_quotients(self, dividend, divisor):
        catalog = catalog_for(dividend, divisor)
        query = B.divide(catalog.ref("r1"), catalog.ref("r2"))
        chosen = PhysicalPlanner(catalog).plan(query).execute()
        for algorithm in SMALL_DIVIDE_ALGORITHMS:
            options = PlannerOptions(small_divide_algorithm=algorithm)
            forced = PhysicalPlanner(catalog, options).plan(query).execute()
            assert forced == chosen, algorithm


class TestOrderPropagation:
    def test_base_table_order_comes_from_statistics(self, benchmark_workload):
        clustered = benchmark_workload.dividend.clustered(["a"])
        catalog = catalog_for(clustered, benchmark_workload.divisor)
        model = PhysicalCostModel(StatisticsCatalog.from_database(catalog))
        assert "a" in model.ordered_attributes(catalog.ref("r1"))

    def test_rename_remaps_and_project_filters_order(self, benchmark_workload):
        clustered = benchmark_workload.dividend.clustered(["a"])
        catalog = catalog_for(clustered, benchmark_workload.divisor)
        model = PhysicalCostModel(StatisticsCatalog.from_database(catalog))
        renamed = B.rename(catalog.ref("r1"), {"a": "group"})
        assert "group" in model.ordered_attributes(renamed)
        assert "a" not in model.ordered_attributes(renamed)
        projected = B.project(catalog.ref("r1"), ["b"])
        assert "a" not in model.ordered_attributes(projected)

    def test_joins_destroy_order(self, benchmark_workload):
        clustered = benchmark_workload.dividend.clustered(["a"])
        catalog = catalog_for(clustered, benchmark_workload.divisor)
        model = PhysicalCostModel(StatisticsCatalog.from_database(catalog))
        joined = B.natural_join(catalog.ref("r1"), catalog.ref("r2"))
        assert model.ordered_attributes(joined) == frozenset()

    def test_streaming_merge_is_correct_even_when_statistics_lie(self, benchmark_workload):
        """The clustered fast path degrades, never corrupts: feeding an
        unclustered dividend to the streaming mode yields the same quotient."""
        from repro.physical import RelationScan

        reference = HashDivision(
            RelationScan(benchmark_workload.dividend), RelationScan(benchmark_workload.divisor)
        ).execute()
        streamed = MergeSortDivision(
            RelationScan(benchmark_workload.dividend),
            RelationScan(benchmark_workload.divisor),
            assume_clustered=True,
        ).execute()
        assert streamed == reference


class TestCompositeClustering:
    def test_multi_attribute_quotient_gets_streaming_merge(self):
        """clustered(["a1", "a2"]) leaves a2 globally unsorted, but the
        lexicographic-prefix statistics still enable the streaming merge
        for the composite (a1, a2) quotient."""
        dividend = Relation(
            ["a1", "a2", "b"],
            [(g1, g2, v) for g1 in range(12) for g2 in range(12) for v in range(4)],
        ).clustered(["a1", "a2"])
        divisor = Relation(["b"], [(v,) for v in range(4)])
        catalog = catalog_for(dividend, divisor)
        model = PhysicalCostModel(StatisticsCatalog.from_database(catalog))
        stats = StatisticsCatalog.from_database(catalog).table("r1")
        assert stats.lexicographic_prefix[:2] == ("a1", "a2")
        assert not stats.is_sorted("a2")  # per-attribute flags cannot see this

        planner = PhysicalPlanner(catalog)
        plan = planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        assert isinstance(plan, MergeSortDivision) and plan.assume_clustered
        assert model.ordered_attributes(catalog.ref("r1")) < {"a1", "a2"}
        # and the streamed result matches the forced hash division
        forced = PhysicalPlanner(
            catalog, PlannerOptions(small_divide_algorithm="hash")
        ).plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        assert plan.execute() == forced.execute()

    def test_prefix_survives_rename_but_not_join(self):
        dividend = Relation(
            ["a1", "a2", "b"],
            [(g1, g2, v) for g1 in range(5) for g2 in range(5) for v in range(3)],
        ).clustered(["a1", "a2"])
        catalog = catalog_for(dividend, Relation(["b"], [(0,), (1,)]))
        model = PhysicalCostModel(StatisticsCatalog.from_database(catalog))
        renamed = B.rename(catalog.ref("r1"), {"a1": "x"})
        assert model.clustered_prefix(renamed)[:2] == ("x", "a2")
        joined = B.natural_join(catalog.ref("r1"), catalog.ref("r2"))
        assert model.clustered_prefix(joined) == ()


class TestPropertiesConsistency:
    def test_order_flags_match_the_logical_order_propagation(self):
        """The declarative ``preserves_order`` flags and the logical-side
        dispatch in ``ordered_attributes`` are two encodings of the same
        knowledge; this pins them together so they cannot drift silently.

        ``ordered_attributes`` propagates order through Select, Rename and
        Project — exactly the logical operators the planner maps to the
        physical classes that declare ``preserves_order=True``."""
        from repro.physical import (
            DuplicateElimination,
            Filter,
            HashAggregate,
            ProjectOp,
            ProductOp,
            RelationScan,
            RenameOp,
            TableScan,
            UnionOp,
        )

        order_preserving = [Filter, ProjectOp, RenameOp, RelationScan, TableScan,
                            DuplicateElimination]
        for operator in order_preserving:
            assert operator.properties.preserves_order, operator.__name__
        order_destroying = [HashJoin, NestedLoopsNaturalJoin, HashAggregate, ProductOp,
                            UnionOp, HashDivision, MergeSortDivision]
        for operator in order_destroying:
            assert not operator.properties.preserves_order, operator.__name__


class TestStandalonePlannerStatistics:
    def test_catalog_mutation_is_seen_by_the_next_plan(self, benchmark_workload):
        """A standalone planner (no injected statistics) re-snapshots the
        database per plan() call, so catalog changes flip later choices."""
        catalog = catalog_for(
            Relation(["a", "b"], [(1, 1), (1, 2), (2, 1), (3, 2)]),
            Relation(["b"], [(1,), (2,)]),
        )
        planner = PhysicalPlanner(catalog)
        tiny_plan = planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        assert isinstance(tiny_plan, NestedLoopsDivision)
        catalog.replace_table("r1", benchmark_workload.dividend)
        catalog.replace_table("r2", benchmark_workload.divisor)
        big_plan = planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))
        assert isinstance(big_plan, HashDivision)
