"""Cost-based parallel planning: when partitioning pays and when it does not.

Pins the acceptance rules of the parallel subsystem:

* the committed (small) benchmark scenarios stay **serial** even when the
  session allows ``workers=4`` — the per-worker startup charge prices
  parallelism out below an input-cardinality threshold;
* large dividends flip the same query to a :class:`PartitionedDivision`;
* heavily skewed partition keys (top-key frequency from ``analyze()``)
  discount the effective DOP and keep the plan serial.
"""

import pytest

from repro.algebra import builders as B
from repro.algebra.catalog import Catalog
from repro.algebra.expressions import AggregateSpec
from repro.errors import PlanningError
from repro.optimizer import PhysicalPlanner, PlannerOptions
from repro.optimizer.physical_cost import (
    PARALLEL_WORKER_STARTUP,
    PhysicalCostModel,
    decision_for,
)
from repro.optimizer.statistics import StatisticsCatalog, TableStatistics
from repro.physical import (
    HashAggregate,
    HashDivision,
    HashJoin,
    PartitionedAggregate,
    PartitionedDivision,
    PartitionedHashJoin,
)
from repro.relation import Relation
from repro.workloads import make_division_workload


def catalog_for(dividend, divisor) -> Catalog:
    catalog = Catalog()
    catalog.add_table("r1", dividend)
    catalog.add_table("r2", divisor)
    return catalog


def large_statistics(cardinality=100_000, top_frequency=None) -> StatisticsCatalog:
    """Fabricated statistics of a big dividend (plans stay cheap to build)."""
    top = {"a": top_frequency} if top_frequency else {}
    return StatisticsCatalog(
        {
            "r1": TableStatistics(
                cardinality=cardinality,
                distinct_values={"a": max(1, cardinality // 12), "b": 60},
                top_frequencies=top,
            ),
            "r2": TableStatistics(cardinality=10, distinct_values={"b": 10}),
        }
    )


@pytest.fixture(scope="module")
def small_catalog():
    workload = make_division_workload(
        num_groups=400, divisor_size=8, containing_fraction=0.25, extra_values_per_group=6, seed=1
    )
    return catalog_for(workload.dividend, workload.divisor)


class TestDivisionParallelChoice:
    def test_committed_small_scenarios_stay_serial(self, small_catalog):
        """Pinned: the committed benchmark scenarios are below the
        parallelism threshold, so ``workers=4`` must not change their plans."""
        planner = PhysicalPlanner(small_catalog, PlannerOptions(workers=4))
        plan = planner.plan(B.divide(small_catalog.ref("r1"), small_catalog.ref("r2")))
        assert isinstance(plan, HashDivision)
        decision = planner.decisions[0]
        assert decision.chosen.workers == 1
        # the parallel variants were considered and lost
        assert any(alt.workers > 1 for alt in decision.alternatives)

    def test_large_dividend_chooses_partitioned_division(self, small_catalog):
        planner = PhysicalPlanner(
            small_catalog, PlannerOptions(workers=4), statistics=large_statistics()
        )
        plan = planner.plan(B.divide(small_catalog.ref("r1"), small_catalog.ref("r2")))
        assert isinstance(plan, PartitionedDivision)
        decision = planner.decisions[0]
        assert decision.chosen.workers == 4
        assert decision.chosen.partitions == 4
        assert "dop=4" in decision.describe()

    def test_partitions_option_overrides_partition_count(self, small_catalog):
        planner = PhysicalPlanner(
            small_catalog,
            PlannerOptions(workers=4, partitions=16),
            statistics=large_statistics(),
        )
        plan = planner.plan(B.divide(small_catalog.ref("r1"), small_catalog.ref("r2")))
        assert isinstance(plan, PartitionedDivision)
        assert plan.partitions == 16
        assert plan.workers == 4

    def test_skewed_quotient_key_stays_serial(self, small_catalog):
        """90% of rows under one quotient key caps the speedup at ~1.1×,
        which never amortizes the worker startup — parallelism is priced out."""
        skewed = large_statistics(top_frequency=90_000)
        planner = PhysicalPlanner(small_catalog, PlannerOptions(workers=4), statistics=skewed)
        plan = planner.plan(B.divide(small_catalog.ref("r1"), small_catalog.ref("r2")))
        assert isinstance(plan, HashDivision)
        assert planner.decisions[0].chosen.workers == 1

    def test_skew_discount_survives_select_project_and_rename(self, small_catalog):
        """The skew lookup traverses the streaming wrappers a base table
        sits under, mapping renamed key attributes back to the base names."""
        import repro.algebra.predicates as P

        skewed = large_statistics(top_frequency=90_000)
        dividend = small_catalog.ref("r1")
        wrapped = B.project(
            B.rename(
                B.select(dividend, P.not_equals(P.attr("b"), -1)), {"a": "quotient_key"}
            ),
            ["quotient_key", "b"],
        )
        divisor = small_catalog.ref("r2")
        planner = PhysicalPlanner(small_catalog, PlannerOptions(workers=4), statistics=skewed)
        planner.plan(B.divide(wrapped, divisor))
        assert planner.decisions[0].chosen.workers == 1
        # the same shape without skew parallelizes — the wrappers are not
        # what is keeping the plan serial
        planner = PhysicalPlanner(
            small_catalog, PlannerOptions(workers=4), statistics=large_statistics()
        )
        planner.plan(B.divide(wrapped, divisor))
        assert planner.decisions[0].chosen.workers == 4

    def test_forced_algorithm_still_parallelizes_when_cheaper(self, small_catalog):
        planner = PhysicalPlanner(
            small_catalog,
            PlannerOptions(workers=4, small_divide_algorithm="merge_count"),
            statistics=large_statistics(),
        )
        plan = planner.plan(B.divide(small_catalog.ref("r1"), small_catalog.ref("r2")))
        assert isinstance(plan, PartitionedDivision)
        assert plan.algorithm == "merge_count"
        decision = planner.decisions[0]
        assert decision.forced and decision.chosen.name == "merge_count"

    def test_serial_default_prices_no_parallel_variants(self, small_catalog):
        planner = PhysicalPlanner(small_catalog)
        planner.plan(B.divide(small_catalog.ref("r1"), small_catalog.ref("r2")))
        assert all(alt.workers == 1 for alt in planner.decisions[0].alternatives)

    def test_invalid_workers_rejected_at_prepare_time(self, small_catalog):
        planner = PhysicalPlanner(small_catalog, PlannerOptions(workers=0))
        with pytest.raises(PlanningError, match="workers"):
            planner.plan(B.divide(small_catalog.ref("r1"), small_catalog.ref("r2")))
        planner = PhysicalPlanner(small_catalog, PlannerOptions(workers=2, partitions=0))
        with pytest.raises(PlanningError, match="partitions"):
            planner.plan(B.divide(small_catalog.ref("r1"), small_catalog.ref("r2")))


class TestJoinAndAggregateParallelChoice:
    def _join_catalog(self):
        catalog = Catalog()
        catalog.add_table("l", Relation(["a", "b"], [(i, i % 7) for i in range(24)]))
        catalog.add_table("r", Relation(["b", "c"], [(i % 7, i) for i in range(24)]))
        return catalog

    def _join_statistics(self, cardinality=120_000):
        return StatisticsCatalog(
            {
                "l": TableStatistics(
                    cardinality=cardinality, distinct_values={"a": cardinality, "b": 5000}
                ),
                "r": TableStatistics(
                    cardinality=cardinality, distinct_values={"b": 5000, "c": cardinality}
                ),
            }
        )

    def test_large_join_is_partitioned_small_join_is_not(self):
        catalog = self._join_catalog()
        join = B.natural_join(catalog.ref("l"), catalog.ref("r"))
        small = PhysicalPlanner(catalog, PlannerOptions(workers=4))
        assert isinstance(small.plan(join), HashJoin)
        large = PhysicalPlanner(
            catalog, PlannerOptions(workers=4), statistics=self._join_statistics()
        )
        plan = large.plan(join)
        assert isinstance(plan, PartitionedHashJoin)
        assert large.decisions[0].chosen.workers == 4

    def test_cross_product_join_never_parallelizes(self):
        catalog = Catalog()
        catalog.add_table("l", Relation(["a"], [(1,)]))
        catalog.add_table("r", Relation(["c"], [(2,)]))
        statistics = StatisticsCatalog(
            {
                "l": TableStatistics(cardinality=100_000, distinct_values={"a": 100_000}),
                "r": TableStatistics(cardinality=100_000, distinct_values={"c": 100_000}),
            }
        )
        planner = PhysicalPlanner(catalog, PlannerOptions(workers=4), statistics=statistics)
        planner.plan(B.natural_join(catalog.ref("l"), catalog.ref("r")))
        assert all(alt.workers == 1 for alt in planner.decisions[0].alternatives)

    def test_large_group_by_is_partitioned(self):
        catalog = Catalog()
        catalog.add_table("t", Relation(["g", "v"], [(i % 6, i) for i in range(30)]))
        statistics = StatisticsCatalog(
            {
                "t": TableStatistics(
                    cardinality=200_000, distinct_values={"g": 10_000, "v": 200_000}
                )
            }
        )
        grouped = B.group_by(
            catalog.ref("t"), ["g"], [AggregateSpec("sum", "v", "total")]
        )
        planner = PhysicalPlanner(catalog, PlannerOptions(workers=4), statistics=statistics)
        plan = planner.plan(grouped)
        assert isinstance(plan, PartitionedAggregate)
        assert planner.decisions[0].kind == "aggregate"
        serial = PhysicalPlanner(catalog, PlannerOptions(workers=4))
        serial_plan = serial.plan(grouped)
        assert isinstance(serial_plan, HashAggregate)
        # the decision is recorded (and attached) even when serial wins, so
        # explain output has the same rationale shape either way
        assert serial.decisions[0].kind == "aggregate"
        assert serial.decisions[0].chosen.workers == 1
        assert serial_plan.decision is serial.decisions[0]

    def test_grand_total_group_by_stays_serial(self):
        catalog = Catalog()
        catalog.add_table("t", Relation(["g", "v"], [(i % 6, i) for i in range(30)]))
        statistics = StatisticsCatalog(
            {"t": TableStatistics(cardinality=200_000, distinct_values={"v": 200_000})}
        )
        grouped = B.group_by(catalog.ref("t"), [], [AggregateSpec("count", None, "n")])
        planner = PhysicalPlanner(catalog, PlannerOptions(workers=4), statistics=statistics)
        assert isinstance(planner.plan(grouped), HashAggregate)


class TestCostModelParallelTerm:
    def test_effective_dop_respects_workers_partitions_and_skew(self):
        model = PhysicalCostModel(StatisticsCatalog(), workers=4, partitions=8)
        assert model.effective_dop(skew=0.0) == 4.0
        assert model.effective_dop(skew=0.5) == 2.0
        assert model.effective_dop(skew=1.0) == 1.0
        narrow = PhysicalCostModel(StatisticsCatalog(), workers=8, partitions=2)
        assert narrow.effective_dop(skew=0.0) == 2.0

    def test_parallel_price_includes_startup_and_exchange(self, small_catalog):
        statistics = large_statistics()
        model = PhysicalCostModel(statistics, workers=4)
        expression = B.divide(small_catalog.ref("r1"), small_catalog.ref("r2"))
        alternatives = model.small_divide_alternatives(expression)
        serial = {alt.name: alt for alt in alternatives if alt.workers == 1}
        parallel = {alt.name: alt for alt in alternatives if alt.workers > 1}
        assert set(parallel) == set(serial)
        for name, alt in parallel.items():
            assert alt.cost >= 4 * PARALLEL_WORKER_STARTUP
            assert alt.cost < serial[name].cost  # big input: parallel wins per algorithm

    def test_decision_for_forced_picks_cheapest_variant_of_the_name(self, small_catalog):
        model = PhysicalCostModel(large_statistics(), workers=4)
        expression = B.divide(small_catalog.ref("r1"), small_catalog.ref("r2"))
        decision = decision_for("small divide", model.small_divide_alternatives(expression), "hash")
        assert decision.forced
        assert decision.chosen.name == "hash"
        assert decision.chosen.workers == 4  # the parallel variant is cheaper here


class TestSkewStatistics:
    def test_from_relation_records_top_frequencies(self):
        relation = Relation(["a", "b"], [(1, 1), (1, 2), (1, 3), (2, 1)])
        statistics = TableStatistics.from_relation(relation)
        assert statistics.top_frequency("a") == 3
        assert statistics.top_frequency("b") == 2
        assert statistics.partition_skew("a") == pytest.approx(0.75)
        assert statistics.partition_skew("missing") == 0.0

    def test_empty_relation_has_zero_skew(self):
        statistics = TableStatistics.from_relation(Relation(["a"], []))
        assert statistics.partition_skew("a") == 0.0
