"""Regression tests: PlanningError messages name the failing option.

An unknown value in :class:`PlannerOptions` used to report only the
operator kind ("unknown small divide algorithm ..."); with three algorithm
overrides, two pool sizes and a compile mode on the same dataclass, the
message must say *which attribute* to fix.  All three kinds of validation
are covered: algorithm registries, the compile mode, and the positive
worker/partition counts.
"""

import pytest

from repro.algebra import builders as B
from repro.algebra.catalog import Catalog
from repro.errors import PlanningError
from repro.optimizer import PhysicalPlanner, PlannerOptions
from repro.relation import Relation


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.add_table("r1", Relation(["a", "b"], [(1, 1)]))
    catalog.add_table("r2", Relation(["b"], [(1,)]))
    return catalog


def plan_with(catalog, **options):
    planner = PhysicalPlanner(catalog, PlannerOptions(**options))
    planner.plan(B.divide(catalog.ref("r1"), catalog.ref("r2")))


class TestAlgorithmOptionNaming:
    def test_small_divide_names_its_attribute(self, catalog):
        with pytest.raises(PlanningError) as excinfo:
            plan_with(catalog, small_divide_algorithm="quantum")
        message = str(excinfo.value)
        assert "PlannerOptions.small_divide_algorithm" in message
        assert "quantum" in message and "small divide" in message

    def test_great_divide_names_its_attribute(self, catalog):
        with pytest.raises(PlanningError) as excinfo:
            plan_with(catalog, great_divide_algorithm="quantum")
        assert "PlannerOptions.great_divide_algorithm" in str(excinfo.value)

    def test_join_names_its_attribute(self, catalog):
        with pytest.raises(PlanningError) as excinfo:
            plan_with(catalog, join_algorithm="sort_merge")
        assert "PlannerOptions.join_algorithm" in str(excinfo.value)

    def test_choices_and_escape_hatch_are_listed(self, catalog):
        with pytest.raises(PlanningError) as excinfo:
            plan_with(catalog, small_divide_algorithm="quantum")
        message = str(excinfo.value)
        assert "hash" in message and "merge_sort" in message
        assert "None for cost-based selection" in message


class TestCompileOptionNaming:
    def test_unknown_compile_mode_names_the_attribute(self, catalog):
        with pytest.raises(PlanningError) as excinfo:
            plan_with(catalog, compile="quantum")
        message = str(excinfo.value)
        assert "PlannerOptions.compile" in message
        assert "unknown compile mode 'quantum'" in message
        assert "'auto'" in message and "'off'" in message and "'on'" in message

    def test_valid_modes_do_not_raise(self, catalog):
        for mode in (None, True, False, "auto", "on", "off"):
            plan_with(catalog, compile=mode)


class TestPoolSizeOptionNaming:
    def test_nonpositive_workers_names_the_attribute(self, catalog):
        with pytest.raises(PlanningError) as excinfo:
            plan_with(catalog, workers=0)
        assert "PlannerOptions.workers" in str(excinfo.value)
        assert "got 0" in str(excinfo.value)

    def test_nonpositive_partitions_names_the_attribute(self, catalog):
        with pytest.raises(PlanningError) as excinfo:
            plan_with(catalog, partitions=-2)
        assert "PlannerOptions.partitions" in str(excinfo.value)
        assert "got -2" in str(excinfo.value)
