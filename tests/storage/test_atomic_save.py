"""Crash-safe saves: an interrupted save never damages the committed store.

Each test arms a fault plan that kills the save at a different stage
(table-file write, manifest write) and then proves the invariant the
manifest-boundary commit guarantees: the previously committed store loads
byte-identically, and the failed save leaves no debris behind.
"""

import pytest

import repro
from repro.errors import InjectedFaultError, StorageError
from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan, reset_counters
from repro.relation import Relation
from repro.storage.store import MANIFEST_NAME, load_store, save_database


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    reset_counters()
    yield
    clear_plan()
    reset_counters()


def catalog_v1():
    from repro.algebra.catalog import Catalog

    catalog = Catalog()
    catalog.add_table("r1", Relation(("a", "b"), [(1, 1), (1, 2), (2, 1)]))
    catalog.add_table("r2", Relation(("b",), [(1,), (2,)]))
    return catalog


def catalog_v2():
    from repro.algebra.catalog import Catalog

    catalog = Catalog()
    catalog.add_table("r1", Relation(("a", "b"), [(9, 9)]))
    catalog.add_table("r2", Relation(("b",), [(9,)]))
    return catalog


def stored_tuples(path):
    catalog, _versions, _views = load_store(path)
    return {name: sorted(catalog[name].aligned_tuples()) for name in sorted(catalog)}


def store_files(path):
    return sorted(p.name for p in path.iterdir())


@pytest.mark.parametrize("point", ["storage.table_write", "storage.manifest_write"])
def test_failed_resave_leaves_previous_store_intact(tmp_path, point):
    save_database(tmp_path, catalog_v1())
    before_tuples = stored_tuples(tmp_path)
    before_files = store_files(tmp_path)

    install_plan(FaultPlan((FaultSpec(point=point, limit=1),)))
    with pytest.raises(InjectedFaultError):
        save_database(tmp_path, catalog_v2())
    clear_plan()

    # The committed store is untouched: same files, same data.
    assert store_files(tmp_path) == before_files
    assert stored_tuples(tmp_path) == before_tuples


@pytest.mark.parametrize("point", ["storage.table_write", "storage.manifest_write"])
def test_failed_first_save_leaves_no_store(tmp_path, point):
    install_plan(FaultPlan((FaultSpec(point=point, limit=1),)))
    with pytest.raises(InjectedFaultError):
        save_database(tmp_path, catalog_v1())
    clear_plan()

    assert store_files(tmp_path) == []  # no debris, no half-store
    with pytest.raises(StorageError, match=MANIFEST_NAME):
        load_store(tmp_path)


def test_retry_after_failed_save_succeeds(tmp_path):
    save_database(tmp_path, catalog_v1())
    install_plan(FaultPlan((FaultSpec(point="storage.manifest_write", limit=1),)))
    with pytest.raises(InjectedFaultError):
        save_database(tmp_path, catalog_v2())
    clear_plan()

    save_database(tmp_path, catalog_v2())
    assert stored_tuples(tmp_path)["r1"] == [(9, 9)]
    # Generational filenames: the superseded v1 files were swept.
    manifest_tables = set()
    catalog, _versions, _views = load_store(tmp_path)
    for name in catalog:
        manifest_tables.add(name)
    block_files = [f for f in store_files(tmp_path) if f.endswith(".rpb")]
    assert len(block_files) == len(manifest_tables)


def test_orphan_sweep_removes_unreferenced_files(tmp_path):
    save_database(tmp_path, catalog_v1())
    orphan = tmp_path / "9999-stray.gdead.rpb"
    orphan.write_bytes(b"leftover from a crashed writer")
    staged = tmp_path / f"{MANIFEST_NAME}.gdead.tmp"
    staged.write_text("{}")

    save_database(tmp_path, catalog_v1())
    assert not orphan.exists()
    assert not staged.exists()


def test_session_save_is_atomic_end_to_end(tmp_path):
    """The same guarantee through the public Database.save API."""
    db = repro.connect({"supplies": Relation(("s", "p"), [(1, 1), (1, 2), (2, 1)])})
    db.save(tmp_path)
    before = stored_tuples(tmp_path)

    db2 = repro.connect({"supplies": Relation(("s", "p"), [(7, 7)])})
    install_plan(FaultPlan((FaultSpec(point="storage.table_write", limit=1),)))
    with pytest.raises(InjectedFaultError):
        db2.save(tmp_path)
    clear_plan()

    reopened = repro.connect(tmp_path)
    assert reopened.table("supplies").run().relation == Relation(
        ("s", "p"), [(1, 1), (1, 2), (2, 1)]
    )
    assert stored_tuples(tmp_path) == before
