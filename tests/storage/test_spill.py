"""Spill files: writer/handle units, pickling, and exchange integration."""

import pickle

import pytest

from repro.errors import StorageError
from repro.physical import RelationScan
from repro.physical.parallel.exchange import HashPartitionExchange
from repro.relation.relation import Relation
from repro.storage.spill import SPILL_BLOCK_TUPLES, SpilledPartition, SpillWriter

ATTRIBUTES = ("a", "b")


def rows(count: int):
    return [(i, f"v{i % 5}") for i in range(count)]


class TestSpillWriter:
    def test_roundtrip(self, tmp_path):
        writer = SpillWriter(tmp_path, "p0", ATTRIBUTES)
        tuples = rows(100)
        writer.spill(tuples)
        handle = writer.finish()
        assert handle.read_all() == tuples
        assert len(handle) == 100
        assert bool(handle)

    def test_spill_slices_into_blocks(self, tmp_path):
        writer = SpillWriter(tmp_path, "p0", ATTRIBUTES)
        writer.spill(rows(SPILL_BLOCK_TUPLES * 2 + 1))
        assert writer.spilled_blocks == 3
        handle = writer.finish()
        assert [len(block) for block in handle.iter_blocks()] == [
            SPILL_BLOCK_TUPLES,
            SPILL_BLOCK_TUPLES,
            1,
        ]

    def test_appends_accumulate(self, tmp_path):
        writer = SpillWriter(tmp_path, "p0", ATTRIBUTES)
        writer.spill(rows(10))
        writer.spill(rows(5))
        handle = writer.finish()
        assert handle.read_all() == rows(10) + rows(5)
        assert writer.tuple_count == 15

    def test_empty_append_is_a_noop(self, tmp_path):
        writer = SpillWriter(tmp_path, "p0", ATTRIBUTES)
        writer.append([])
        handle = writer.finish()
        assert not handle
        assert handle.read_all() == []

    def test_unwritable_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            SpillWriter(tmp_path / "absent", "p0", ATTRIBUTES)


class TestSpilledPartition:
    def test_pickle_roundtrip(self, tmp_path):
        writer = SpillWriter(tmp_path, "p3", ATTRIBUTES)
        writer.spill(rows(50))
        handle = writer.finish()
        shipped = pickle.loads(pickle.dumps(handle))
        assert shipped.read_all() == handle.read_all()
        assert len(shipped) == 50

    def test_missing_file_raises_on_read(self, tmp_path):
        writer = SpillWriter(tmp_path, "p0", ATTRIBUTES)
        writer.spill(rows(5))
        handle = writer.finish()
        handle.path = str(tmp_path / "gone.spill")
        with pytest.raises(StorageError):
            handle.read_all()


class TestExchangeSpilling:
    def partition(self, count: int, budget, tmp_path):
        relation = Relation.from_aligned(ATTRIBUTES, rows(count))
        exchange = HashPartitionExchange(
            ["a"],
            partitions=4,
            memory_budget_mb=budget,
            spill_directory=str(tmp_path) if budget is not None else None,
        )
        buckets = exchange.partition(RelationScan(relation))
        return relation, exchange, buckets

    def test_budget_forces_spill_without_changing_buckets(self, tmp_path):
        relation, exchange, spilled = self.partition(5000, 1e-6, tmp_path)
        _relation, _exchange, in_memory = self.partition(5000, None, tmp_path)
        assert exchange.spilled_tuples > 0
        assert exchange.spilled_blocks > 0
        assert exchange.spilled_partitions > 0
        assert exchange.budget_tuples >= 1
        # The flush runs after each chunk is appended, so the high-water
        # mark may overshoot the budget by at most one input chunk.
        assert exchange.peak_buffered_tuples <= exchange.budget_tuples + 1024
        # Spilling never changes a bucket's content or order.
        gathered = [
            bucket.read_all() if isinstance(bucket, SpilledPartition) else bucket
            for bucket in spilled
        ]
        assert gathered == in_memory
        assert sum(len(bucket) for bucket in gathered) == len(relation)

    def test_no_budget_means_no_spill(self, tmp_path):
        _relation, exchange, buckets = self.partition(5000, None, tmp_path)
        assert exchange.spilled_tuples == 0
        assert all(isinstance(bucket, list) for bucket in buckets)

    def test_budget_without_directory_is_rejected(self):
        from repro.errors import ExecutionError

        relation = Relation.from_aligned(ATTRIBUTES, rows(10))
        exchange = HashPartitionExchange(["a"], partitions=2, memory_budget_mb=1.0)
        with pytest.raises(ExecutionError):
            exchange.partition(RelationScan(relation))

    def test_non_positive_budget_is_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            HashPartitionExchange(["a"], partitions=2, memory_budget_mb=0)
