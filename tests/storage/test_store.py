"""Directory stores: save/load roundtrip, lazy relations, API wiring."""

import json

import pytest

import repro
from repro.algebra.catalog import Catalog
from repro.errors import StorageError
from repro.optimizer.statistics import TableStatistics
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.storage.store import (
    MANIFEST_NAME,
    StoredRelation,
    load_catalog,
    save_database,
    statistics_from_payload,
    statistics_payload,
)


def make_catalog() -> Catalog:
    parts = Relation.from_aligned(
        Schema.interned(("p_no", "color")),
        [(i, "red" if i % 2 else "blue") for i in range(200)],
    ).clustered(["p_no"])
    supply = Relation.from_aligned(
        Schema.interned(("s_no", "p_no")),
        [(s, p) for s in range(10) for p in range(0, 200, 10)],
    )
    catalog = Catalog()
    catalog.add_table("parts", parts, key=["p_no"])
    catalog.add_table("supply", supply, key=["s_no", "p_no"])
    catalog.declare_foreign_key("supply", ["p_no"], "parts", ["p_no"])
    return catalog


@pytest.fixture
def store_path(tmp_path):
    return save_database(tmp_path / "db", make_catalog(), block_size=64)


class TestRoundtrip:
    def test_tables_roundtrip(self, store_path):
        original = make_catalog()
        reopened = load_catalog(store_path)
        assert set(reopened) == set(original)
        for name in original:
            assert reopened[name] == original[name]

    def test_keys_and_foreign_keys_roundtrip(self, store_path):
        original = make_catalog()
        reopened = load_catalog(store_path)
        assert reopened.declared_keys == original.declared_keys
        assert [
            (fk.table, fk.attributes, fk.ref_table, fk.ref_attributes)
            for fk in reopened.foreign_keys
        ] == [
            (fk.table, fk.attributes, fk.ref_table, fk.ref_attributes)
            for fk in original.foreign_keys
        ]

    def test_scan_order_is_the_save_order(self, store_path):
        # ``parts`` was clustered on p_no before saving; the stored block
        # order must replay it so the zone maps stay disjoint.
        reopened = load_catalog(store_path)
        tuples = reopened["parts"].aligned_tuples()
        assert [values[0] for values in tuples] == list(range(200))


class TestLaziness:
    def test_open_is_metadata_only(self, store_path):
        relation = load_catalog(store_path)["parts"]
        assert isinstance(relation, StoredRelation)
        assert not relation.is_loaded
        # Schema, length, truthiness, repr and statistics are header reads.
        assert relation.schema.names == ("p_no", "color")
        assert len(relation) == 200
        assert bool(relation)
        assert "on disk" in repr(relation)
        relation.stored_statistics()
        relation.sample_tuples(5)
        assert not relation.is_loaded

    def test_touching_rows_materializes(self, store_path):
        relation = load_catalog(store_path)["parts"]
        assert (0, "blue") in [tuple(values) for values in relation.aligned_tuples()]
        assert relation.is_loaded

    def test_sample_tuples_reads_leading_blocks(self, store_path):
        relation = load_catalog(store_path)["parts"]
        assert relation.sample_tuples(3) == [(0, "blue"), (1, "red"), (2, "blue")]


class TestStoredStatistics:
    def test_matches_a_full_scan(self, store_path):
        relation = load_catalog(store_path)["parts"]
        stored = relation.stored_statistics()
        scanned = TableStatistics.from_relation(
            Relation.from_aligned(relation.schema, relation.aligned_tuples()).clustered(
                ["p_no"]
            )
        )
        assert stored.cardinality == scanned.cardinality
        assert dict(stored.distinct_values) == dict(scanned.distinct_values)
        assert dict(stored.minima) == dict(scanned.minima)
        assert dict(stored.maxima) == dict(scanned.maxima)
        assert stored.sorted_attributes == scanned.sorted_attributes

    def test_from_relation_dispatches_to_the_header(self, store_path):
        relation = load_catalog(store_path)["parts"]
        statistics = TableStatistics.from_relation(relation)
        assert statistics.cardinality == 200
        assert not relation.is_loaded

    def test_payload_roundtrip(self):
        statistics = TableStatistics.from_relation(
            Relation(["a", "b"], [(1, "x"), (2, "y"), (3, "x")])
        )
        rebuilt = statistics_from_payload(statistics_payload(statistics))
        assert rebuilt.cardinality == statistics.cardinality
        assert dict(rebuilt.distinct_values) == dict(statistics.distinct_values)
        assert rebuilt.sorted_attributes == statistics.sorted_attributes

    def test_malformed_payload_raises(self):
        with pytest.raises(StorageError):
            statistics_from_payload({"cardinality": 3})


class TestLoadErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_catalog(tmp_path)

    def test_unreadable_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StorageError):
            load_catalog(tmp_path)

    def test_unsupported_manifest_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": 99, "tables": {}}))
        with pytest.raises(StorageError):
            load_catalog(tmp_path)


class TestDatabaseApi:
    def test_save_and_connect_path(self, tmp_path, store_path):
        db = repro.connect(make_catalog())
        saved = db.save(tmp_path / "saved")
        reopened = repro.connect(saved)
        assert isinstance(reopened.catalog["parts"], StoredRelation)
        result = reopened.sql("SELECT p_no FROM parts WHERE p_no < 5").run()
        assert sorted(values[0] for values in result.relation.aligned_tuples()) == [
            0,
            1,
            2,
            3,
            4,
        ]

    def test_analyze_is_metadata_only(self, store_path):
        db = repro.connect(str(store_path))
        report = db.analyze()
        assert report.tables["parts"].cardinality == 200
        assert not db.catalog["parts"].is_loaded

    def test_explain_analyze_reports_skips(self, store_path):
        db = repro.connect(str(store_path))
        text = db.sql("SELECT p_no FROM parts WHERE p_no < 10").explain(analyze=True)
        assert "stored" in text.lower()
        assert "skipped=" in text
        skipped = int(text.split("skipped=", 1)[1].split()[0].rstrip(","))
        assert skipped > 0
        # Pushdown is advisory: the query still runs through its Filter.
        assert not db.catalog["parts"].is_loaded

    def test_memory_budget_must_be_positive(self):
        with pytest.raises(Exception):
            repro.connect(make_catalog(), memory_budget_mb=0)
