"""Property test: arbitrary on-disk corruption is detected, never served.

Hypothesis picks a file of a saved store, a corruption mode (bit flip,
truncation, zero-fill) and a position; the mutated store must either load
and scan to exactly the pristine tuples (the mutation hit slack bytes) or
raise a typed :class:`~repro.errors.StorageError`.  Any other exception —
or silently different data — is a checksum hole.
"""

import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.relation import Relation
from repro.storage.store import MANIFEST_NAME, load_store, save_database


def _catalog():
    from repro.algebra.catalog import Catalog

    catalog = Catalog()
    catalog.add_table(
        "facts",
        Relation(("a", "b", "s"), [(i, i % 7, f"value-{i}") for i in range(200)]),
    )
    catalog.add_table("dims", Relation(("b",), [(i,) for i in range(7)]))
    return catalog


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    path = tmp_path_factory.mktemp("pristine-store")
    save_database(path, _catalog())
    catalog, _versions, _views = load_store(path)
    tuples = {name: sorted(catalog[name].aligned_tuples()) for name in sorted(catalog)}
    return path, tuples


def _read_all(path):
    catalog, _versions, _views = load_store(path)
    return {name: sorted(catalog[name].aligned_tuples()) for name in sorted(catalog)}


def _corrupt(data: bytes, mode: str, position: float, length: int) -> bytes:
    offset = min(int(position * len(data)), len(data) - 1)
    if mode == "truncate":
        return data[:offset]
    mutated = bytearray(data)
    end = min(offset + max(length, 1), len(mutated))
    if mode == "bitflip":
        mutated[offset] ^= 0x40
    else:  # zero-fill
        for i in range(offset, end):
            mutated[i] = 0
    return bytes(mutated)


@settings(max_examples=40, deadline=None)
@given(
    file_index=st.integers(min_value=0, max_value=2),
    mode=st.sampled_from(["bitflip", "truncate", "zero"]),
    position=st.floats(min_value=0.0, max_value=0.999),
    length=st.integers(min_value=1, max_value=64),
)
def test_corruption_is_detected_or_harmless(pristine, tmp_path_factory, file_index, mode, position, length):
    source, expected = pristine
    target = tmp_path_factory.mktemp("mutated")
    shutil.rmtree(target)
    shutil.copytree(source, target)

    files = sorted(target.iterdir())
    victim = files[file_index % len(files)]
    data = victim.read_bytes()
    mutated = _corrupt(data, mode, position, length)
    if mutated == data:
        return  # zero-filling zeros (or an empty truncation diff): no-op
    victim.write_bytes(mutated)

    try:
        observed = _read_all(target)
    except StorageError:
        return  # detected with the documented typed error
    # The mutation survived loading: it must have been byte-irrelevant.
    assert observed == expected


class TestTargetedCorruption:
    """Deterministic spot checks the property test subsumes statistically."""

    def _copy(self, source, tmp_path):
        target = tmp_path / "store"
        shutil.copytree(source, target)
        return target

    def test_bitflip_in_block_payload_raises_corruption(self, pristine, tmp_path):
        source, _expected = pristine
        target = self._copy(source, tmp_path)
        victim = next(p for p in sorted(target.iterdir()) if p.name.endswith(".rpb"))
        data = bytearray(victim.read_bytes())
        data[-10] ^= 0x01  # inside the last block's payload
        victim.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            _read_all(target)

    def test_manifest_edit_raises_digest_mismatch(self, pristine, tmp_path):
        source, _expected = pristine
        target = self._copy(source, tmp_path)
        manifest = target / MANIFEST_NAME
        manifest.write_text(manifest.read_text().replace("facts", "fakes"))
        with pytest.raises(StorageError):
            load_store(target)

    def test_truncated_manifest_raises_typed_error(self, pristine, tmp_path):
        source, _expected = pristine
        target = self._copy(source, tmp_path)
        manifest = target / MANIFEST_NAME
        manifest.write_bytes(manifest.read_bytes()[: len(manifest.read_bytes()) // 2])
        with pytest.raises(StorageError):
            load_store(target)
