"""Satellite 3: spilled execution is bit-identical to in-memory execution.

The sweep crosses ``memory_budget_mb`` ∈ {tiny-forcing-spill, unlimited} ×
``workers`` ∈ {1, 4} × all 8 division algorithms (5 small-divide, 3
great-divide) and asserts the quotient **and** the per-operator tuple
counts match the unbudgeted single-worker reference exactly: spilling a
partition to disk and streaming it back must be invisible to every
counter the paper's experiments report.

The scaled test at the bottom is the acceptance check in miniature: a
dividend far larger than the budget divides correctly at ``workers=4``
with spilling *proven* via the exchange counters.  Set ``REPRO_SCALE_TEST``
to run the full 10M-tuple version from ISSUE 8.
"""

import os

import pytest
from hypothesis import given, settings

from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    PartitionedDivision,
    RelationScan,
    execute_plan,
)
from repro.relation import Relation
from tests.strategies import dividends, divisors, great_divisors

#: Small enough that ``budget_tuples`` floors to 1 tuple, so any buffered
#: partition beyond a single tuple spills — every example exercises the
#: spill path, not just the large ones.
TINY_BUDGET_MB = 1e-6

#: The sweep grid (budget × workers); the (None, 1) cell is the reference.
GRID = [(None, 1), (None, 4), (TINY_BUDGET_MB, 1), (TINY_BUDGET_MB, 4)]

def run(dividend, divisor, kind, algorithm, workers, budget):
    operator = PartitionedDivision(
        RelationScan(dividend),
        RelationScan(divisor),
        algorithm=algorithm,
        kind=kind,
        partitions=4,
        workers=workers,
    )
    result = execute_plan(operator, memory_budget_mb=budget)
    return result, operator


def assert_grid_matches_reference(dividend, divisor, kind, algorithm):
    reference, _ = run(dividend, divisor, kind, algorithm, workers=1, budget=None)
    for budget, workers in GRID[1:]:
        result, operator = run(dividend, divisor, kind, algorithm, workers, budget)
        label = f"{kind}/{algorithm} budget={budget} workers={workers}"
        assert result.relation == reference.relation, label
        assert (
            dict(result.statistics.tuples_by_operator)
            == dict(reference.statistics.tuples_by_operator)
        ), label
        if budget is not None and len(dividend) >= 2:
            # A 1-tuple budget over a >=2-tuple dividend must spill.
            assert operator.spill_statistics["spilled_tuples"] > 0, label


class TestSpillEquivalenceSweep:
    @pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
    @settings(max_examples=5, deadline=None)
    @given(dividend=dividends(), divisor=divisors())
    def test_small_divide_grid(self, algorithm, dividend, divisor):
        assert_grid_matches_reference(dividend, divisor, "small", algorithm)

    @pytest.mark.parametrize("algorithm", sorted(GREAT_DIVIDE_ALGORITHMS))
    @settings(max_examples=5, deadline=None)
    @given(dividend=dividends(), divisor=great_divisors())
    def test_great_divide_grid(self, algorithm, dividend, divisor):
        assert_grid_matches_reference(dividend, divisor, "great", algorithm)


def qualifying_groups(groups: int, divisor_values: int):
    """A dividend where every even group divides and every odd one misses."""
    tuples = []
    for group in range(groups):
        height = divisor_values if group % 2 == 0 else divisor_values - 1
        tuples.extend((group, value) for value in range(height))
    return tuples


@pytest.mark.parametrize("algorithm", ["hash", "merge_sort"])
def test_scaled_division_in_bounded_memory(tmp_path, algorithm):
    """~200k-tuple dividend, workers=4, budget far below the dataset."""
    groups, divisor_values = 50_000, 4
    dividend = Relation.from_aligned(("a", "b"), qualifying_groups(groups, divisor_values))
    divisor = Relation.from_aligned(("b",), [(value,) for value in range(divisor_values)])
    assert len(dividend) > 150_000

    operator = PartitionedDivision(
        RelationScan(dividend),
        RelationScan(divisor),
        algorithm=algorithm,
        partitions=4,
        workers=4,
    )
    result = execute_plan(operator, memory_budget_mb=0.05)
    assert sorted(values[0] for values in result.relation.aligned_tuples()) == list(
        range(0, groups, 2)
    )
    spill = operator.spill_statistics
    assert spill["spilled_blocks"] > 0
    assert spill["spilled_tuples"] > 0
    # The buffered high-water mark stays within one input chunk of the
    # budget: the flush loop runs after each chunk lands in its bucket.
    assert spill["peak_buffered_tuples"] <= spill["budget_tuples"] + operator.batch_size
    # Bounded memory: the peak is a small fraction of the dividend.
    assert spill["peak_buffered_tuples"] < len(dividend) // 10


@pytest.mark.skipif(
    not os.environ.get("REPRO_SCALE_TEST"),
    reason="10M-tuple acceptance run; set REPRO_SCALE_TEST=1 to enable",
)
def test_ten_million_tuple_division_in_bounded_memory():
    """ISSUE 8 acceptance: the 10M-tuple dividend divides at workers=4."""
    groups, divisor_values = 2_500_000, 4
    dividend = Relation.from_aligned(("a", "b"), qualifying_groups(groups, divisor_values))
    divisor = Relation.from_aligned(("b",), [(value,) for value in range(divisor_values)])
    assert len(dividend) >= 8_750_000

    operator = PartitionedDivision(
        RelationScan(dividend),
        RelationScan(divisor),
        algorithm="hash",
        partitions=4,
        workers=4,
    )
    result = execute_plan(operator, memory_budget_mb=8.0)
    assert len(result.relation) == groups // 2
    spill = operator.spill_statistics
    assert spill["spilled_tuples"] > 0
    assert spill["peak_buffered_tuples"] <= spill["budget_tuples"] + operator.batch_size
