"""The on-disk block format: encode/decode, zone maps, header integrity."""

import pytest

from repro.algebra import predicates as P
from repro.errors import StorageError
from repro.storage.format import (
    DEFAULT_BLOCK_SIZE,
    TableReader,
    block_may_match,
    build_dictionaries,
    decode_block,
    encode_block,
    write_table_file,
)

ATTRIBUTES = ("k", "g", "s")


def rows(count: int):
    return [(i, i % 7, f"s{i % 3}") for i in range(count)]


class TestBlockCodec:
    def test_roundtrip_with_dictionaries(self):
        tuples = rows(100)
        encodings = build_dictionaries(ATTRIBUTES, tuples)
        payload = encode_block(ATTRIBUTES, tuples, encodings)
        dictionaries = {
            name: [value for value, _code in sorted(mapping.items(), key=lambda kv: kv[1])]
            for name, mapping in encodings.items()
        }
        assert decode_block(payload, ATTRIBUTES, dictionaries) == tuples

    def test_roundtrip_without_dictionaries(self):
        tuples = rows(10)
        payload = encode_block(ATTRIBUTES, tuples, {})
        assert decode_block(payload, ATTRIBUTES, {}) == tuples

    def test_unhashable_column_is_stored_raw(self):
        tuples = [([1, 2], "x"), ([3], "y")]
        encodings = build_dictionaries(("a", "b"), tuples)
        assert "a" not in encodings  # lists cannot be dictionary keys
        assert "b" in encodings


class TestTableFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.rpb"
        tuples = rows(5000)
        write_table_file(path, "t", ATTRIBUTES, tuples, block_size=512)
        reader = TableReader(path)
        assert reader.table == "t"
        assert reader.attributes == ATTRIBUTES
        assert reader.tuple_count == 5000
        assert len(reader.blocks) == 10
        streamed = [values for _meta, block in reader.iter_blocks() for values in block]
        assert streamed == tuples

    def test_default_block_size(self, tmp_path):
        path = tmp_path / "t.rpb"
        write_table_file(path, "t", ATTRIBUTES, rows(10))
        assert TableReader(path).block_size == DEFAULT_BLOCK_SIZE

    def test_zone_maps_recorded_per_block(self, tmp_path):
        path = tmp_path / "t.rpb"
        write_table_file(path, "t", ATTRIBUTES, rows(1024), block_size=256)
        reader = TableReader(path)
        for number, meta in enumerate(reader.blocks):
            low, high = meta["zones"]["k"]
            assert (low, high) == (number * 256, number * 256 + 255)

    def test_selective_read_skips_blocks(self, tmp_path):
        path = tmp_path / "t.rpb"
        write_table_file(path, "t", ATTRIBUTES, rows(1024), block_size=256)
        reader = TableReader(path)
        read = list(reader.iter_blocks(lambda meta: meta["zones"]["k"][0] < 256))
        assert len(read) == 1

    def test_sample_tuples(self, tmp_path):
        path = tmp_path / "t.rpb"
        tuples = rows(1000)
        write_table_file(path, "t", ATTRIBUTES, tuples, block_size=256)
        assert TableReader(path).sample_tuples(10) == tuples[:10]

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "t.rpb"
        path.write_bytes(b"NOTABLOCKFILE....")
        with pytest.raises(StorageError):
            TableReader(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "t.rpb"
        write_table_file(path, "t", ATTRIBUTES, rows(100), block_size=32)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        reader = TableReader(path)  # header may still parse …
        with pytest.raises(StorageError):  # … but block reads must not
            list(reader.iter_blocks())

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            TableReader(tmp_path / "absent.rpb")


class TestBlockMayMatch:
    ZONES = {"k": (10, 20)}

    @pytest.mark.parametrize(
        "predicate,expected",
        [
            (P.equals(P.attr("k"), 15), True),
            (P.equals(P.attr("k"), 5), False),
            (P.equals(P.attr("k"), 25), False),
            (P.less_than(P.attr("k"), 10), False),
            (P.less_than(P.attr("k"), 11), True),
            (P.less_equal(P.attr("k"), 10), True),
            (P.greater_than(P.attr("k"), 20), False),
            (P.greater_equal(P.attr("k"), 20), True),
            (P.not_equals(P.attr("k"), 15), True),
        ],
    )
    def test_comparisons(self, predicate, expected):
        assert block_may_match(predicate, self.ZONES) is expected

    def test_not_equals_prunes_single_valued_block(self):
        assert block_may_match(P.not_equals(P.attr("k"), 7), {"k": (7, 7)}) is False

    def test_mirrored_literal_on_the_left(self):
        # 25 < k  ≡  k > 25: impossible when the block tops out at 20.
        assert block_may_match(P.less_than(25, P.attr("k")), self.ZONES) is False

    def test_conjunction_and_disjunction(self):
        inside = P.equals(P.attr("k"), 15)
        outside = P.equals(P.attr("k"), 99)
        assert block_may_match(P.conjunction([inside, outside]), self.ZONES) is False
        assert block_may_match(P.disjunction([inside, outside]), self.ZONES) is True

    def test_unknown_attribute_is_conservative(self):
        assert block_may_match(P.equals(P.attr("other"), 1), self.ZONES) is True

    def test_incomparable_literal_is_conservative(self):
        assert block_may_match(P.less_than(P.attr("k"), "zzz"), self.ZONES) is True
