"""Satellite 2: versions and views survive ``Database.save`` — or fail loudly."""

import json

import pytest

from repro.api import connect
from repro.errors import StorageError, ViewError
from repro.relation import Relation
from repro.storage.store import MANIFEST_NAME, load_store, save_database


def mutated_session():
    db = connect()
    db.add_table("r1", Relation(["a", "b"], [(1, 1), (1, 2), (2, 1), (3, 1), (3, 2)]))
    db.add_table("r2", Relation(["b"], [(1,), (2,)]))
    db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
    db.view("q").run()
    db.insert("r1", [(4, 1), (4, 2)])
    db.delete("r2", [(2,)])
    return db


class TestRoundTrip:
    def test_versions_and_views_reload(self, tmp_path):
        db = mutated_session()
        store = tmp_path / "store"
        db.save(store)
        reopened = connect(store)
        assert reopened.versions == {"r1": 1, "r2": 1}
        assert reopened.views == ("q",)
        view = reopened.view("q")
        assert view.maintained
        assert view.relation() == db.view("q").relation()

    def test_reloaded_view_keeps_maintaining(self, tmp_path):
        db = mutated_session()
        store = tmp_path / "store"
        db.save(store)
        reopened = connect(store)
        reopened.view("q").run()
        reopened.insert("r1", [(9, 1)])
        assert (9,) in set(reopened.view("q").relation().aligned_tuples())
        assert reopened.view("q").deltas_applied >= 1
        assert reopened.table_version("r1") == 2

    def test_selection_predicates_round_trip(self, tmp_path):
        from repro.algebra import predicates as P

        db = connect()
        db.add_table("r1", Relation(["a", "b"], [(1, 1), (1, 2), (5, 1), (5, 2)]))
        db.add_table("r2", Relation(["b"], [(1,), (2,)]))
        query = db.table("r1").where(P.Comparison(P.attr("a"), "<", 3))
        db.create_view("q", query.divide(db.table("r2"), on=["b"]))
        store = tmp_path / "store"
        db.save(store)
        reopened = connect(store)
        assert set(reopened.view("q").relation().aligned_tuples()) == {(1,)}
        reopened.insert("r1", [(2, 1), (2, 2), (7, 1), (7, 2)])
        # a=7 fails the view's selection; a=2 passes.
        assert set(reopened.view("q").relation().aligned_tuples()) == {(1,), (2,)}

    def test_sql_alias_views_round_trip(self, tmp_path):
        """Peeled output renames are restored from the manifest payload."""
        db = connect()
        db.add_table("r1", Relation(["a", "b"], [(1, 1), (1, 2), (3, 1), (3, 2)]))
        db.add_table("r2", Relation(["b"], [(1,), (2,)]))
        db.create_view(
            "q", db.sql("SELECT a AS who FROM r1 AS s DIVIDE BY r2 AS p ON s.b = p.b")
        )
        assert db.view("q").maintained
        store = tmp_path / "store"
        db.save(store)
        reopened = connect(store)
        view = reopened.view("q")
        assert view.maintained
        assert view.schema.names == db.view("q").schema.names
        assert view.relation() == db.view("q").relation()

    def test_manifest_keys_are_optional(self, tmp_path):
        """Stores written by pre-mutation code still load (no new format)."""
        db = connect()
        db.add_table("r1", Relation(["a"], [(1,)]))
        store = tmp_path / "old-store"
        save_database(store, db.catalog)  # no versions, no views
        manifest = json.loads((store / MANIFEST_NAME).read_text())
        assert "table_versions" not in manifest and "views" not in manifest
        catalog, versions, views = load_store(store)
        assert versions == {} and views == []
        reopened = connect(store)
        assert reopened.versions == {"r1": 0}
        assert reopened.views == ()


class TestLoudFailures:
    def test_fallback_view_makes_save_fail(self, tmp_path):
        db = mutated_session()
        fallback = db.table("r1").project(["a", "b"]).divide(db.table("r2"), on=["b"])
        db.create_view("fb", fallback)
        with pytest.raises(ViewError, match="fallback"):
            db.save(tmp_path / "store")
        assert not (tmp_path / "store" / MANIFEST_NAME).exists()
        db.drop_view("fb")
        db.save(tmp_path / "store")  # without the fallback view it saves

    def test_versions_for_unknown_tables_fail(self, tmp_path):
        db = connect()
        db.add_table("r1", Relation(["a"], [(1,)]))
        with pytest.raises(StorageError, match="unknown table"):
            save_database(tmp_path / "store", db.catalog, table_versions={"ghost": 3})

    def test_malformed_manifest_versions_fail(self, tmp_path):
        db = connect()
        db.add_table("r1", Relation(["a"], [(1,)]))
        store = tmp_path / "store"
        db.save(store)
        manifest = json.loads((store / MANIFEST_NAME).read_text())
        manifest["table_versions"] = ["not", "a", "mapping"]
        (store / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="table_versions"):
            load_store(store)

    def test_malformed_manifest_views_fail(self, tmp_path):
        db = connect()
        db.add_table("r1", Relation(["a"], [(1,)]))
        store = tmp_path / "store"
        db.save(store)
        manifest = json.loads((store / MANIFEST_NAME).read_text())
        manifest["views"] = {"not": "a list"}
        (store / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="views"):
            load_store(store)
