"""The fluent Query builder and its equivalence with the SQL frontend."""

import pytest

from repro.algebra import predicates as P
from repro.algebra.expressions import (
    AggregateSpec,
    GreatDivide,
    GroupBy,
    Select,
    SmallDivide,
)
from repro.api import connect
from repro.errors import ExpressionError, ReproError
from repro.experiments.queries import Q1, Q2, Q3
from repro.relation import Relation
from repro.workloads import textbook_catalog


@pytest.fixture
def db():
    return connect(textbook_catalog)


class TestLaziness:
    def test_sql_queries_translate_lazily(self, db):
        query = db.sql("SELECT utter nonsense FROM nowhere")
        with pytest.raises(ReproError):
            query.expression  # noqa: B018 - translation happens here

    def test_fluent_queries_do_not_execute_until_run(self, db):
        query = db.table("supplies").divide(db.table("parts"))
        assert db.cache_info().misses == 0
        query.run()
        assert db.cache_info().misses == 1

    def test_query_needs_expression_or_sql(self, db):
        from repro.api.query import Query

        with pytest.raises(ExpressionError):
            Query(db)


class TestDivideSemantics:
    def test_on_covering_divisor_gives_small_divide(self, db):
        blue = db.table("parts").where(color="blue").project(["p_no"])
        query = db.table("supplies").divide(blue, on="p_no")
        assert isinstance(query.expression, SmallDivide)

    def test_partial_on_gives_great_divide(self, db):
        query = db.table("supplies").divide(db.table("parts"), on="p_no")
        assert isinstance(query.expression, GreatDivide)

    def test_default_on_uses_shared_attributes(self, db):
        query = db.table("supplies").divide(db.table("parts"))
        assert isinstance(query.expression, GreatDivide)

    def test_on_pairs_rename_the_divisor(self, db):
        divisor = db.table("parts").project(["p_no"]).rename({"p_no": "part"})
        query = db.table("supplies").divide(divisor, on=[("p_no", "part")])
        assert isinstance(query.expression, SmallDivide)
        assert query.run().relation == db.sql(Q2.replace(" WHERE color = 'blue'", "")).run().relation

    def test_top_level_tuple_means_two_attribute_names_like_a_list(self, db):
        # ("s_no", "p_no") must NOT be read as one (dividend, divisor) pair.
        divisor = db.table("supplies").where(s_no="s1").project(["s_no", "p_no"])
        by_tuple = db.table("supplies").divide(divisor, on=("s_no", "p_no"))
        by_list = db.table("supplies").divide(divisor, on=["s_no", "p_no"])
        assert by_tuple.expression == by_list.expression

    def test_malformed_on_items_are_rejected(self, db):
        with pytest.raises(ExpressionError):
            db.table("supplies").divide(db.table("parts"), on=[("a", "b", "c")])

    def test_great_divide_rejects_covered_divisor(self, db):
        blue = db.table("parts").where(color="blue").project(["p_no"])
        with pytest.raises(ExpressionError):
            db.table("supplies").great_divide(blue, on="p_no")

    def test_no_shared_attributes_is_an_error(self, db):
        suppliers_only = db.table("supplies").project(["s_no"])
        colors_only = db.table("parts").project(["color"])
        with pytest.raises(ExpressionError):
            suppliers_only.divide(colors_only)

    def test_unknown_on_attributes_are_rejected(self, db):
        with pytest.raises(ExpressionError):
            db.table("supplies").divide(db.table("parts"), on="nope")
        with pytest.raises(ExpressionError):
            db.table("supplies").divide(db.table("parts"), on=("s_no", "nope"))


class TestCombinators:
    def test_where_kwargs_are_sugar_for_equality(self, db):
        sugared = db.table("parts").where(color="blue")
        explicit = db.table("parts").where(P.equals(P.attr("color"), "blue"))
        assert sugared.expression == explicit.expression

    def test_where_requires_some_condition(self, db):
        with pytest.raises(ExpressionError):
            db.table("parts").where()

    def test_where_combines_predicate_and_kwargs(self, db):
        query = db.table("parts").where(P.not_equals(P.attr("p_no"), "p9"), color="blue")
        assert isinstance(query.expression, Select)
        assert sorted(query.run().relation.to_set("p_no")) == ["p1", "p2"]

    def test_group_by_keyword_aggregates(self, db):
        query = db.table("supplies").group_by(["s_no"], n_parts=("count", "p_no"))
        expression = query.expression
        assert isinstance(expression, GroupBy)
        assert expression.aggregates == (AggregateSpec("count", "p_no", "n_parts"),)
        counts = dict(query.run().relation.to_tuples(["s_no", "n_parts"]))
        assert counts == {"s1": 4, "s2": 3, "s3": 1}

    def test_set_operators_and_joins(self, db):
        blue = db.table("parts").where(color="blue").project(["p_no"])
        red = db.table("parts").where(color="red").project(["p_no"])
        assert len(blue.union(red).run().relation) == 4
        assert len(blue.intersect(red).run().relation) == 0
        assert len(blue.difference(red).run().relation) == 2
        joined = db.table("supplies").join(db.table("parts"))
        assert len(joined.run().relation) == 8
        assert len(db.table("supplies").semijoin(blue).run().relation) == 4
        assert len(db.table("supplies").antijoin(blue).run().relation) == 4

    def test_operands_may_be_queries_names_expressions_or_relations(self, db):
        by_query = db.table("supplies").semijoin(db.table("parts"))
        by_name = db.table("supplies").semijoin("parts")
        by_expression = db.table("supplies").semijoin(db.catalog.ref("parts"))
        by_relation = db.table("supplies").semijoin(db.relation("parts"))
        reference = by_query.run().relation
        assert by_name.run().relation == reference
        assert by_expression.run().relation == reference
        assert by_relation.run().relation == reference

    def test_invalid_operand_is_rejected(self, db):
        with pytest.raises(ExpressionError):
            db.table("supplies").semijoin(42)


class TestSqlFluentEquivalence:
    """The acceptance criterion: same relations *and* same tuple counts."""

    def test_q2_sql_and_fluent_builder_are_identical(self, db):
        sql_result = db.sql(Q2).run()
        fluent = (
            db.table("supplies")
            .divide(db.table("parts").where(color="blue").project(["p_no"]), on="p_no")
            .project(["s_no"])
        )
        fluent_result = fluent.run()
        assert fluent_result.relation == sql_result.relation
        assert fluent_result.tuple_counts == sql_result.tuple_counts
        assert fluent_result.fingerprint == sql_result.fingerprint
        assert fluent_result.cache_hit  # served from the SQL query's slot

    def test_q1_sql_and_fluent_builder_are_identical(self, db):
        sql_result = db.sql(Q1).run()
        fluent_result = (
            db.table("supplies")
            .divide(db.table("parts"), on="p_no")
            .project(["s_no", "color"])
            .run()
        )
        assert fluent_result.relation == sql_result.relation
        assert fluent_result.tuple_counts == sql_result.tuple_counts

    def test_q3_not_exists_matches_fluent_great_divide(self, db):
        sql_result = db.sql(Q3).run()
        fluent_result = db.table("supplies").great_divide(db.table("parts"), on="p_no").run()
        assert fluent_result.relation == sql_result.relation
        assert fluent_result.tuple_counts == sql_result.tuple_counts


class TestQueryResult:
    def test_iteration_and_len(self, db):
        result = db.sql(Q2).run()
        assert len(result) == len(result.relation)
        assert {row["s_no"] for row in result} == {"s1", "s2"}
        assert sorted(result.to_tuples(["s_no"])) == [("s1",), ("s2",)]
        assert list(result.rows())

    def test_repr_mentions_counts(self, db):
        text = repr(db.sql(Q2).run())
        assert "rows" in text and "cache_hit" in text

    def test_fingerprint_exposed_on_query(self, db):
        assert db.sql(Q1).fingerprint() == db.sql(Q3).fingerprint()
