"""The Database session: construction, execution path, plan cache."""

import pytest

import repro
from repro.algebra.catalog import Catalog
from repro.api import Database, connect
from repro.errors import ReproError, SchemaError
from repro.experiments.queries import Q1, Q2, Q3
from repro.relation import Relation
from repro.workloads import textbook_catalog


@pytest.fixture
def db():
    return connect(textbook_catalog)


class TestConstruction:
    def test_from_catalog(self):
        catalog = textbook_catalog()
        db = Database(catalog)
        assert db.catalog is catalog
        assert set(db.tables) == {"supplies", "parts"}

    def test_from_relation_mapping(self):
        db = Database.from_relations(
            {
                "r1": Relation(["a", "b"], [(1, 1), (1, 2)]),
                "r2": Relation(["b"], [(1,), (2,)]),
            }
        )
        result = db.table("r1").divide(db.table("r2")).run()
        assert sorted(result.relation.to_set("a")) == [1]

    def test_from_workload_generator_callable(self):
        db = connect(textbook_catalog)
        assert set(db.tables) == {"supplies", "parts"}

    def test_empty_session_populated_later(self):
        db = connect()
        assert db.tables == ()
        db.add_table("r1", Relation(["a", "b"], [(1, 1)]))
        assert db.relation("r1") == Relation(["a", "b"], [(1, 1)])

    def test_connect_is_exported_at_top_level(self):
        assert repro.connect is connect
        assert isinstance(repro.connect(textbook_catalog), repro.Database)

    def test_rejects_non_relation_values(self):
        with pytest.raises(ReproError):
            connect({"r1": [("a", 1)]})

    def test_rejects_unknown_sources(self):
        with pytest.raises(ReproError):
            connect(42)

    def test_generator_must_return_catalog_or_mapping(self):
        with pytest.raises(ReproError):
            connect(lambda: 42)

    def test_unknown_table_lookup(self, db):
        with pytest.raises(SchemaError):
            db.relation("nope")


class TestSingleExecutionPath:
    def test_run_bundles_everything_from_one_execution(self, db):
        result = db.sql(Q1).run()
        assert sorted(result.relation.to_tuples(["s_no", "color"])) == [
            ("s1", "blue"),
            ("s1", "red"),
            ("s2", "blue"),
            ("s2", "green"),
        ]
        assert result.tuple_counts  # per-operator counts present
        assert result.max_intermediate >= len(result.relation)
        assert result.elapsed_seconds > 0
        assert result.fingerprint
        assert result.estimated_cost_before > 0

    def test_execute_accepts_sql_text_query_and_expression(self, db):
        by_text = db.execute(Q2)
        by_query = db.execute(db.sql(Q2))
        by_expression = db.execute(db.sql(Q2).expression)
        assert by_text.relation == by_query.relation == by_expression.relation

    def test_query_of_other_session_is_rejected(self, db):
        other = connect(textbook_catalog)
        with pytest.raises(ReproError):
            db.execute(other.sql(Q1))

    def test_recognizer_default_can_be_disabled_per_session(self):
        db = connect(textbook_catalog, recognize_division=False)
        result = db.sql(Q3).run()
        assert not result.expression.contains_division()
        recognized = db.sql(Q3, recognize_division=True).run()
        assert recognized.expression.contains_division()
        assert result.relation == recognized.relation


class TestPlanCache:
    def test_repeated_query_hits_the_cache(self, db):
        first = db.sql(Q2).run()
        second = db.sql(Q2).run()
        assert not first.cache_hit
        assert second.cache_hit
        info = db.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1
        assert first.relation == second.relation
        assert first.tuple_counts == second.tuple_counts

    def test_cache_hit_skips_rewrite_and_planning(self, db, monkeypatch):
        calls = {"rewrite": 0, "plan": 0}
        original_rewrite = db.optimizer.rewrite
        original_plan = db.optimizer.plan

        def counting_rewrite(expression):
            calls["rewrite"] += 1
            return original_rewrite(expression)

        def counting_plan(expression):
            calls["plan"] += 1
            return original_plan(expression)

        monkeypatch.setattr(db.optimizer, "rewrite", counting_rewrite)
        monkeypatch.setattr(db.optimizer, "plan", counting_plan)

        db.sql(Q2).run()
        assert calls == {"rewrite": 1, "plan": 1}
        db.sql(Q2).run()
        assert calls == {"rewrite": 1, "plan": 1}  # untouched on the hit

    def test_equivalent_formulations_share_one_slot(self, db):
        db.sql(Q1).run()
        result = db.sql(Q3).run()  # Q3 canonicalizes to Q1's expression
        assert result.cache_hit
        assert db.cache_info().size == 1

    def test_prepare_pins_the_plan(self, db):
        query = db.prepare(Q2)
        assert db.cache_info().misses == 1
        result = query.run()
        assert result.cache_hit

    def test_lru_evicts_oldest(self):
        db = connect(textbook_catalog, cache_size=1)
        db.sql(Q1).run()
        db.sql(Q2).run()  # evicts Q1's plan
        assert db.cache_info().size == 1
        result = db.sql(Q1).run()
        assert not result.cache_hit

    def test_cache_can_be_disabled(self):
        db = connect(textbook_catalog, cache_size=0)
        db.sql(Q1).run()
        result = db.sql(Q1).run()
        assert not result.cache_hit
        assert db.cache_info().size == 0

    def test_clear_cache_resets_counters(self, db):
        db.sql(Q1).run()
        db.sql(Q1).run()
        db.clear_cache()
        info = db.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_replace_table_invalidates_plans(self, db):
        db.sql(Q2).run()
        assert db.cache_info().size == 1
        db.replace_table(
            "parts", Relation(["p_no", "color"], [("p1", "blue"), ("p9", "blue")])
        )
        assert db.cache_info().size == 0
        result = db.sql(Q2).run()
        assert not result.cache_hit
        # s1 and s2 supply p1 but nobody supplies p9.
        assert sorted(result.relation.to_set("s_no")) == []

    def test_hit_rate(self, db):
        db.sql(Q1).run()
        db.sql(Q1).run()
        assert db.cache_info().hit_rate == pytest.approx(0.5)


class TestCatalogManagement:
    def test_add_table_returns_query_root(self):
        db = connect()
        query = db.add_table("r1", Relation(["a", "b"], [(1, 2)]))
        assert query.run().relation == Relation(["a", "b"], [(1, 2)])

    def test_catalog_constraints_survive(self):
        catalog = Catalog()
        catalog.add_table("parts", Relation(["p_no"], [("p1",)]), key=["p_no"])
        db = Database(catalog)
        assert db.catalog.has_key("parts", ["p_no"])


class TestAnalyze:
    def test_analyze_refreshes_statistics(self):
        db = connect()
        db.add_table("r1", Relation(["a", "b"], [(1, 1), (1, 2), (2, 1)]))
        report = db.analyze()
        assert set(report.tables) == {"r1"}
        stats = report.tables["r1"]
        assert stats.cardinality == 3
        assert stats.distinct_values == {"a": 2, "b": 2}
        assert stats.minimum("a") == 1 and stats.maximum("a") == 2

    def test_analyze_detects_clustered_scan_order(self):
        dividend = Relation(
            ["a", "b"], [(g, v) for g in range(50) for v in range(4)]
        ).clustered(["a"])
        db = connect({"r1": dividend, "r2": Relation(["b"], [(0,), (1,)])})
        report = db.analyze("r1")
        assert report.tables["r1"].is_sorted("a")

    def test_analyze_subset_of_tables(self, db):
        report = db.analyze("parts")
        assert set(report.tables) == {"parts"}

    def test_analyze_clears_the_plan_cache(self, db):
        db.sql(Q2).prepare()
        assert db.cache_info().size == 1
        db.analyze()
        assert db.cache_info().size == 0

    def test_analyze_report_renders(self, db):
        text = db.analyze().render()
        assert "supplies" in text and "distinct=" in text

    def test_replace_table_refreshes_statistics_and_choice(self):
        """Re-clustering a table via replace_table switches the planner to
        the order-exploiting streaming merge division (``_refresh`` keeps
        statistics current on catalog changes)."""
        from repro.workloads import make_division_workload

        workload = make_division_workload(
            num_groups=400, divisor_size=8, containing_fraction=0.25,
            extra_values_per_group=6, seed=1,
        )
        db = connect({"r1": workload.dividend, "r2": workload.divisor})
        before = db.table("r1").divide("r2").run()
        assert before.decisions[0].chosen.name == "hash"
        db.replace_table("r1", workload.dividend.clustered(["a"]))
        after = db.table("r1").divide("r2").run()
        assert after.decisions[0].chosen.name == "merge_sort"
        assert after.decisions[0].chosen.clustered
        assert after.relation == before.relation

    def test_analyze_repairs_stale_statistics(self):
        """ANALYZE itself drives replanning: with deliberately stale
        statistics planted in the catalog the planner makes a bad choice,
        and ``db.analyze()`` (with no table changes at all) restores the
        data-driven one."""
        from repro.optimizer import TableStatistics
        from repro.workloads import make_division_workload

        workload = make_division_workload(
            num_groups=400, divisor_size=8, containing_fraction=0.25,
            extra_values_per_group=6, seed=1,
        )
        db = connect({"r1": workload.dividend.clustered(["a"]), "r2": workload.divisor})
        # Plant drifted statistics: a tiny, unclustered-looking r1.
        db.optimizer.statistics.add(
            "r1", TableStatistics(cardinality=4, distinct_values={"a": 2, "b": 2})
        )
        db.clear_cache()
        stale = db.table("r1").divide("r2").run()
        assert stale.decisions[0].chosen.name == "nested_loops"  # fooled
        report = db.analyze()
        assert report.tables["r1"].is_sorted("a")
        fresh = db.table("r1").divide("r2").run()
        assert fresh.decisions[0].chosen.name == "merge_sort"
        assert fresh.decisions[0].chosen.clustered
        assert fresh.relation == stale.relation

    def test_analyze_unknown_table_raises_schema_error(self, db):
        with pytest.raises(SchemaError) as excinfo:
            db.analyze("missing")
        assert "missing" in str(excinfo.value)
        assert "supplies" in str(excinfo.value)
