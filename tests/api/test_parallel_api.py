"""Session-level plumbing of partition-parallel execution.

``repro.connect(workers=N)`` → ``PlannerOptions.workers`` → cost-based
exchange placement → ``execute_plan(..., workers=N)``; plus the
``explain(analyze=True)`` exchange annotation and the CLI flag.
"""

import pytest

import repro
from repro.api.fingerprint import optimizer_signature
from repro.cli import main
from repro.errors import ReproError
from repro.optimizer.planner import PlannerOptions
from repro.workloads import make_division_workload

DIVIDE_SQL = "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b"


@pytest.fixture(scope="module")
def medium_workload():
    """Big enough (~23k dividend tuples) to cross the parallelism threshold."""
    return make_division_workload(
        num_groups=2000, divisor_size=10, containing_fraction=0.25, extra_values_per_group=6, seed=21
    )


@pytest.fixture(scope="module")
def tables(medium_workload):
    return {"r1": medium_workload.dividend, "r2": medium_workload.divisor}


class TestConnectWorkers:
    def test_parallel_session_matches_serial_results(self, tables):
        serial = repro.connect(tables).sql(DIVIDE_SQL).run()
        parallel = repro.connect(tables, workers=4).sql(DIVIDE_SQL).run()
        assert parallel.relation == serial.relation
        decision = parallel.decisions[0]
        assert decision.chosen.workers == 4
        assert "dop=4" in decision.describe()

    def test_workers_property_and_validation(self, tables):
        assert repro.connect(tables).workers == 1
        assert repro.connect(tables, workers=3).workers == 3
        with pytest.raises(ReproError, match="workers"):
            repro.connect(tables, workers=0)

    def test_workers_kw_overrides_planner_options(self, tables):
        db = repro.connect(tables, planner_options=PlannerOptions(workers=2), workers=4)
        assert db.planner_options.workers == 4

    def test_small_inputs_stay_serial_through_the_api(self):
        small = make_division_workload(
            num_groups=50, divisor_size=5, containing_fraction=0.3, extra_values_per_group=3, seed=7
        )
        db = repro.connect({"r1": small.dividend, "r2": small.divisor}, workers=4)
        result = db.sql(DIVIDE_SQL).run()
        assert result.decisions[0].chosen.workers == 1

    def test_signature_depends_on_workers(self):
        serial = optimizer_signature(False, PlannerOptions())
        parallel = optimizer_signature(False, PlannerOptions(workers=4))
        repartitioned = optimizer_signature(False, PlannerOptions(workers=4, partitions=16))
        assert len({serial, parallel, repartitioned}) == 3


class TestExplainExchange:
    def test_static_explain_reports_partitions_and_workers(self, tables):
        db = repro.connect(tables, workers=2)
        text = db.sql(DIVIDE_SQL).explain()
        assert "PartitionedDivision" in text
        assert "exchange: partitions=2, workers=2" in text
        assert "dop=2" in text

    def test_analyze_explain_reports_partition_skew(self, tables):
        db = repro.connect(tables, workers=2)
        text = db.sql(DIVIDE_SQL).explain(analyze=True)
        assert "partitions populated" in text
        assert "input skew max/mean=" in text

    def test_serial_explain_has_no_exchange_line(self, tables):
        text = repro.connect(tables).sql(DIVIDE_SQL).explain(analyze=True)
        assert "exchange:" not in text


class TestAnalyzeSkew:
    def test_analyze_report_renders_partition_skew(self, tables):
        report = repro.connect(tables).analyze()
        assert "skew=" in report.render()

    def test_statistics_catalog_carries_top_frequencies(self, tables):
        db = repro.connect(tables)
        db.analyze()
        statistics = db.optimizer.statistics.table("r2")
        assert statistics.top_frequency("b") == 1  # divisor values are distinct
        assert statistics.partition_skew("b") == pytest.approx(1 / len(tables["r2"]))


class TestCLIWorkers:
    def test_sql_accepts_workers_flag(self, capsys):
        code = main(
            ["sql", "SELECT s_no FROM supplies AS s WHERE s.p_no = 'p2'", "--workers", "2"]
        )
        assert code == 0
        assert "result" in capsys.readouterr().out

    def test_sql_rejects_bad_workers(self, capsys):
        code = main(["sql", "SELECT s_no FROM supplies AS s", "--workers", "0"])
        assert code == 2
        assert "workers" in capsys.readouterr().out
