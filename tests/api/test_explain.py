"""EXPLAIN rendering through the session API."""

import pytest

from repro.api import connect
from repro.experiments.queries import Q1, Q2
from repro.workloads import textbook_catalog


@pytest.fixture
def db():
    return connect(textbook_catalog)


class TestExplain:
    def test_sections_are_present(self, db):
        text = db.sql(Q2).explain()
        assert "SQL" in text
        assert "fingerprint :" in text
        assert "Logical plan (as written)" in text
        assert "Rewrite rules fired :" in text
        assert "Logical plan (canonical, rewritten)" in text
        assert "Estimated cost :" in text
        assert "Physical plan" in text

    def test_estimates_annotate_every_line(self, db):
        text = db.sql(Q2).explain()
        plan_lines = [
            line
            for line in text.splitlines()
            if line.startswith("  ") and "[" in line and "SQL" not in line
        ]
        assert plan_lines
        assert all("est~" in line or "est=?" in line for line in plan_lines)

    def test_analyze_shows_actual_counts(self, db):
        text = db.sql(Q2).explain(analyze=True)
        assert "actual=" in text
        assert "max intermediate" in text
        assert "elapsed" in text

    def test_plain_explain_does_not_execute(self, db):
        text = db.sql(Q2).explain()
        assert "actual=" not in text

    def test_explain_populates_the_plan_cache(self, db):
        db.sql(Q2).explain()
        assert db.cache_info().misses == 1
        result = db.sql(Q2).run()
        assert result.cache_hit
        assert "plan cache: hit" in db.sql(Q2).explain()

    def test_canonical_tree_is_clean_for_q1(self, db):
        text = db.sql(Q1).explain()
        canonical = text.split("Logical plan (canonical, rewritten)")[1]
        physical = canonical.split("Physical plan")[0]
        assert "Rename" not in physical

    def test_fluent_queries_explain_without_sql_section(self, db):
        text = db.table("supplies").divide(db.table("parts")).explain()
        assert not text.startswith("SQL")
        assert "Physical plan" in text

    def test_database_explain_shortcut(self, db):
        assert "Physical plan" in db.explain(Q1)
