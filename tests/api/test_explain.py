"""EXPLAIN rendering through the session API."""

import pytest

from repro.api import connect
from repro.experiments.queries import Q1, Q2
from repro.workloads import textbook_catalog


@pytest.fixture
def db():
    return connect(textbook_catalog)


class TestExplain:
    def test_sections_are_present(self, db):
        text = db.sql(Q2).explain()
        assert "SQL" in text
        assert "fingerprint :" in text
        assert "Logical plan (as written)" in text
        assert "Rewrite rules fired :" in text
        assert "Logical plan (canonical, rewritten)" in text
        assert "Estimated cost :" in text
        assert "Physical plan" in text

    def test_estimates_annotate_every_line(self, db):
        text = db.sql(Q2).explain()
        plan_lines = [
            line
            for line in text.splitlines()
            if line.startswith("  ") and "[" in line and "SQL" not in line
        ]
        assert plan_lines
        assert all("est~" in line or "est=?" in line for line in plan_lines)

    def test_analyze_shows_actual_counts(self, db):
        text = db.sql(Q2).explain(analyze=True)
        assert "actual=" in text
        assert "max intermediate" in text
        assert "elapsed" in text

    def test_plain_explain_does_not_execute(self, db):
        text = db.sql(Q2).explain()
        assert "actual=" not in text

    def test_explain_populates_the_plan_cache(self, db):
        db.sql(Q2).explain()
        assert db.cache_info().misses == 1
        result = db.sql(Q2).run()
        assert result.cache_hit
        assert "plan cache: hit" in db.sql(Q2).explain()

    def test_canonical_tree_is_clean_for_q1(self, db):
        text = db.sql(Q1).explain()
        canonical = text.split("Logical plan (canonical, rewritten)")[1]
        physical = canonical.split("Physical plan")[0]
        assert "Rename" not in physical

    def test_fluent_queries_explain_without_sql_section(self, db):
        text = db.table("supplies").divide(db.table("parts")).explain()
        assert not text.startswith("SQL")
        assert "Physical plan" in text

    def test_database_explain_shortcut(self, db):
        assert "Physical plan" in db.explain(Q1)


class TestExplainAnalyzeQError:
    def test_every_physical_node_reports_estimate_actual_and_q_error(self, db):
        text = db.sql(Q2).explain(analyze=True)
        physical = text.split("Physical plan")[1]
        node_lines = [
            line for line in physical.splitlines() if "[" in line and "rows]" in line
        ]
        assert node_lines
        for line in node_lines:
            assert "est~" in line, line
            assert "actual=" in line, line
            assert "q=" in line, line

    def test_algebra_simulation_inner_nodes_get_fallback_estimates(self):
        """Composite algorithms have no logical twin; the bottom-up physical
        estimator must still annotate every inner operator."""
        from repro.optimizer import PlannerOptions
        from repro.workloads import make_division_workload

        workload = make_division_workload(num_groups=30, divisor_size=4, seed=2)
        db = connect(
            {"r1": workload.dividend, "r2": workload.divisor},
            planner_options=PlannerOptions(small_divide_algorithm="algebra_simulation"),
        )
        text = db.table("r1").divide("r2").explain(analyze=True)
        physical = text.split("Physical plan")[1]
        node_lines = [
            line for line in physical.splitlines() if "[" in line and "rows]" in line
        ]
        assert len(node_lines) > 3  # the expanded inner plan is visible
        assert all("est~" in line and "q=" in line for line in node_lines)
        assert "est=?" not in physical

    def test_division_decision_rationale_is_shown(self, db):
        text = db.sql(Q1).explain()
        assert "algorithm=" in text
        assert "cost-based" in text
        assert "alternatives:" in text

    def test_q_error_helper(self):
        from repro.api.explain import q_error

        assert q_error(10, 10) == 1.0
        assert q_error(5, 20) == 4.0
        assert q_error(20, 5) == 4.0
        assert q_error(0, 0) == 1.0
