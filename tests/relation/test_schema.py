"""Tests for repro.relation.schema."""

import pytest

from repro.errors import SchemaError
from repro.relation import Schema
from repro.relation.schema import as_schema


class TestConstruction:
    def test_preserves_declaration_order(self):
        assert Schema(["b", "a", "c"]).names == ("b", "a", "c")

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Schema([""])

    def test_rejects_non_string_name(self):
        with pytest.raises(SchemaError):
            Schema([1])

    def test_empty_schema_is_allowed(self):
        assert len(Schema(())) == 0

    def test_from_existing_schema(self):
        original = Schema(["a", "b"])
        assert Schema(original) == original


class TestSetSemantics:
    def test_equality_ignores_order(self):
        assert Schema(["a", "b"]) == Schema(["b", "a"])

    def test_hash_ignores_order(self):
        assert hash(Schema(["a", "b"])) == hash(Schema(["b", "a"]))

    def test_inequality_on_different_attributes(self):
        assert Schema(["a", "b"]) != Schema(["a", "c"])

    def test_union_keeps_left_order_first(self):
        assert (Schema(["a", "b"]) | Schema(["c", "b"])).names == ("a", "b", "c")

    def test_intersection(self):
        assert (Schema(["a", "b", "c"]) & Schema(["c", "b"])).names == ("b", "c")

    def test_difference(self):
        assert (Schema(["a", "b", "c"]) - Schema(["b"])).names == ("a", "c")

    def test_disjointness(self):
        assert Schema(["a"]).is_disjoint(Schema(["b"]))
        assert not Schema(["a", "b"]).is_disjoint(Schema(["b"]))

    def test_subset_and_superset(self):
        assert Schema(["a"]).is_subset(Schema(["a", "b"]))
        assert Schema(["a", "b"]).is_superset(Schema(["b"]))
        assert not Schema(["a", "c"]).is_subset(Schema(["a", "b"]))


class TestHelpers:
    def test_require_passes_for_known_attributes(self):
        Schema(["a", "b"]).require(["a"])

    def test_require_raises_for_unknown_attributes(self):
        with pytest.raises(SchemaError, match="projection"):
            Schema(["a", "b"]).require(["z"], context="projection")

    def test_rename(self):
        assert Schema(["a", "b"]).rename({"a": "x"}).names == ("x", "b")

    def test_rename_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).rename({"z": "x"})

    def test_project_keeps_requested_order(self):
        assert Schema(["a", "b", "c"]).project(["c", "a"]).names == ("c", "a")

    def test_contains_and_iteration(self):
        schema = Schema(["a", "b"])
        assert "a" in schema and "z" not in schema
        assert list(schema) == ["a", "b"]
        assert schema[1] == "b"

    def test_as_schema_accepts_single_string(self):
        assert as_schema("a").names == ("a",)

    def test_as_schema_accepts_iterable(self):
        assert as_schema(iter(["a", "b"])).names == ("a", "b")
