"""Tests for ASCII rendering of relations."""

from repro.relation import NULL, Relation
from repro.relation.render import render_relation, render_side_by_side


class TestRenderRelation:
    def test_contains_header_and_rows(self):
        text = render_relation(Relation(["a", "b"], [(1, 2)]), title="r1")
        assert "r1" in text
        assert "| a | b |" in text
        assert "| 1 | 2 |" in text
        assert "(1 row)" in text

    def test_row_count_pluralisation(self):
        text = render_relation(Relation(["a"], [(1,), (2,)]))
        assert "(2 rows)" in text

    def test_respects_column_order(self):
        text = render_relation(Relation(["a", "b"], [(1, 2)]), attributes=["b", "a"])
        assert "| b | a |" in text

    def test_renders_null_and_sets(self):
        relation = Relation(["a", "s"], [(NULL, frozenset({1, 2}))])
        text = render_relation(relation)
        assert "NULL" in text
        assert "{1, 2}" in text

    def test_empty_relation(self):
        text = render_relation(Relation.empty(["a"]))
        assert "(0 rows)" in text


class TestSideBySide:
    def test_blocks_are_joined_horizontally(self):
        left = render_relation(Relation(["a"], [(1,)]), title="left")
        right = render_relation(Relation(["b"], [(2,)]), title="right")
        combined = render_side_by_side([left, right])
        first_line = combined.splitlines()[0]
        assert "left" in first_line and "right" in first_line

    def test_uneven_heights_are_padded(self):
        tall = render_relation(Relation(["a"], [(1,), (2,), (3,)]))
        short = render_relation(Relation(["b"], [(1,)]))
        combined = render_side_by_side([tall, short])
        widths = {len(line) for line in combined.splitlines()}
        assert len(widths) == 1
