"""Tests for repro.relation.row."""

import pytest

from repro.errors import RelationError
from repro.relation import Row


class TestRowBasics:
    def test_mapping_access(self):
        row = Row({"a": 1, "b": "x"})
        assert row["a"] == 1
        assert row["b"] == "x"
        assert len(row) == 2
        assert set(row) == {"a", "b"}

    def test_unknown_attribute_raises(self):
        with pytest.raises(RelationError, match="no attribute"):
            Row({"a": 1})["z"]

    def test_equality_and_hash_by_value(self):
        assert Row({"a": 1, "b": 2}) == Row({"b": 2, "a": 1})
        assert hash(Row({"a": 1})) == hash(Row({"a": 1}))

    def test_equality_with_plain_mapping(self):
        assert Row({"a": 1}) == {"a": 1}

    def test_unhashable_value_rejected(self):
        with pytest.raises(RelationError, match="hashable"):
            Row({"a": [1, 2]})

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(RelationError):
            Row({"": 1})


class TestRowOperations:
    def test_project(self):
        assert Row({"a": 1, "b": 2}).project(["b"]) == Row({"b": 2})

    def test_rename(self):
        assert Row({"a": 1}).rename({"a": "x"}) == Row({"x": 1})

    def test_merge_disjoint(self):
        assert Row({"a": 1}).merge(Row({"b": 2})) == Row({"a": 1, "b": 2})

    def test_merge_agreeing_overlap(self):
        assert Row({"a": 1, "b": 2}).merge(Row({"b": 2, "c": 3})) == Row({"a": 1, "b": 2, "c": 3})

    def test_merge_conflicting_overlap_raises(self):
        with pytest.raises(RelationError, match="disagree"):
            Row({"a": 1}).merge(Row({"a": 2}))

    def test_values_for_order(self):
        assert Row({"a": 1, "b": 2}).values_for(["b", "a"]) == (2, 1)

    def test_with_values(self):
        assert Row({"a": 1}).with_values({"b": 2, "a": 5}) == Row({"a": 5, "b": 2})
