"""Invariants of the tuple-backed row representation.

The representation refactor (interned schema + aligned value tuple) must be
invisible to users of the ``Mapping`` API: hash/eq interop with plain
mappings, attribute-order-independent equality, full Mapping protocol
conformance, and lossless round-trips through :class:`Relation`.
"""

import pytest
from collections.abc import ItemsView, KeysView, Mapping, ValuesView

from hypothesis import given, strategies as st

from repro.errors import RelationError
from repro.relation import Relation, Row, Schema


class TestHashEqInterop:
    def test_equal_to_plain_dict(self):
        assert Row({"a": 1, "b": "x"}) == {"a": 1, "b": "x"}
        assert Row({"a": 1, "b": "x"}) == {"b": "x", "a": 1}

    def test_not_equal_to_dict_with_other_values(self):
        assert Row({"a": 1}) != {"a": 2}
        assert Row({"a": 1}) != {"a": 1, "b": 2}

    def test_not_equal_to_non_mapping(self):
        assert Row({"a": 1}) != (1,)
        assert Row({"a": 1}) != 1

    def test_dict_construction_round_trip(self):
        row = Row({"a": 1, "b": 2})
        assert Row(dict(row)) == row
        assert hash(Row(dict(row))) == hash(row)

    def test_row_usable_as_dict_key_alongside_equal_row(self):
        table = {Row({"a": 1, "b": 2}): "first"}
        table[Row({"b": 2, "a": 1})] = "second"
        assert len(table) == 1
        assert table[Row({"a": 1, "b": 2})] == "second"


class TestOrderIndependence:
    def test_equality_across_attribute_orders(self):
        assert Row({"a": 1, "b": 2}) == Row({"b": 2, "a": 1})

    def test_hash_equality_across_attribute_orders(self):
        assert hash(Row({"a": 1, "b": 2})) == hash(Row({"b": 2, "a": 1}))

    def test_three_attribute_permutations_collapse_in_sets(self):
        rows = {
            Row({"x": 1, "y": 2, "z": 3}),
            Row({"z": 3, "x": 1, "y": 2}),
            Row({"y": 2, "z": 3, "x": 1}),
        }
        assert len(rows) == 1

    def test_different_name_sets_never_equal(self):
        assert Row({"a": 1}) != Row({"b": 1})
        assert Row({"a": 1, "b": 2}) != Row({"a": 1, "c": 2})

    def test_none_is_a_legal_attribute_value(self):
        assert Row({"a": None}) == Row({"a": None})
        assert Row({"a": None}) != Row({"a": 0})


class TestMappingProtocol:
    def test_isinstance_mapping(self):
        assert isinstance(Row({"a": 1}), Mapping)

    def test_views(self):
        row = Row({"a": 1, "b": 2})
        assert isinstance(row.keys(), KeysView)
        assert isinstance(row.values(), ValuesView)
        assert isinstance(row.items(), ItemsView)
        assert set(row.keys()) == {"a", "b"}
        assert sorted(row.values()) == [1, 2]
        assert dict(row.items()) == {"a": 1, "b": 2}

    def test_get(self):
        row = Row({"a": 1})
        assert row.get("a") == 1
        assert row.get("z") is None
        assert row.get("z", 42) == 42

    def test_iteration_follows_declaration_order(self):
        assert list(Row({"b": 2, "a": 1})) == ["b", "a"]

    def test_len_and_contains(self):
        row = Row({"a": 1, "b": 2})
        assert len(row) == 2
        assert "a" in row and "z" not in row

    def test_unknown_attribute_raises_relation_error(self):
        with pytest.raises(RelationError, match="no attribute"):
            Row({"a": 1})["z"]


class TestTupleBackedInternals:
    def test_schema_is_interned(self):
        assert Row({"a": 1, "b": 2}).schema is Row({"a": 9, "b": 8}).schema
        assert Row({"a": 1}).schema is Schema.interned(("a",))

    def test_values_tuple_aligned_with_schema(self):
        row = Row({"b": 2, "a": 1})
        assert row.schema.names == ("b", "a")
        assert row.values_tuple == (2, 1)

    def test_from_schema_fast_path(self):
        schema = Schema.interned(("a", "b"))
        row = Row.from_schema(schema, (1, 2))
        assert row == Row({"a": 1, "b": 2})
        assert hash(row) == hash(Row({"b": 2, "a": 1}))
        assert row.schema is schema

    def test_from_schema_rejects_unhashable_values(self):
        schema = Schema.interned(("a",))
        with pytest.raises(RelationError, match="hashable"):
            Row.from_schema(schema, ([1, 2],))

    def test_relation_rows_share_the_relation_schema(self):
        relation = Relation(["a", "b"], [(1, 2), (3, 4), {"b": 6, "a": 5}])
        assert all(row.schema is relation.schema for row in relation)

    def test_relation_realigns_rows_with_other_attribute_order(self):
        row = Row({"b": 2, "a": 1})
        relation = Relation(["a", "b"], [row])
        (stored,) = relation.rows
        assert stored == row
        assert stored.values_tuple == (1, 2)


# ----------------------------------------------------------------------
# property-based round trips
# ----------------------------------------------------------------------

_VALUES = st.one_of(st.integers(-5, 5), st.text(max_size=3), st.none(), st.booleans())


@given(
    rows=st.lists(st.tuples(_VALUES, _VALUES, _VALUES), max_size=20),
)
def test_relation_to_tuples_round_trip(rows):
    """Relation(attrs, rows).to_tuples() is the set of the input tuples."""
    attributes = ("a", "b", "c")
    relation = Relation(attributes, rows)
    assert relation.to_tuples(attributes) == set(rows)
    # And re-feeding the tuples reproduces the same relation.
    assert Relation(attributes, relation.to_tuples(attributes)) == relation


@given(rows=st.lists(st.tuples(_VALUES, _VALUES), max_size=15))
def test_row_dict_round_trip(rows):
    """Rows survive a round trip through plain dicts with equal hashes."""
    relation = Relation(("x", "y"), rows)
    for row in relation:
        clone = Row(dict(row))
        assert clone == row
        assert hash(clone) == hash(row)


@given(rows=st.lists(st.tuples(_VALUES, _VALUES), max_size=15))
def test_attribute_order_invariance_of_relations(rows):
    """The same data under permuted schemas compares equal."""
    forward = Relation(("x", "y"), rows)
    backward = Relation(("y", "x"), [(y, x) for x, y in rows])
    assert forward == backward
    assert forward.rows == backward.rows
