"""Direct tests for the aggregate helpers (error paths and labels)."""

import pytest

from repro.errors import RelationError
from repro.relation import Relation, Row, aggregates


class TestLabels:
    def test_labels_describe_the_aggregate(self):
        assert aggregates.count()[0] == "count(*)"
        assert aggregates.count("b")[0] == "count(b)"
        assert aggregates.count_distinct("b")[0] == "count(distinct b)"
        assert aggregates.sum_of("x")[0] == "sum(x)"
        assert aggregates.min_of("x")[0] == "min(x)"
        assert aggregates.max_of("x")[0] == "max(x)"
        assert aggregates.avg_of("x")[0] == "avg(x)"
        assert aggregates.collect_set("x")[0] == "collect_set(x)"


class TestEmptyGroups:
    def test_count_of_empty_group_is_zero(self):
        _, fn = aggregates.count()
        assert fn([]) == 0

    def test_sum_of_empty_group_is_zero(self):
        _, fn = aggregates.sum_of("x")
        assert fn([]) == 0

    def test_min_max_avg_of_empty_group_raise(self):
        for factory in (aggregates.min_of, aggregates.max_of, aggregates.avg_of):
            _, fn = factory("x")
            with pytest.raises(RelationError):
                fn([])

    def test_collect_set_of_empty_group_is_empty(self):
        _, fn = aggregates.collect_set("x")
        assert fn([]) == frozenset()


class TestNullHandling:
    def test_count_skips_none_values(self):
        rows = [Row({"b": 1}), Row({"b": None})]
        _, fn = aggregates.count("b")
        assert fn(rows) == 1

    def test_count_star_counts_every_row(self):
        rows = [Row({"b": 1}), Row({"b": None})]
        _, fn = aggregates.count()
        assert fn(rows) == 2

    def test_count_distinct_skips_none_values(self):
        rows = [Row({"b": 1}), Row({"b": 1}), Row({"b": None})]
        _, fn = aggregates.count_distinct("b")
        assert fn(rows) == 1


class TestIntegrationWithGroupBy:
    def test_counting_division_building_block(self, figure1_dividend, figure1_divisor):
        """The counting formulation of footnote 1: per-group match counts."""
        restricted = figure1_dividend.semijoin(figure1_divisor)
        counts = restricted.group_by(["a"], {"c": aggregates.count_distinct("b")})
        full = {row["a"]: row["c"] for row in counts}
        assert full == {1: 1, 2: 2, 3: 2}

    def test_multiple_aggregates_in_one_pass(self):
        relation = Relation(["g", "x"], [(1, 5), (1, 7), (2, 1)])
        result = relation.group_by(
            ["g"],
            {
                "n": aggregates.count("x"),
                "total": aggregates.sum_of("x"),
                "values": aggregates.collect_set("x"),
            },
        )
        assert result.to_tuples(["g", "n", "total", "values"]) == {
            (1, 2, 12, frozenset({5, 7})),
            (2, 1, 1, frozenset({1})),
        }
