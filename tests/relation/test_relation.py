"""Tests for the basic relational operators (Appendix A of the paper)."""

import pytest
from hypothesis import given

from repro.errors import RelationError, SchemaError
from repro.relation import NULL, Relation, aggregates
from tests.strategies import relations


class TestConstruction:
    def test_from_value_tuples(self):
        relation = Relation(["a", "b"], [(1, 2), (3, 4)])
        assert len(relation) == 2
        assert {"a": 1, "b": 2} in relation

    def test_from_mappings(self):
        relation = Relation(["a"], [{"a": 1}, {"a": 2}])
        assert relation.to_set("a") == {1, 2}

    def test_duplicates_removed(self):
        assert len(Relation(["a"], [(1,), (1,), (1,)])) == 1

    def test_wrong_arity_rejected(self):
        with pytest.raises(RelationError):
            Relation(["a", "b"], [(1,)])

    def test_wrong_attributes_rejected(self):
        with pytest.raises(RelationError):
            Relation(["a"], [{"b": 1}])

    def test_from_columns(self):
        relation = Relation.from_columns({"a": [1, 2], "b": [10, 20]})
        assert relation.to_tuples(["a", "b"]) == {(1, 10), (2, 20)}

    def test_from_columns_length_mismatch(self):
        with pytest.raises(RelationError):
            Relation.from_columns({"a": [1], "b": []})

    def test_singleton(self):
        assert len(Relation.singleton({"a": 1, "b": 2})) == 1

    def test_empty(self):
        relation = Relation.empty(["a"])
        assert relation.is_empty()
        assert not relation


class TestUnaryOperators:
    def test_project_removes_duplicates(self):
        relation = Relation(["a", "b"], [(1, 1), (1, 2)])
        assert relation.project(["a"]).to_set("a") == {1}

    def test_project_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Relation(["a"], [(1,)]).project(["z"])

    def test_select(self):
        relation = Relation(["a"], [(1,), (2,), (3,)])
        assert relation.select(lambda row: row["a"] > 1).to_set("a") == {2, 3}

    def test_rename(self):
        relation = Relation(["a"], [(1,)]).rename({"a": "x"})
        assert relation.attributes == ("x",)
        assert relation.to_set("x") == {1}

    def test_prefix(self):
        relation = Relation(["a", "b"], [(1, 2)]).prefix("t")
        assert set(relation.attributes) == {"t.a", "t.b"}


class TestSetOperators:
    def test_union(self):
        left = Relation(["a"], [(1,), (2,)])
        right = Relation(["a"], [(2,), (3,)])
        assert (left | right).to_set("a") == {1, 2, 3}

    def test_intersection(self):
        left = Relation(["a"], [(1,), (2,)])
        right = Relation(["a"], [(2,), (3,)])
        assert (left & right).to_set("a") == {2}

    def test_difference(self):
        left = Relation(["a"], [(1,), (2,)])
        right = Relation(["a"], [(2,), (3,)])
        assert (left - right).to_set("a") == {1}

    def test_schema_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(["a"], [(1,)]).union(Relation(["b"], [(1,)]))

    @given(relations(("a", "b")), relations(("a", "b")))
    def test_union_is_commutative(self, left, right):
        assert left.union(right) == right.union(left)

    @given(relations(("a", "b")), relations(("a", "b")))
    def test_difference_subset_of_left(self, left, right):
        assert set((left - right).rows) <= set(left.rows)

    @given(relations(("a", "b")), relations(("a", "b")))
    def test_intersection_via_difference(self, left, right):
        # r ∩ s = r − (r − s), a classic identity exercised as a sanity check
        assert left & right == left - (left - right)


class TestProductsAndJoins:
    def test_product(self):
        left = Relation(["a"], [(1,), (2,)])
        right = Relation(["b"], [(10,), (20,)])
        assert len(left * right) == 4

    def test_product_requires_disjoint_schemas(self):
        with pytest.raises(SchemaError):
            Relation(["a"], [(1,)]).product(Relation(["a"], [(2,)]))

    def test_theta_join(self):
        left = Relation(["a"], [(1,), (2,)])
        right = Relation(["b"], [(1,), (3,)])
        result = left.theta_join(right, lambda row: row["a"] < row["b"])
        assert result.to_tuples(["a", "b"]) == {(1, 3), (2, 3)}

    def test_natural_join_on_shared_attribute(self):
        left = Relation(["a", "b"], [(1, 10), (2, 20)])
        right = Relation(["b", "c"], [(10, "x"), (30, "y")])
        result = left.natural_join(right)
        assert result.to_tuples(["a", "b", "c"]) == {(1, 10, "x")}

    def test_natural_join_without_shared_attributes_is_product(self):
        left = Relation(["a"], [(1,)])
        right = Relation(["b"], [(2,)])
        assert left.natural_join(right) == left.product(right)

    def test_semijoin(self):
        left = Relation(["a", "b"], [(1, 10), (2, 20)])
        right = Relation(["b"], [(10,)])
        assert left.semijoin(right).to_tuples(["a", "b"]) == {(1, 10)}

    def test_semijoin_no_shared_attributes_nonempty_right(self):
        left = Relation(["a"], [(1,)])
        assert left.semijoin(Relation(["b"], [(9,)])) == left

    def test_semijoin_no_shared_attributes_empty_right(self):
        left = Relation(["a"], [(1,)])
        assert left.semijoin(Relation.empty(["b"])).is_empty()

    def test_antijoin(self):
        left = Relation(["a", "b"], [(1, 10), (2, 20)])
        right = Relation(["b"], [(10,)])
        assert left.antijoin(right).to_tuples(["a", "b"]) == {(2, 20)}

    def test_left_outer_join_pads_with_null(self):
        left = Relation(["a", "b"], [(1, 10), (2, 20)])
        right = Relation(["b", "c"], [(10, "x")])
        result = left.left_outer_join(right)
        padded = [row for row in result if row["a"] == 2]
        assert len(padded) == 1 and padded[0]["c"] is NULL

    @given(relations(("a", "b")), relations(("b",)))
    def test_semijoin_plus_antijoin_partition_left(self, left, right):
        semi = left.semijoin(right)
        anti = left.antijoin(right)
        assert semi.union(anti) == left
        assert semi.intersection(anti).is_empty()

    @given(relations(("a", "b"), max_rows=5), relations(("c",), max_rows=5))
    def test_product_cardinality(self, left, right):
        assert len(left * right) == len(left) * len(right)


class TestGrouping:
    def test_count_per_group(self):
        relation = Relation(["a", "b"], [(1, 10), (1, 20), (2, 30)])
        result = relation.group_by(["a"], {"c": aggregates.count("b")})
        assert result.to_tuples(["a", "c"]) == {(1, 2), (2, 1)}

    def test_sum_per_group_matches_figure_10(self):
        r0 = Relation(
            ["a", "x"],
            [(1, 1), (1, 2), (1, 3), (2, 1), (2, 3), (3, 1), (3, 3), (3, 4)],
        )
        result = r0.group_by(["a"], {"b": aggregates.sum_of("x")})
        assert result.to_tuples(["a", "b"]) == {(1, 6), (2, 4), (3, 8)}

    def test_global_aggregate_over_empty_relation(self):
        relation = Relation.empty(["a"])
        result = relation.group_by([], {"c": aggregates.count()})
        assert result.to_tuples(["c"]) == {(0,)}

    def test_min_max_avg(self):
        relation = Relation(["a", "x"], [(1, 2), (1, 4), (2, 6)])
        result = relation.group_by(
            ["a"],
            {
                "lo": aggregates.min_of("x"),
                "hi": aggregates.max_of("x"),
                "mean": aggregates.avg_of("x"),
            },
        )
        assert result.to_tuples(["a", "lo", "hi", "mean"]) == {(1, 2, 4, 3.0), (2, 6, 6, 6.0)}

    def test_collect_set(self):
        relation = Relation(["a", "b"], [(1, 10), (1, 20)])
        result = relation.group_by(["a"], {"s": aggregates.collect_set("b")})
        assert result.to_tuples(["a", "s"]) == {(1, frozenset({10, 20}))}

    def test_count_distinct(self):
        relation = Relation(["a", "b"], [(1, 10), (1, 10), (1, 20)])
        result = relation.group_by(["a"], {"c": aggregates.count_distinct("b")})
        assert result.to_tuples(["a", "c"]) == {(1, 2)}


class TestHelpers:
    def test_image_set(self, figure1_dividend):
        image = figure1_dividend.image_set({"a": 2}, ["b"])
        assert image.to_set("b") == {1, 2, 3, 4}

    def test_partition_horizontal(self):
        relation = Relation(["a"], [(1,), (2,), (3,)])
        low, high = relation.partition_horizontal(lambda row: row["a"] <= 1)
        assert low.to_set("a") == {1}
        assert high.to_set("a") == {2, 3}

    def test_sorted_rows(self):
        relation = Relation(["a"], [(3,), (1,), (2,)])
        assert [row["a"] for row in relation.sorted_rows()] == [1, 2, 3]

    def test_equality_is_schema_and_rows(self):
        assert Relation(["a"], [(1,)]) == Relation(["a"], [(1,)])
        assert Relation(["a"], [(1,)]) != Relation(["a"], [(2,)])
        assert Relation(["a"], [(1,)]) != Relation(["b"], [(1,)])
