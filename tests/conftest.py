"""Shared fixtures: the example relations from the paper's figures."""

from __future__ import annotations

import pytest

from repro.relation import Relation


@pytest.fixture
def figure1_dividend() -> Relation:
    """Relation r1 of Figure 1 (also used in Figure 2)."""
    return Relation(
        ["a", "b"],
        [(1, 1), (1, 4), (2, 1), (2, 2), (2, 3), (2, 4), (3, 1), (3, 3), (3, 4)],
    )


@pytest.fixture
def figure1_divisor() -> Relation:
    """Relation r2 of Figure 1."""
    return Relation(["b"], [(1,), (3,)])


@pytest.fixture
def figure1_quotient() -> Relation:
    """Relation r3 of Figure 1."""
    return Relation(["a"], [(2,), (3,)])


@pytest.fixture
def figure2_divisor() -> Relation:
    """Relation r2 of Figure 2 (great divide divisor with groups c=1, c=2)."""
    return Relation(["b", "c"], [(1, 1), (2, 1), (4, 1), (1, 2), (3, 2)])


@pytest.fixture
def figure2_quotient() -> Relation:
    """Relation r3 of Figure 2."""
    return Relation(["a", "c"], [(2, 1), (2, 2), (3, 2)])


@pytest.fixture
def figure4_dividend() -> Relation:
    """Relation r1 of Figure 4 (Law 1 example)."""
    return Relation(
        ["a", "b"],
        [
            (1, 1), (1, 4),
            (2, 1), (2, 2), (2, 3), (2, 4),
            (3, 1), (3, 3), (3, 4),
            (4, 1), (4, 3),
        ],
    )


@pytest.fixture
def figure7_relations() -> dict[str, Relation]:
    """Relations of Figure 7 (Law 8 example)."""
    return {
        "r1_star": Relation(["a1"], [(1,), (2,)]),
        "r1_star_star": Relation(
            ["a2", "b"], [(1, 1), (1, 2), (1, 3), (2, 1), (2, 3), (3, 2), (3, 3)]
        ),
        "r2": Relation(["b"], [(2,), (3,)]),
        "quotient": Relation(["a1", "a2"], [(1, 1), (1, 3), (2, 1), (2, 3)]),
    }


@pytest.fixture
def figure8_relations() -> dict[str, Relation]:
    """Relations of Figure 8 (Law 9 example)."""
    return {
        "r1_star": Relation(
            ["a", "b1"],
            [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 1), (3, 3), (3, 4)],
        ),
        "r1_star_star": Relation(["b2"], [(1,), (2,)]),
        "r2": Relation(["b1", "b2"], [(1, 2), (3, 1), (3, 2)]),
        "quotient": Relation(["a"], [(1,), (3,)]),
    }


@pytest.fixture
def figure9_relations() -> dict[str, Relation]:
    """Relations of Figure 9 (Example 3 illustration)."""
    return {
        "r1_star": Relation(
            ["a", "b1"],
            [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 1), (3, 3), (3, 4)],
        ),
        "r1_star_star": Relation(["b2"], [(1,), (2,), (4,)]),
        "r2": Relation(["b1", "b2"], [(1, 4), (3, 4)]),
        "quotient": Relation(["a"], [(1,), (3,)]),
    }


@pytest.fixture
def figure10_relations() -> dict[str, Relation]:
    """Relations of Figure 10 (Law 11 example)."""
    return {
        "r0": Relation(
            ["a", "x"],
            [(1, 1), (1, 2), (1, 3), (2, 1), (2, 3), (3, 1), (3, 3), (3, 4)],
        ),
        "r1": Relation(["a", "b"], [(1, 6), (2, 4), (3, 8)]),
        "r2": Relation(["b"], [(4,)]),
        "quotient": Relation(["a"], [(2,)]),
    }


@pytest.fixture
def figure11_relations() -> dict[str, Relation]:
    """Relations of Figure 11 (Law 12 example)."""
    return {
        "r0": Relation(
            ["x", "b"],
            [(1, 1), (1, 2), (1, 3), (2, 1), (2, 3), (3, 1), (3, 3), (3, 4)],
        ),
        "r1": Relation(["a", "b"], [(6, 1), (1, 2), (6, 3), (3, 4)]),
        "r2": Relation(["b"], [(1,), (3,)]),
        "quotient": Relation(["a"], [(6,)]),
    }
