"""Tests for the synthetic workload generators."""

import pytest

from repro.division import great_divide, small_divide
from repro.errors import WorkloadError
from repro.laws.conditions import condition_c2
from repro.workloads import (
    generate_catalog,
    make_dividend,
    make_division_workload,
    make_divisor,
    make_great_division_workload,
    make_great_divisor,
    random_databases,
    random_relation,
    split_dividend_by_quotient,
    split_horizontal,
    textbook_catalog,
)


class TestSmallDivideWorkloads:
    def test_divisor_size_and_schema(self):
        divisor = make_divisor(5)
        assert len(divisor) == 5
        assert divisor.schema.names == ("b",)

    def test_divisor_from_domain(self):
        divisor = make_divisor(3, domain=range(100, 110), seed=1)
        assert divisor.to_set("b") <= set(range(100, 110))

    def test_divisor_domain_too_small(self):
        with pytest.raises(WorkloadError):
            make_divisor(5, domain=range(3))

    def test_workload_has_expected_quotient_size(self):
        workload = make_division_workload(num_groups=50, divisor_size=6, containing_fraction=0.3, seed=3)
        quotient = small_divide(workload.dividend, workload.divisor)
        assert len(quotient) == workload.expected_quotient_size == 15

    def test_containing_fraction_extremes(self):
        full = make_division_workload(num_groups=20, containing_fraction=1.0, seed=1)
        none = make_division_workload(num_groups=20, containing_fraction=0.0, seed=1)
        assert len(small_divide(full.dividend, full.divisor)) == 20
        assert len(small_divide(none.dividend, none.divisor)) == 0

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            make_dividend(-1, make_divisor(2))
        with pytest.raises(WorkloadError):
            make_dividend(5, make_divisor(2), containing_fraction=1.5)

    def test_determinism(self):
        a = make_division_workload(seed=42)
        b = make_division_workload(seed=42)
        assert a.dividend == b.dividend and a.divisor == b.divisor


class TestGreatDivideWorkloads:
    def test_divisor_group_structure(self):
        divisor = make_great_divisor(num_groups=4, group_size=3, domain_size=20, seed=0)
        assert divisor.project(["c"]).to_set("c") == {0, 1, 2, 3}
        for group in range(4):
            assert len(divisor.select(lambda row, g=group: row["c"] == g)) == 3

    def test_group_size_validation(self):
        with pytest.raises(WorkloadError):
            make_great_divisor(num_groups=1, group_size=10, domain_size=5)

    def test_workload_expected_quotient_size(self):
        workload = make_great_division_workload(seed=21)
        quotient = great_divide(workload.dividend, workload.divisor)
        assert len(quotient) == workload.expected_quotient_size


class TestPartitioning:
    def test_split_horizontal_partitions_rows(self, figure1_dividend):
        left, right = split_horizontal(figure1_dividend, fraction=0.4, seed=1)
        assert left.union(right) == figure1_dividend
        assert left.intersection(right).is_empty()

    def test_split_horizontal_validation(self, figure1_dividend):
        with pytest.raises(WorkloadError):
            split_horizontal(figure1_dividend, fraction=2.0)

    def test_split_by_quotient_satisfies_c2(self, figure1_dividend):
        low, high = split_dividend_by_quotient(figure1_dividend, "a")
        assert condition_c2(low, high, ["a"])
        assert low.union(high) == figure1_dividend


class TestSuppliersParts:
    def test_textbook_catalog_contents(self):
        catalog = textbook_catalog()
        assert set(catalog) == {"parts", "supplies"}
        catalog.validate()

    def test_generated_catalog_respects_parameters(self):
        catalog = generate_catalog(num_suppliers=10, num_parts=8, parts_per_supplier=4, seed=0)
        assert len(catalog["supplies"].project(["s_no"])) == 10
        assert len(catalog["parts"]) == 8
        catalog.validate()

    def test_generated_catalog_validation(self):
        with pytest.raises(WorkloadError):
            generate_catalog(num_parts=3, parts_per_supplier=5)


class TestRandomDatabases:
    def test_random_relation_bounds(self):
        relation = random_relation(("a", "b"), max_rows=5)
        assert len(relation) <= 5
        assert relation.schema.names == ("a", "b")

    def test_random_databases_yield_requested_count(self):
        databases = list(random_databases({"r1": ("a", "b"), "r2": ("b",)}, count=7, seed=1))
        assert len(databases) == 7
        assert all(set(db) == {"r1", "r2"} for db in databases)
