"""Metamorphic integration tests.

Random logical expression trees are generated over a small schema, and the
test asserts that three independent paths through the library agree:

1. direct logical evaluation of the expression,
2. the physical plan produced by the planner,
3. the physical plan of the expression after heuristic rewriting.

This catches integration bugs between the algebra, the laws, the planner
and the physical operators that the per-module tests cannot see.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.catalog import Catalog
from repro.laws import RewriteContext
from repro.optimizer import HeuristicRewriter, PhysicalPlanner, PlannerOptions
from repro.relation import Relation
from tests.strategies import relations

#: Predicates applicable to the quotient attribute of the small schema.
PREDICATES = st.sampled_from(
    [
        P.TRUE,
        P.equals(P.attr("a"), 1),
        P.less_than(P.attr("a"), 2),
        P.not_equals(P.attr("a"), 3),
    ]
)


@st.composite
def expression_trees(draw):
    """A random expression over tables r1(a, b) and r2(b).

    The generator is biased towards shapes the laws can fire on: divides
    whose inputs are selections, unions, intersections, products and
    semi-joins.
    """
    r1 = B.ref("r1", ["a", "b"])
    r2 = B.ref("r2", ["b"])

    dividend = r1
    wrapper = draw(st.sampled_from(["plain", "select", "union", "intersection", "semijoin"]))
    if wrapper == "select":
        dividend = B.select(r1, draw(PREDICATES))
    elif wrapper == "union":
        dividend = B.union(r1, B.ref("r1b", ["a", "b"]))
    elif wrapper == "intersection":
        dividend = B.intersection(r1, B.ref("r1b", ["a", "b"]))
    elif wrapper == "semijoin":
        dividend = B.semijoin(r1, B.ref("filter_a", ["a"]))

    divisor = r2
    divisor_wrapper = draw(st.sampled_from(["plain", "select", "union"]))
    if divisor_wrapper == "select":
        divisor = B.select(r2, draw(st.sampled_from([P.less_than(P.attr("b"), 2), P.TRUE])))
    elif divisor_wrapper == "union":
        divisor = B.union(r2, B.ref("r2b", ["b"]))

    expression = B.divide(dividend, divisor)
    top = draw(st.sampled_from(["plain", "select", "project", "semijoin"]))
    if top == "select":
        expression = B.select(expression, draw(PREDICATES))
    elif top == "project":
        expression = B.project(expression, ["a"])
    elif top == "semijoin":
        expression = B.semijoin(expression, B.ref("filter_a", ["a"]))
    return expression


@st.composite
def catalogs(draw):
    """A random database over the fixed schema used by expression_trees."""
    catalog = Catalog()
    catalog.add_table("r1", draw(relations(("a", "b"), max_rows=10)))
    catalog.add_table("r1b", draw(relations(("a", "b"), max_rows=8)))
    catalog.add_table("r2", draw(relations(("b",), max_rows=4)))
    catalog.add_table("r2b", draw(relations(("b",), max_rows=3)))
    catalog.add_table("filter_a", draw(relations(("a",), max_rows=4)))
    return catalog


class TestPlannerAgreesWithLogicalEvaluation:
    @settings(max_examples=60, deadline=None)
    @given(expression=expression_trees(), catalog=catalogs())
    def test_default_planner(self, expression, catalog):
        logical = expression.evaluate(catalog)
        physical = PhysicalPlanner(catalog).plan(expression).execute()
        assert physical == logical

    @settings(max_examples=30, deadline=None)
    @given(expression=expression_trees(), catalog=catalogs())
    def test_every_division_algorithm(self, expression, catalog):
        logical = expression.evaluate(catalog)
        for algorithm in ("nested_loops", "merge_sort", "merge_count"):
            planner = PhysicalPlanner(catalog, PlannerOptions(small_divide_algorithm=algorithm))
            assert planner.plan(expression).execute() == logical


class TestRewriterPreservesSemantics:
    @settings(max_examples=60, deadline=None)
    @given(expression=expression_trees(), catalog=catalogs())
    def test_heuristic_rewriting_with_all_rules(self, expression, catalog):
        rewriter = HeuristicRewriter(context=RewriteContext.from_catalog(catalog))
        report = rewriter.rewrite(expression)
        assert report.result.evaluate(catalog) == expression.evaluate(catalog)

    @settings(max_examples=30, deadline=None)
    @given(expression=expression_trees(), catalog=catalogs())
    def test_rewritten_plan_executes_identically(self, expression, catalog):
        rewriter = HeuristicRewriter(context=RewriteContext.from_catalog(catalog))
        rewritten = rewriter.rewrite(expression).result
        physical = PhysicalPlanner(catalog).plan(rewritten).execute()
        assert physical == expression.evaluate(catalog)


class TestEndToEndSQL:
    def test_sql_to_execution_roundtrip(self):
        """SQL → algebra → optimizer → physical plan → relation, end to end."""
        from repro.optimizer import Optimizer
        from repro.sql import translate_sql
        from repro.workloads import generate_catalog

        catalog = generate_catalog(num_suppliers=20, num_parts=15, parts_per_supplier=6, seed=3)
        sql = "SELECT s_no, color FROM supplies AS s DIVIDE BY parts AS p ON s.p_no = p.p_no"
        expression = translate_sql(sql, catalog)
        optimizer = Optimizer(catalog)
        executed = optimizer.execute(expression)
        assert executed.relation == expression.evaluate(catalog)

    def test_sql_subquery_divisor_roundtrip(self):
        from repro.optimizer import Optimizer
        from repro.sql import translate_sql
        from repro.workloads import generate_catalog

        catalog = generate_catalog(num_suppliers=20, num_parts=15, parts_per_supplier=6, seed=4)
        sql = (
            "SELECT s_no FROM supplies AS s DIVIDE BY ("
            "SELECT p_no FROM parts WHERE color = 'blue') AS p ON s.p_no = p.p_no"
        )
        expression = translate_sql(sql, catalog)
        executed = Optimizer(catalog).execute(expression)
        assert executed.relation == expression.evaluate(catalog)
