"""Unit tests for fault plans and the injection registry."""

import pickle

import pytest

from repro.errors import InjectedFaultError, ReproError
from repro.faults import (
    ACTIONS,
    FAULT_POINTS,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_plan,
    draw,
    fire,
    injection_counters,
    install_plan,
    reset_counters,
)


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with no plan armed and zero counters."""
    clear_plan()
    reset_counters()
    yield
    clear_plan()
    reset_counters()


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(point="pool.worker")
        assert spec.action == "raise"
        assert spec.probability == 1.0
        assert spec.limit is None

    def test_rejects_unknown_action(self):
        with pytest.raises(ReproError, match="unknown fault action"):
            FaultSpec(point="pool.worker", action="explode")

    def test_rejects_bad_probability(self):
        with pytest.raises(ReproError, match="probability"):
            FaultSpec(point="pool.worker", probability=1.5)

    def test_rejects_bad_limit(self):
        with pytest.raises(ReproError, match="limit"):
            FaultSpec(point="pool.worker", limit=0)

    def test_rejects_empty_point(self):
        with pytest.raises(ReproError, match="point"):
            FaultSpec(point="")

    def test_actions_registry(self):
        assert ACTIONS == {"raise", "delay", "corrupt", "crash"}


class TestFaultPlanParse:
    def test_parse_full_entry(self):
        plan = FaultPlan.parse("storage.block_read:corrupt:0.5:3", seed=7)
        (spec,) = plan.specs
        assert spec.point == "storage.block_read"
        assert spec.action == "corrupt"
        assert spec.probability == 0.5
        assert spec.limit == 3
        assert plan.seed == 7

    def test_parse_defaults(self):
        plan = FaultPlan.parse("pool.worker")
        (spec,) = plan.specs
        assert spec.action == "raise" and spec.probability == 1.0 and spec.limit is None

    def test_parse_multiple_entries(self):
        plan = FaultPlan.parse("pool.worker:crash:1:1; spill.write:raise, storage.manifest_load")
        assert plan.points() == ("pool.worker", "spill.write", "storage.manifest_load")

    def test_parse_empty_is_falsy(self):
        assert not FaultPlan.parse("")
        assert bool(FaultPlan.parse("pool.worker"))

    def test_parse_rejects_malformed(self):
        with pytest.raises(ReproError, match="REPRO_FAULTS"):
            FaultPlan.parse("pool.worker:raise:not-a-number")
        with pytest.raises(ReproError, match="REPRO_FAULTS"):
            FaultPlan.parse("a:b:c:d:e")

    def test_unregistered_points_are_constructible(self):
        """Typos are caught by the RP704 verifier, not at parse time."""
        plan = FaultPlan.parse("pool.workerz")
        assert plan.points() == ("pool.workerz",)
        install_plan(plan)
        assert active_plan() is plan


class TestRegistry:
    def test_every_registered_point_is_dotted(self):
        for point in FAULT_POINTS:
            layer, _, name = point.partition(".")
            assert layer and name

    def test_no_plan_means_no_firing(self):
        assert draw("pool.worker") is None
        assert fire("pool.worker", b"data") == b"data"
        assert injection_counters() == {}

    def test_raise_fires_typed_error_with_point(self):
        install_plan(FaultPlan((FaultSpec(point="spill.write"),)))
        with pytest.raises(InjectedFaultError) as excinfo:
            fire("spill.write")
        assert excinfo.value.point == "spill.write"
        assert injection_counters() == {"spill.write": 1}

    def test_limit_caps_firings(self):
        install_plan(FaultPlan((FaultSpec(point="spill.write", limit=2),)))
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                fire("spill.write")
        assert fire("spill.write", b"ok") == b"ok"
        assert injection_counters() == {"spill.write": 2}

    def test_corrupt_flips_exactly_one_byte(self):
        install_plan(FaultPlan((FaultSpec(point="storage.block_read", action="corrupt"),)))
        payload = bytes(range(32))
        corrupted = fire("storage.block_read", payload)
        assert corrupted != payload
        assert len(corrupted) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, corrupted)) if a != b]
        assert diffs == [len(payload) // 2]

    def test_corrupt_without_payload_degrades_to_raise(self):
        install_plan(FaultPlan((FaultSpec(point="pool.dispatch", action="corrupt"),)))
        with pytest.raises(InjectedFaultError):
            fire("pool.dispatch")

    def test_probability_stream_is_deterministic(self):
        def decisions():
            install_plan(
                FaultPlan((FaultSpec(point="pool.worker", probability=0.5),), seed=42)
            )
            return tuple(draw("pool.worker") is not None for _ in range(64))

        first, second = decisions(), decisions()
        assert first == second
        assert any(first) and not all(first)

    def test_per_point_streams_are_independent(self):
        """Adding a spec for one point never shifts another point's draws."""
        spec_a = FaultSpec(point="pool.worker", probability=0.5)
        spec_b = FaultSpec(point="spill.read", probability=0.5)
        install_plan(FaultPlan((spec_a,), seed=9))
        alone = tuple(draw("pool.worker") is not None for _ in range(32))
        install_plan(FaultPlan((spec_a, spec_b), seed=9))
        together = tuple(draw("pool.worker") is not None for _ in range(32))
        assert alone == together

    def test_counters_survive_reinstall(self):
        install_plan(FaultPlan((FaultSpec(point="spill.write"),)))
        with pytest.raises(InjectedFaultError):
            fire("spill.write")
        install_plan(FaultPlan((FaultSpec(point="spill.read"),)))
        assert injection_counters() == {"spill.write": 1}

    def test_install_rejects_non_plan(self):
        with pytest.raises(TypeError):
            install_plan("pool.worker:raise")

    def test_injected_error_pickles(self):
        error = InjectedFaultError("injected fault at spill.read", point="spill.read")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.point == "spill.read"
        assert str(clone) == str(error)
