"""The chaos sweep: every fault point x every division algorithm.

The contract under injection is *fail-stop, never fail-wrong*: a run with
an armed fault plan either produces the bit-identical quotient (faults
absorbed by retries/degradation) or raises one of the documented typed
errors — ``InjectedFaultError``, ``StorageError`` (including the
corruption subclass) or ``WorkerError``.  A silently wrong quotient fails
the sweep.
"""

import pytest

from repro.errors import InjectedFaultError, StorageError, WorkerError
from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan, reset_counters
from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    PartitionedDivision,
    RelationScan,
    execute_plan,
)
from repro.physical.parallel import pool as pool_module
from repro.relation import Relation
from repro.storage.scan import StoredScan
from repro.storage.store import load_store, save_database

#: The fault points the sweep drives, with the action that exercises the
#: most interesting recovery path at each: pool faults are retryable, a
#: corrupted block/manifest must be *detected* (checksums), spill faults
#: hit the out-of-core path.
SWEEP = {
    "pool.dispatch": "raise",
    "pool.worker": "raise",
    "storage.block_read": "corrupt",
    "storage.manifest_load": "corrupt",
    "spill.write": "raise",
    "spill.read": "corrupt",
}

#: Errors the contract allows a chaos run to surface.
TYPED_ERRORS = (InjectedFaultError, StorageError, WorkerError)

ALGORITHMS = [("small", name) for name in sorted(SMALL_DIVIDE_ALGORITHMS)] + [
    ("great", name) for name in sorted(GREAT_DIVIDE_ALGORITHMS)
]

PARTITIONS = 4


def _dividend():
    # 40 candidate groups, half of which contain the divisor.
    rows = []
    for a in range(40):
        values = (1, 2, 3) if a % 2 else (1, 3)
        rows.extend((a, b) for b in values)
    return Relation(("a", "b"), rows)


def _small_divisor():
    return Relation(("b",), [(1,), (2,), (3,)])


def _great_divisor():
    return Relation(("b", "c"), [(1, 10), (2, 10), (1, 20), (3, 20)])


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A saved store plus the fault-free quotient for each division kind."""
    path = tmp_path_factory.mktemp("chaos-store")
    from repro.algebra.catalog import Catalog

    catalog = Catalog()
    catalog.add_table("dividend", _dividend())
    catalog.add_table("small_divisor", _small_divisor())
    catalog.add_table("great_divisor", _great_divisor())
    save_database(path, catalog)
    expected = {
        "small": execute_plan(
            SMALL_DIVIDE_ALGORITHMS["hash"](
                RelationScan(_dividend()), RelationScan(_small_divisor())
            )
        ).relation,
        "great": execute_plan(
            GREAT_DIVIDE_ALGORITHMS["hash"](
                RelationScan(_dividend()), RelationScan(_great_divisor())
            )
        ).relation,
    }
    return path, expected


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    reset_counters()
    yield
    clear_plan()
    reset_counters()


def _build_plan(path, kind, algorithm, workers):
    catalog, _versions, _views = load_store(path)
    divisor = "small_divisor" if kind == "small" else "great_divisor"
    return PartitionedDivision(
        StoredScan(catalog["dividend"], table="dividend"),
        StoredScan(catalog[divisor], table=divisor),
        algorithm=algorithm,
        kind=kind,
        partitions=PARTITIONS,
        workers=workers,
    )


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("kind,algorithm", ALGORITHMS)
@pytest.mark.parametrize("point", sorted(SWEEP))
def test_chaos_sweep(store, point, kind, algorithm, workers):
    """Armed fault at ``point``: exact quotient or a documented typed error."""
    path, expected = store
    install_plan(
        FaultPlan((FaultSpec(point=point, action=SWEEP[point], limit=3),), seed=17)
    )
    # A tiny budget forces the exchange through the spill path, so the
    # spill.* points actually sit on the executed path.
    budget = 0.01 if point.startswith("spill.") else None
    try:
        plan = _build_plan(path, kind, algorithm, workers)
        result = execute_plan(plan, workers=workers, memory_budget_mb=budget)
    except TYPED_ERRORS:
        return  # fail-stop: detected and typed, never silent
    assert result.relation == expected[kind]


class TestRecoveryProducesExactQuotient:
    """Bounded faults that the supervisor must fully absorb."""

    def test_worker_raise_is_retried_to_success(self, store):
        path, expected = store
        install_plan(FaultPlan((FaultSpec(point="pool.worker", limit=2),), seed=3))
        plan = _build_plan(path, "small", "hash", workers=4)
        result = execute_plan(plan, workers=4)
        assert result.relation == expected["small"]
        assert result.statistics.tasks_retried >= 1
        assert result.statistics.faults_injected.get("pool.worker", 0) >= 1

    def test_worker_crash_rebuilds_pool_and_resubmits(self, store):
        path, expected = store
        install_plan(
            FaultPlan((FaultSpec(point="pool.worker", action="crash", limit=1),), seed=3)
        )
        plan = _build_plan(path, "small", "merge_count", workers=4)
        result = execute_plan(plan, workers=4)
        assert result.relation == expected["small"]
        assert result.statistics.tasks_retried >= 1
        # The discarded pool must not leak into later queries.
        clear_plan()
        again = execute_plan(_build_plan(path, "small", "merge_count", workers=4), workers=4)
        assert again.relation == expected["small"]

    def test_exhausted_retries_degrade_inline(self, store):
        """An unbounded dispatch fault still terminates — inline, correctly."""
        path, expected = store
        install_plan(FaultPlan((FaultSpec(point="pool.dispatch"),), seed=3))
        plan = _build_plan(path, "great", "groupwise", workers=4)
        result = execute_plan(plan, workers=4)
        assert result.relation == expected["great"]
        assert result.statistics.tasks_degraded == PARTITIONS

    def test_inline_path_is_supervised_too(self, store):
        path, expected = store
        install_plan(FaultPlan((FaultSpec(point="pool.worker", limit=1),), seed=3))
        plan = _build_plan(path, "small", "nested_loops", workers=1)
        result = execute_plan(plan, workers=1)
        assert result.relation == expected["small"]
        assert result.statistics.tasks_retried == 1

    def test_probabilistic_corruption_never_yields_wrong_blocks(self, store):
        """50%-probability block corruption across many reads: every firing
        is either absorbed (impossible for corrupt) or typed — and a clean
        pass is bit-identical."""
        path, expected = store
        install_plan(
            FaultPlan(
                (FaultSpec(point="storage.block_read", action="corrupt", probability=0.5),),
                seed=23,
            )
        )
        outcomes = set()
        for _ in range(6):
            try:
                plan = _build_plan(path, "small", "merge_sort", workers=1)
                result = execute_plan(plan, workers=1)
            except TYPED_ERRORS:
                outcomes.add("typed")
            else:
                assert result.relation == expected["small"]
                outcomes.add("exact")
        assert "typed" in outcomes  # the plan did fire at least once


@pytest.fixture(scope="module", autouse=True)
def teardown_pool():
    yield
    pool_module.shutdown_pool()
