"""Hypothesis strategies shared by the property-based tests.

The domains are intentionally tiny (a handful of attribute values) so that
interesting containment relationships — full groups, empty divisors,
overlapping partitions — occur with high probability in small examples.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.relation import Relation

#: Small value domain; collisions are the point.
VALUES = st.integers(min_value=0, max_value=3)


def relations(attributes, min_rows: int = 0, max_rows: int = 8, values=VALUES):
    """Strategy producing relations over ``attributes``."""
    attributes = tuple(attributes)
    row = st.tuples(*([values] * len(attributes)))
    return st.lists(row, min_size=min_rows, max_size=max_rows).map(
        lambda rows: Relation(attributes, rows)
    )


def dividends(min_rows: int = 0, max_rows: int = 12):
    """Dividend relations r1(a, b)."""
    return relations(("a", "b"), min_rows=min_rows, max_rows=max_rows)


def divisors(min_rows: int = 0, max_rows: int = 4):
    """Small-divide divisor relations r2(b)."""
    return relations(("b",), min_rows=min_rows, max_rows=max_rows)


def nonempty_divisors(max_rows: int = 4):
    """Divisor relations with at least one tuple."""
    return divisors(min_rows=1, max_rows=max_rows)


def great_divisors(min_rows: int = 0, max_rows: int = 8):
    """Great-divide divisor relations r2(b, c)."""
    return relations(("b", "c"), min_rows=min_rows, max_rows=max_rows)


def wide_dividends(min_rows: int = 0, max_rows: int = 12):
    """Dividend relations r1(a, b1, b2) for the product/join laws."""
    return relations(("a", "b1", "b2"), min_rows=min_rows, max_rows=max_rows)
