"""Tests for the great divide and Theorem 1 (equivalence of definitions)."""

import pytest
from hypothesis import given

from repro.division import (
    GREAT_DIVIDE_DEFINITIONS,
    demolombe_divide,
    great_divide,
    set_containment_divide,
    small_divide,
    todd_divide,
)
from repro.errors import DivisionError
from repro.relation import Relation
from tests.strategies import dividends, great_divisors


class TestFigure2:
    """The worked example of Figure 2: r1 ÷* r2 = r3."""

    @pytest.mark.parametrize("name", sorted(GREAT_DIVIDE_DEFINITIONS))
    def test_every_definition_reproduces_figure_2(
        self, name, figure1_dividend, figure2_divisor, figure2_quotient
    ):
        divide = GREAT_DIVIDE_DEFINITIONS[name]
        assert divide(figure1_dividend, figure2_divisor) == figure2_quotient

    def test_quotient_schema_is_a_union_c(self, figure1_dividend, figure2_divisor):
        result = great_divide(figure1_dividend, figure2_divisor)
        assert set(result.attributes) == {"a", "c"}


class TestTheorem1:
    """Theorem 1: ÷*1 (set containment), ÷*2 (Demolombe), ÷*3 (Todd) coincide."""

    @given(dividends(), great_divisors())
    def test_definitions_agree_on_random_inputs(self, dividend, divisor):
        reference = great_divide(dividend, divisor)
        assert set_containment_divide(dividend, divisor) == reference
        assert demolombe_divide(dividend, divisor) == reference
        assert todd_divide(dividend, divisor) == reference

    @given(dividends(), great_divisors())
    def test_quotient_pairs_satisfy_containment(self, dividend, divisor):
        """Every output pair (a, c) really is a containment witness."""
        result = great_divide(dividend, divisor)
        for row in result:
            group = dividend.image_set({"a": row["a"]}, ["b"]).to_set("b")
            needed = divisor.image_set({"c": row["c"]}, ["b"]).to_set("b")
            assert needed <= group

    @given(dividends(), great_divisors(min_rows=1))
    def test_non_quotient_pairs_fail_containment(self, dividend, divisor):
        result = great_divide(dividend, divisor)
        quotient_pairs = result.to_tuples(["a", "c"])
        for a in dividend.project(["a"]).to_set("a"):
            group = dividend.image_set({"a": a}, ["b"]).to_set("b")
            for c in divisor.project(["c"]).to_set("c"):
                needed = divisor.image_set({"c": c}, ["b"]).to_set("b")
                assert ((a, c) in quotient_pairs) == (needed <= group)


class TestDegenerationAndEdgeCases:
    def test_degenerates_to_small_divide_for_single_group(self, figure1_dividend, figure1_divisor):
        """With one divisor group, ÷* returns the small-divide quotient plus the group id."""
        divisor = figure1_divisor.product(Relation(["c"], [(7,)]))
        result = great_divide(figure1_dividend, divisor)
        small = small_divide(figure1_dividend, figure1_divisor)
        assert result.project(["a"]) == small
        assert result.to_set("c") == {7}

    def test_empty_divisor_yields_empty_quotient(self, figure1_dividend):
        assert great_divide(figure1_dividend, Relation.empty(["b", "c"])).is_empty()

    def test_empty_dividend_yields_empty_quotient(self, figure2_divisor):
        assert great_divide(Relation.empty(["a", "b"]), figure2_divisor).is_empty()

    def test_divisor_group_not_contained_anywhere(self, figure1_dividend):
        divisor = Relation(["b", "c"], [(99, 1)])
        assert great_divide(figure1_dividend, divisor).is_empty()

    def test_requires_shared_attributes(self):
        with pytest.raises(DivisionError):
            great_divide(Relation(["a", "b"], []), Relation(["x", "c"], []))

    def test_requires_dividend_only_attributes(self):
        with pytest.raises(DivisionError):
            great_divide(Relation(["b"], [(1,)]), Relation(["b", "c"], [(1, 1)]))

    def test_multi_attribute_b_and_c(self):
        dividend = Relation(
            ["a", "b1", "b2"],
            [(1, 1, 1), (1, 2, 2), (2, 1, 1)],
        )
        divisor = Relation(
            ["b1", "b2", "c1", "c2"],
            [(1, 1, "g", 0), (2, 2, "g", 0), (1, 1, "h", 1)],
        )
        result = great_divide(dividend, divisor)
        assert result.to_tuples(["a", "c1", "c2"]) == {(1, "g", 0), (1, "h", 1), (2, "h", 1)}

    def test_frequent_itemset_shape(self):
        """The Section 3 mining query: transactions ÷* candidates."""
        transactions = Relation(
            ["tid", "item"],
            [
                (100, "bread"), (100, "milk"), (100, "beer"),
                (200, "bread"), (200, "milk"),
                (300, "beer"),
            ],
        )
        candidates = Relation(
            ["item", "itemset"],
            [("bread", "c1"), ("milk", "c1"), ("beer", "c2")],
        )
        result = great_divide(transactions, candidates)
        assert result.to_tuples(["tid", "itemset"]) == {
            (100, "c1"),
            (200, "c1"),
            (100, "c2"),
            (300, "c2"),
        }
