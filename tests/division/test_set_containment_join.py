"""Tests for the set containment join and the nest/unnest helpers (Figure 3)."""

import pytest
from hypothesis import given

from repro.division import (
    containment_join_via_great_divide,
    great_divide,
    nest,
    set_containment_join,
    unnest,
)
from repro.errors import SchemaError
from repro.relation import Relation
from tests.strategies import dividends, great_divisors


@pytest.fixture
def nested_dividend(figure1_dividend):
    """Figure 3 (a): r1 nested on b into the set-valued attribute b1."""
    return nest(figure1_dividend, "b", "b1")


@pytest.fixture
def nested_divisor(figure2_divisor):
    """Figure 3 (b): r2 nested on b into the set-valued attribute b2."""
    return nest(figure2_divisor, "b", "b2")


class TestNesting:
    def test_nest_matches_figure_3a(self, nested_dividend):
        assert nested_dividend.to_tuples(["a", "b1"]) == {
            (1, frozenset({1, 4})),
            (2, frozenset({1, 2, 3, 4})),
            (3, frozenset({1, 3, 4})),
        }

    def test_nest_matches_figure_3b(self, nested_divisor):
        assert nested_divisor.to_tuples(["c", "b2"]) == {
            (1, frozenset({1, 2, 4})),
            (2, frozenset({1, 3})),
        }

    def test_unnest_inverts_nest(self, figure1_dividend, nested_dividend):
        assert unnest(nested_dividend, "b1", "b") == figure1_dividend

    def test_nest_rejects_existing_target(self, figure1_dividend):
        with pytest.raises(SchemaError):
            nest(figure1_dividend, "b", "a")

    def test_unnest_rejects_existing_target(self, nested_dividend):
        with pytest.raises(SchemaError):
            unnest(nested_dividend, "b1", "a")

    @given(dividends(min_rows=0, max_rows=10))
    def test_nest_unnest_roundtrip(self, relation):
        assert unnest(nest(relation, "b", "bs"), "bs", "b") == relation


class TestSetContainmentJoin:
    def test_reproduces_figure_3(self, nested_dividend, nested_divisor):
        result = set_containment_join(nested_dividend, nested_divisor, "b1", "b2")
        assert result.to_tuples(["a", "b1", "b2", "c"]) == {
            (2, frozenset({1, 2, 3, 4}), frozenset({1, 2, 4}), 1),
            (2, frozenset({1, 2, 3, 4}), frozenset({1, 3}), 2),
            (3, frozenset({1, 3, 4}), frozenset({1, 3}), 2),
        }

    def test_empty_right_set_matches_everything(self, nested_dividend):
        """Difference 3 in the paper: the join allows empty sets, division does not."""
        divisor = Relation(["b2", "c"], [(frozenset(), 9)])
        result = set_containment_join(nested_dividend, divisor, "b1", "b2")
        assert len(result) == len(nested_dividend)

    def test_rejects_shared_attribute_names(self, nested_dividend):
        with pytest.raises(SchemaError):
            set_containment_join(nested_dividend, nested_dividend, "b1", "b1")

    def test_preserves_join_attributes(self, nested_dividend, nested_divisor):
        """Difference 2 in the paper: the join keeps b1/b2, division drops them."""
        joined = set_containment_join(nested_dividend, nested_divisor, "b1", "b2")
        assert {"b1", "b2"} <= set(joined.attributes)


class TestAgreementWithGreatDivide:
    def test_figure_2_and_figure_3_agree(self, figure1_dividend, figure2_divisor, figure2_quotient):
        via_divide = containment_join_via_great_divide(figure1_dividend, figure2_divisor)
        assert via_divide == figure2_quotient

    @given(dividends(min_rows=1), great_divisors(min_rows=1))
    def test_join_projection_equals_great_divide(self, dividend, divisor):
        """π_{A∪C} of the set containment join equals the great divide.

        (Both inputs are nonempty and the nest construction never produces
        empty sets, so the paper's semantic differences do not apply.)
        """
        nested_left = nest(dividend, "b", "bset_l")
        nested_right = nest(divisor, "b", "bset_r")
        joined = set_containment_join(nested_left, nested_right, "bset_l", "bset_r")
        projected = joined.project(["a", "c"])
        assert projected == great_divide(dividend, divisor)
