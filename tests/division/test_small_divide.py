"""Tests for the small divide operator and its equivalent definitions."""

import pytest
from hypothesis import given

from repro.division import (
    SMALL_DIVIDE_DEFINITIONS,
    codd_divide,
    counting_divide,
    forall_divide,
    healy_divide,
    maier_divide,
    small_divide,
)
from repro.errors import DivisionError
from repro.relation import Relation
from tests.strategies import dividends, divisors


class TestFigure1:
    """The worked example of Figure 1: r1 ÷ r2 = r3."""

    @pytest.mark.parametrize("name", sorted(SMALL_DIVIDE_DEFINITIONS))
    def test_every_definition_reproduces_figure_1(
        self, name, figure1_dividend, figure1_divisor, figure1_quotient
    ):
        divide = SMALL_DIVIDE_DEFINITIONS[name]
        assert divide(figure1_dividend, figure1_divisor) == figure1_quotient

    def test_quotient_schema_is_dividend_minus_divisor(self, figure1_dividend, figure1_divisor):
        assert small_divide(figure1_dividend, figure1_divisor).attributes == ("a",)


class TestSchemaValidation:
    def test_divisor_must_be_subset_of_dividend(self):
        with pytest.raises(DivisionError):
            small_divide(Relation(["a", "b"], []), Relation(["z"], []))

    def test_quotient_attributes_must_be_nonempty(self):
        with pytest.raises(DivisionError):
            small_divide(Relation(["b"], [(1,)]), Relation(["b"], [(1,)]))

    def test_divisor_schema_must_be_nonempty(self):
        with pytest.raises(DivisionError):
            small_divide(Relation(["a", "b"], []), Relation([], []))


class TestEdgeCases:
    def test_empty_divisor_yields_all_candidates(self, figure1_dividend):
        result = small_divide(figure1_dividend, Relation.empty(["b"]))
        assert result.to_set("a") == {1, 2, 3}

    def test_empty_dividend_yields_empty_quotient(self):
        result = small_divide(Relation.empty(["a", "b"]), Relation(["b"], [(1,)]))
        assert result.is_empty()

    def test_divisor_value_absent_from_dividend(self, figure1_dividend):
        result = small_divide(figure1_dividend, Relation(["b"], [(99,)]))
        assert result.is_empty()

    def test_multi_attribute_divisor(self):
        dividend = Relation(
            ["a", "b1", "b2"],
            [(1, 1, 1), (1, 2, 2), (2, 1, 1), (2, 2, 1)],
        )
        divisor = Relation(["b1", "b2"], [(1, 1), (2, 2)])
        assert small_divide(dividend, divisor).to_set("a") == {1}

    def test_multi_attribute_quotient(self):
        dividend = Relation(
            ["a1", "a2", "b"],
            [(1, 1, 5), (1, 1, 6), (2, 2, 5)],
        )
        divisor = Relation(["b"], [(5,), (6,)])
        assert small_divide(dividend, divisor).to_tuples(["a1", "a2"]) == {(1, 1)}

    def test_quotient_times_divisor_contained_in_dividend(self, figure1_dividend, figure1_divisor):
        # The defining property: (r1 ÷ r2) × r2 ⊆ r1.
        quotient = small_divide(figure1_dividend, figure1_divisor)
        product = quotient.product(figure1_divisor)
        assert set(product.rows) <= set(figure1_dividend.project(["a", "b"]).rows)


class TestDefinitionEquivalence:
    """Codd's, Healy's, Maier's, the counting and the for-all definitions agree."""

    @given(dividends(), divisors())
    def test_all_definitions_agree(self, dividend, divisor):
        reference = small_divide(dividend, divisor)
        assert codd_divide(dividend, divisor) == reference
        assert healy_divide(dividend, divisor) == reference
        assert maier_divide(dividend, divisor) == reference
        assert counting_divide(dividend, divisor) == reference
        assert forall_divide(dividend, divisor) == reference

    @given(dividends(), divisors())
    def test_quotient_is_subset_of_candidates(self, dividend, divisor):
        quotient = small_divide(dividend, divisor)
        candidates = dividend.project(["a"])
        assert set(quotient.rows) <= set(candidates.rows)

    @given(dividends(), divisors(min_rows=1))
    def test_maximality(self, dividend, divisor):
        """Every candidate not in the quotient misses at least one divisor value."""
        quotient_values = small_divide(dividend, divisor).to_set("a")
        divisor_values = divisor.to_set("b")
        for candidate in dividend.project(["a"]).to_set("a"):
            group = dividend.image_set({"a": candidate}, ["b"]).to_set("b")
            if candidate in quotient_values:
                assert divisor_values <= group
            else:
                assert not divisor_values <= group
