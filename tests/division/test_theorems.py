"""Theorems 2 and 3: small divide is non-commutative and non-associative."""

import pytest

from repro.division import small_divide
from repro.errors import DivisionError
from repro.relation import Relation


class TestTheorem2NonCommutativity:
    def test_swapping_operands_is_rejected(self, figure1_dividend, figure1_divisor):
        """r2 ÷ r1 is not even well formed: the divisor has more attributes."""
        small_divide(figure1_dividend, figure1_divisor)
        with pytest.raises(DivisionError):
            small_divide(figure1_divisor, figure1_dividend)

    def test_same_arity_still_differs(self):
        """Even when both orders are well-formed (different attribute names),
        the quotients differ, so the operator cannot be commutative."""
        r1 = Relation(["a", "b"], [(1, 1), (1, 2)])
        r2 = Relation(["b"], [(1,), (2,)])
        assert small_divide(r1, r2).to_set("a") == {1}
        # r2 ÷ r1 is invalid; there is no way to reorder the operands.
        with pytest.raises(DivisionError):
            small_divide(r2, r1)


class TestTheorem3NonAssociativity:
    def test_schema_level_contradiction(self):
        """The two groupings never even have the same schema.

        With attribute sets A1 = {a, b, c}, A2 = {b, c}, A3 = {c} the paper's
        derivation gives (A1 − A2) − A3 = {a} but A1 − (A2 − A3) = {a, c}.
        Concretely, the right grouping is well formed while the left grouping
        is rejected because ``c`` no longer exists after the first divide.
        """
        r1 = Relation(["a", "b", "c"], [(1, 1, 1), (1, 1, 2), (1, 2, 1)])
        r2 = Relation(["b", "c"], [(1, 1), (1, 2)])
        r3 = Relation(["c"], [(1,)])

        right_first = small_divide(r1, small_divide(r2, r3))
        assert set(right_first.attributes) == {"a", "c"}
        with pytest.raises(DivisionError):
            small_divide(small_divide(r1, r2), r3)

    def test_no_schema_makes_both_groupings_well_formed(self):
        """For any nonempty A3, (r1 ÷ r2) ÷ r3 needs A3 ⊆ A1 − A2 while
        r1 ÷ (r2 ÷ r3) needs A3 ⊆ A2 — the two requirements are
        contradictory, so associativity cannot even be stated."""
        a1 = {"a", "b", "c"}
        a2 = {"b", "c"}
        for a3 in ({"a"}, {"b"}, {"c"}, {"b", "c"}, {"a", "b"}):
            left_ok = a3 <= (a1 - a2) and len(a1 - a2 - a3) > 0
            right_ok = a3 <= a2 and len(a2 - a3) > 0 and (a2 - a3) <= a1 and len(a1 - (a2 - a3)) > 0
            assert not (left_ok and right_ok)

    def test_left_grouping_can_be_ill_formed(self):
        """(r1 ÷ r2) ÷ r3 may not even be well formed: after the first divide
        the attribute ``c`` of ``r3`` is gone, another witness of
        non-associativity."""
        r1 = Relation(["a", "b", "c"], [(1, 1, 1), (1, 2, 1), (2, 1, 1)])
        r2 = Relation(["b", "c"], [(1, 1), (2, 1)])
        r3 = Relation(["c"], [(1,)])
        first = small_divide(r1, r2)
        assert set(first.attributes) == {"a"}
        with pytest.raises(DivisionError):
            small_divide(first, r3)

    def test_right_grouping_requires_divisor_subset(self):
        r1 = Relation(["a", "b"], [(1, 1)])
        r2 = Relation(["b"], [(1,)])
        r3 = Relation(["c"], [(1,)])
        with pytest.raises(DivisionError):
            small_divide(r1, small_divide(r2, r3))
