"""Tests for the division schema analysis helpers."""

import pytest

from repro.division import great_divide_schemas, small_divide_schemas
from repro.errors import DivisionError
from repro.relation import Relation


class TestSmallDivideSchemas:
    def test_split(self, figure1_dividend, figure1_divisor):
        schemas = small_divide_schemas(figure1_dividend, figure1_divisor)
        assert schemas.a.names == ("a",)
        assert schemas.b.names == ("b",)
        assert len(schemas.c) == 0
        assert schemas.quotient.names == ("a",)
        assert schemas.is_small

    def test_multi_attribute_split(self):
        dividend = Relation(["a1", "a2", "b1", "b2"], [])
        divisor = Relation(["b1", "b2"], [])
        schemas = small_divide_schemas(dividend, divisor)
        assert set(schemas.a.names) == {"a1", "a2"}
        assert set(schemas.b.names) == {"b1", "b2"}

    def test_rejects_divisor_not_contained(self):
        with pytest.raises(DivisionError, match="do not appear"):
            small_divide_schemas(Relation(["a", "b"], []), Relation(["z"], []))

    def test_rejects_empty_quotient(self):
        with pytest.raises(DivisionError, match="nonempty"):
            small_divide_schemas(Relation(["b"], []), Relation(["b"], []))

    def test_rejects_empty_divisor_schema(self):
        with pytest.raises(DivisionError):
            small_divide_schemas(Relation(["a"], []), Relation([], []))


class TestGreatDivideSchemas:
    def test_split(self, figure1_dividend, figure2_divisor):
        schemas = great_divide_schemas(figure1_dividend, figure2_divisor)
        assert schemas.a.names == ("a",)
        assert schemas.b.names == ("b",)
        assert schemas.c.names == ("c",)
        assert set(schemas.quotient.names) == {"a", "c"}
        assert not schemas.is_small

    def test_degenerate_case_without_c(self, figure1_dividend, figure1_divisor):
        schemas = great_divide_schemas(figure1_dividend, figure1_divisor)
        assert schemas.is_small
        assert schemas.quotient.names == ("a",)

    def test_rejects_disjoint_schemas(self):
        with pytest.raises(DivisionError, match="share"):
            great_divide_schemas(Relation(["a"], []), Relation(["c"], []))

    def test_rejects_missing_dividend_only_attributes(self):
        with pytest.raises(DivisionError):
            great_divide_schemas(Relation(["b"], []), Relation(["b", "c"], []))
