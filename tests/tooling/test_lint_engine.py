"""Unit tests for the AST-based engine-contract linter (RP4xx rules)."""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location(
        "lint_engine", REPO_ROOT / "scripts" / "lint_engine.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(tmp_path: Path, source: str) -> Path:
    path = tmp_path / "module.py"
    path.write_text(source)
    return path


def codes(findings):
    return [f.code for f in findings]


class TestRP401RowMaterialization:
    def test_rows_call_in_produce_chunks_is_flagged(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Op(PhysicalOperator):\n"
            "    def _produce_chunks(self):\n"
            "        for row in self.rows():\n"
            "            yield row\n",
        )
        assert codes(lint._check_physical_file(path)) == ["RP401"]

    def test_waiver_pragma_on_def_line_suppresses(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Op(PhysicalOperator):\n"
            "    def _produce_chunks(self):  # contract: rows-ok (public Row API)\n"
            "        for row in self.rows():\n"
            "            yield row\n",
        )
        assert list(lint._check_physical_file(path)) == []

    def test_waiver_pragma_above_def_suppresses(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Op(PhysicalOperator):\n"
            "    # contract: rows-ok (legacy adapter)\n"
            "    def _produce_chunks(self):\n"
            "        return Chunk.from_rows(self.batched())\n",
        )
        assert list(lint._check_physical_file(path)) == []

    def test_chunk_only_implementation_is_clean(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Op(PhysicalOperator):\n"
            "    def _produce_chunks(self):\n"
            "        yield from self._children[0].chunks()\n",
        )
        assert list(lint._check_physical_file(path)) == []


class TestRP402ChildRows:
    def test_child_rows_via_subscript_is_flagged(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Op(PhysicalOperator):\n"
            "    def _build(self):\n"
            "        return list(self._children[0].rows())\n",
        )
        assert codes(lint._check_physical_file(path)) == ["RP402"]

    def test_child_rows_via_bound_name_is_flagged(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Op(PhysicalOperator):\n"
            "    def _build(self):\n"
            "        left, right = self._children\n"
            "        return list(left.rows())\n",
        )
        assert codes(lint._check_physical_file(path)) == ["RP402"]

    def test_own_rows_view_is_not_flagged(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Op(PhysicalOperator):\n"
            "    def preview(self):\n"
            "        return list(self.rows())\n",
        )
        assert list(lint._check_physical_file(path)) == []


class TestRP403LawConditions:
    def test_law_without_conditions_is_flagged(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class LawX(RewriteRule):\n"
            "    name = 'law_x'\n"
            "    requires_data = False\n",
        )
        assert codes(lint._check_laws_file(path)) == ["RP403"]

    def test_empty_tuple_counts_as_declared(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class LawX(RewriteRule):\n"
            "    name = 'law_x'\n"
            "    conditions = ()\n",
        )
        assert list(lint._check_laws_file(path)) == []

    def test_non_law_classes_are_ignored(self, lint, tmp_path):
        path = write(tmp_path, "class Helper:\n    pass\n")
        assert list(lint._check_laws_file(path)) == []


class TestRP404OperatorDeclarations:
    def test_named_operator_without_properties_is_flagged(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Op(PhysicalOperator):\n"
            "    name = 'op'\n",
        )
        assert codes(lint._check_operator_declarations(path)) == ["RP404"]

    def test_properties_in_same_file_base_suppresses(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class _Base(PhysicalOperator):\n"
            "    properties = PhysicalProperties(streaming=True)\n"
            "class Op(_Base):\n"
            "    name = 'op'\n",
        )
        assert list(lint._check_operator_declarations(path)) == []

    def test_non_operator_helpers_are_exempt(self, lint, tmp_path):
        path = write(
            tmp_path,
            "class Kernel:\n"
            "    name = 'python'\n",
        )
        assert list(lint._check_operator_declarations(path)) == []


class TestRepositoryIsClean:
    def test_engine_lint_passes_on_the_repo(self, lint):
        assert lint.run() == []

    def test_main_exit_codes(self, lint, capsys):
        assert lint.main([]) == 0
        assert "0 error(s)" in capsys.readouterr().out
