"""Mutation harness for the static verifier.

Each test corrupts a *valid* plan (or expression, or generated source) the
way a buggy rewrite, planner or compiler would — in-place, after
construction-time validation already ran — and asserts the verifier flags
exactly that corruption with its stable RP code.  A final hypothesis sweep
asserts the other direction: whatever the real optimizer produces on random
databases verifies clean, so the mutations measure detection, not noise.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import builders as B
from repro.algebra.catalog import Catalog
from repro.algebra.expressions import Product, Rename, SmallDivide, Union
from repro.analysis import (
    audit_source,
    verify_expression,
    verify_physical,
    verify_plan,
    verify_prepared,
    verify_view,
)
from repro.optimizer import PhysicalPlanner, PlannerOptions
from repro.physical import (
    SMALL_DIVIDE_ALGORITHMS,
    HashAggregate,
    HashDivision,
    HashJoin,
    PartitionedAggregate,
    PartitionedDivision,
    ProjectOp,
    RelationScan,
)
from repro.physical.base import PhysicalOperator
from repro.relation import Relation
from repro.relation.schema import Schema, as_schema
from tests.strategies import relations


def codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# fixtures: small valid inputs to corrupt
# ----------------------------------------------------------------------
R1 = Relation(["a", "b"], [(1, 1), (1, 2), (2, 1), (3, 1), (3, 2)])
R2 = Relation(["b"], [(1,), (2,)])


def division_plan():
    return HashDivision(RelationScan(R1, "r1"), RelationScan(R2, "r2"))


def partitioned_division():
    return PartitionedDivision(
        RelationScan(R1, "r1"), RelationScan(R2, "r2"), algorithm="hash", partitions=2, workers=2
    )


# ======================================================================
# logical corruptions
# ======================================================================
class TestLogicalCorruptions:
    def test_projection_over_vanished_attribute_is_rp101(self):
        expression = B.project(B.ref("r1", ["a", "b"]), ["a"])
        assert expression.schema is not None  # cache before corrupting
        expression.attributes = as_schema(("vanished",))
        findings, _ = verify_expression(expression)
        assert codes(findings) == ["RP101"]

    def test_rename_collision_is_rp102(self):
        expression = Rename(B.ref("r1", ["a", "b"]), {"a": "b"})
        findings, _ = verify_expression(expression)
        assert codes(findings) == ["RP102"]

    def test_divisor_not_subset_of_dividend_is_rp103(self):
        expression = SmallDivide(B.ref("r1", ["a", "b"]), B.ref("r9", ["z"]))
        findings, _ = verify_expression(expression)
        assert codes(findings) == ["RP103"]

    def test_empty_quotient_schema_is_rp103(self):
        r1 = B.ref("r1", ["b"])
        findings, _ = verify_expression(SmallDivide(r1, B.ref("r2", ["b"])))
        assert codes(findings) == ["RP103"]

    def test_union_attribute_mismatch_is_rp104(self):
        findings, _ = verify_expression(Union(B.ref("r1", ["a", "b"]), B.ref("r2", ["b"])))
        assert codes(findings) == ["RP104"]

    def test_product_attribute_overlap_is_rp105(self):
        findings, _ = verify_expression(
            Product(B.ref("r1", ["a", "b"]), B.ref("r1b", ["a", "b"]))
        )
        assert codes(findings) == ["RP105"]

    def test_stale_cached_schema_is_rp106(self):
        expression = B.project(B.ref("r1", ["a", "b"]), ["a"])
        assert expression.schema.names == ("a",)
        expression._schema = Schema(("stale",))  # what a buggy rewrite leaves behind
        findings, _ = verify_expression(expression)
        assert codes(findings) == ["RP106"]

    def test_catalog_disagreement_is_rp107(self):
        catalog = Catalog()
        catalog.add_table("r1", Relation(["x", "y"], [(1, 2)]))
        findings, _ = verify_expression(B.ref("r1", ["a", "b"]), catalog)
        assert codes(findings) == ["RP107"]


# ======================================================================
# physical corruptions
# ======================================================================
class TestPhysicalCorruptions:
    def test_projection_schema_corruption_is_rp101(self):
        plan = ProjectOp(RelationScan(R1, "r1"), ("a",))
        plan._schema = Schema(("vanished",))
        assert "RP101" in codes(verify_physical(plan)[0])

    def test_division_over_disjoint_children_is_rp103(self):
        plan = division_plan()
        plan._children = (
            RelationScan(Relation(["a"], [(1,)]), "x"),
            RelationScan(Relation(["z"], [(1,)]), "y"),
        )
        assert "RP103" in codes(verify_physical(plan)[0])

    def test_operator_schema_drift_is_rp111(self):
        plan = division_plan()
        plan._schema = Schema(("a", "b"))  # quotient must be dividend - divisor
        assert "RP111" in codes(verify_physical(plan)[0])

    def test_key_typed_differently_per_side_is_rp112_warning(self):
        left = RelationScan(Relation(["a", "k"], [(1, 1)]), "left")
        right = RelationScan(Relation(["k"], [("one",)]), "right")
        findings, _ = verify_physical(HashJoin(left, right))
        assert codes(findings) == ["RP112"]
        assert all(f.severity.value == "warning" for f in findings)

    def test_operator_without_own_properties_is_rp201(self):
        class ForgotProperties(PhysicalOperator):
            name = "forgot_properties"

        plan = ForgotProperties(Schema(("a",)), (RelationScan(Relation(["a"], [(1,)]), "r"),))
        assert "RP201" in codes(verify_physical(plan)[0])

    def test_unsafe_wrapped_algorithm_is_rp202(self, monkeypatch):
        plan = partitioned_division()
        monkeypatch.setattr(HashDivision, "key_disjoint_safe", False)
        assert "RP202" in codes(verify_physical(plan)[0])

    def test_unregistered_wrapped_algorithm_is_rp202(self):
        plan = partitioned_division()
        plan.algorithm = "quantum"
        assert "RP202" in codes(verify_physical(plan)[0])

    def test_partition_key_not_covering_quotient_is_rp203(self):
        plan = partitioned_division()
        plan._key = as_schema(("b",))  # hashing on b splits a-groups across partitions
        assert "RP203" in codes(verify_physical(plan)[0])

    def test_aggregate_key_dropped_from_output_is_rp203(self):
        child = RelationScan(R1, "r1")
        plan = PartitionedAggregate(child, ("a",), {"n": len}, partitions=2, workers=2)
        plan._key = as_schema(("z",))
        assert "RP203" in codes(verify_physical(plan)[0])

    def test_unpicklable_aggregate_payload_is_rp204(self):
        child = RelationScan(R1, "r1")
        plan = PartitionedAggregate(
            child, ("a",), {"n": lambda rows: len(rows)}, partitions=2, workers=2
        )
        findings, _ = verify_physical(plan)
        assert "RP204" in codes(findings)
        assert verify_plan(plan).ok  # a warning: the pool degrades, CI passes

    def test_compiled_producer_on_pipeline_breaker_is_rp205(self):
        plan = HashAggregate(RelationScan(R1, "r1"), ("a",), {})
        plan._compiled_producer = lambda: iter(())
        report = verify_plan(plan)
        assert "RP205" in codes(report.findings)

    def test_invalid_exchange_shape_is_rp206(self):
        plan = partitioned_division()
        plan.partitions = 0  # an exchange no constructor would admit
        assert "RP206" in codes(verify_physical(plan)[0])


# ======================================================================
# codegen corruptions (source-level; unit-level variants live in
# tests/analysis/test_codegen_auditor.py)
# ======================================================================
CLEAN_SOURCE = """\
def _segment(_pull, _bind):
    (_b0, _b1, _b2,) = _bind
    for _chunk in _pull():
        _t = _chunk.aligned(_b1).tuples
        _t = [t for t in _t if (t[0] == _b2)]
        if _t:
            yield _b0(_b1, _t)
"""


class TestCodegenCorruptions:
    def test_clean_template_passes(self):
        assert audit_source(CLEAN_SOURCE) == []

    def test_smuggled_call_is_rp301(self):
        bad = CLEAN_SOURCE.replace("_chunk.aligned(_b1).tuples", "__import__('os').getcwd()")
        assert "RP301" in codes(audit_source(bad))

    def test_global_write_is_rp302(self):
        bad = CLEAN_SOURCE.replace(
            "    for _chunk in _pull():", "    global leak\n    for _chunk in _pull():"
        )
        assert "RP302" in codes(audit_source(bad))

    def test_binding_reassignment_is_rp303(self):
        bad = CLEAN_SOURCE.replace("        if _t:", "        _b2 = 99\n        if _t:")
        assert "RP303" in codes(audit_source(bad))

    def test_missing_bind_unpack_is_rp304(self):
        bad = CLEAN_SOURCE.replace("    (_b0, _b1, _b2,) = _bind\n", "")
        assert "RP304" in codes(audit_source(bad))

    def test_syntax_error_is_rp305(self):
        assert codes(audit_source(CLEAN_SOURCE[:40])) == ["RP305"]


# ======================================================================
# maintained-view corruptions (RP6xx)
# ======================================================================
def _view_database():
    from repro.api.database import connect

    database = connect()
    database.add_table("r1", Relation(["a", "b"], R1.aligned_tuples()))
    database.add_table("r2", Relation(["b"], R2.aligned_tuples()))
    view = database.create_view("q", database.table("r1").divide(database.table("r2"), on=["b"]))
    view.run()  # build the counter table
    return database, view


class TestViewCorruptions:
    def test_clean_view_verifies_clean(self):
        database, view = _view_database()
        database.insert("r1", [(9, 1), (9, 2)])
        database.delete("r2", [(2,)])
        report = database.verify_view("q")
        assert report.ok and report.findings == ()

    def test_counter_width_drift_is_rp601(self):
        _database, view = _view_database()
        view.counters.a_width = 7  # what a buggy rebuild would leave behind
        assert "RP601" in codes(verify_view(view).findings)

    def test_counter_kind_drift_is_rp601(self):
        _database, view = _view_database()
        view.counters.kind = "great"
        assert "RP601" in codes(verify_view(view).findings)

    def test_malformed_quotient_tuple_is_rp601(self):
        _database, view = _view_database()
        view.counters._quotient = view.counters._quotient | {(1, 2, 3)}
        assert "RP601" in codes(verify_view(view).findings)

    def test_schema_not_a_plus_c_is_rp601(self):
        _database, view = _view_database()
        view.schema_names = ("b", "a")
        assert "RP601" in codes(verify_view(view).findings)

    def test_missing_delta_rule_is_rp602(self):
        _database, view = _view_database()
        del view.delta_rules[("divisor", "delete")]
        findings = verify_view(view).findings
        assert codes(findings) == ["RP602"]
        assert "divisor delete" in findings[0].message

    def test_rule_without_conditions_is_rp602(self, monkeypatch):
        from repro.laws.delta import DividendInsertDelta

        _database, view = _view_database()
        monkeypatch.setattr(DividendInsertDelta, "conditions", ())
        assert "RP602" in codes(verify_view(view).findings)

    def test_view_ahead_of_table_is_rp603(self):
        _database, view = _view_database()
        view.applied_versions["r1"] = 99
        assert "RP603" in codes(verify_view(view).findings)

    def test_view_behind_table_is_rp603(self):
        database, view = _view_database()
        database.insert("r1", [(8, 1), (8, 2)])
        assert database.verify_view("q").ok  # deltas were routed
        view.applied_versions["r1"] = 0  # ... then the bookkeeping is lost
        assert "RP603" in codes(verify_view(view).findings)

    def test_unknown_table_in_versions_is_rp603(self):
        _database, view = _view_database()
        view.applied_versions["phantom"] = 1
        assert "RP603" in codes(verify_view(view).findings)

    def test_view_over_view_is_rp604(self):
        database, view = _view_database()
        # create_view refuses to shadow a table, so plant the alias the way
        # a buggy loader would: a registered view named like a base table.
        database._views["r2"] = view
        assert "RP604" in codes(verify_view(view, database).findings)

    def test_create_view_over_view_is_rejected_up_front(self):
        import pytest

        from repro.errors import ViewError

        database, _view = _view_database()
        with pytest.raises(ViewError, match="RP604"):
            database.create_view("q2", database.query(B.ref("q", ["a"])))


# ======================================================================
# the other direction: optimizer output on random databases is clean
# ======================================================================
@st.composite
def random_catalogs(draw):
    catalog = Catalog()
    catalog.add_table("r1", draw(relations(("a", "b"), max_rows=10)))
    catalog.add_table("r2", draw(relations(("b",), max_rows=4)))
    return catalog


class TestOptimizerPlansVerifyClean:
    """Detection without noise: real planner output never trips the verifier."""

    @settings(max_examples=40, deadline=None)
    @given(catalog=random_catalogs(), algorithm=st.sampled_from(sorted(SMALL_DIVIDE_ALGORITHMS)))
    def test_every_division_algorithm_plans_clean(self, catalog, algorithm):
        expression = B.project(
            B.divide(B.ref("r1", ["a", "b"]), B.ref("r2", ["b"])), ["a"]
        )
        planner = PhysicalPlanner(catalog, PlannerOptions(small_divide_algorithm=algorithm))
        plan = planner.plan(expression)
        logical_findings, _ = verify_expression(expression, catalog)
        assert logical_findings == []
        assert verify_plan(plan).ok

    @settings(max_examples=25, deadline=None)
    @given(
        catalog=random_catalogs(),
        compile_mode=st.sampled_from(["off", "on"]),
        workers=st.sampled_from([1, 4]),
    )
    def test_prepared_plans_verify_clean_across_configurations(
        self, catalog, compile_mode, workers
    ):
        from repro.api.database import connect

        database = connect(
            catalog, planner_options=PlannerOptions(compile=compile_mode, workers=workers)
        )
        query = database.sql(
            "SELECT a FROM r1 AS s DIVIDE BY r2 AS p ON s.b = p.b"
        )
        prepared, _cached = database._prepare(query.expression)
        report = verify_prepared(prepared, database.catalog)
        assert report.errors() == ()
