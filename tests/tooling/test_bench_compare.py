"""Unit tests for the hardware-normalized benchmark comparison gate."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_module():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", REPO_ROOT / "scripts" / "bench_compare.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def payload(times: dict[str, float]) -> dict:
    return {
        "benchmarks": [
            {"name": name, "stats": {"min": value}} for name, value in times.items()
        ]
    }


class TestCompare:
    def test_uniform_slowdown_does_not_fail(self):
        """A machine that is 3x slower across the board is not a regression."""
        module = load_module()
        baseline = payload({"a": 1.0, "b": 2.0, "c": 0.5})
        current = payload({"a": 3.0, "b": 6.0, "c": 1.5})
        _, failures = module.compare(baseline, current, threshold=0.25)
        assert failures == []

    def test_single_scenario_regression_fails(self):
        module = load_module()
        baseline = payload({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        current = payload({"a": 1.0, "b": 1.0, "c": 1.0, "d": 2.0})
        lines, failures = module.compare(baseline, current, threshold=0.25)
        assert len(failures) == 1 and failures[0].startswith("d:")
        assert any("REGRESSION" in line for line in lines)

    def test_within_threshold_passes(self):
        module = load_module()
        baseline = payload({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0})
        current = payload({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.2})
        _, failures = module.compare(baseline, current, threshold=0.25)
        assert failures == []

    def test_disjoint_benchmarks_fail_loudly(self):
        module = load_module()
        _, failures = module.compare(payload({"a": 1.0}), payload({"b": 1.0}), threshold=0.25)
        assert failures

    def test_real_baseline_compares_clean_against_itself(self):
        module = load_module()
        committed = (REPO_ROOT / "BENCH_division.json").read_text()
        import json

        data = json.loads(committed)
        _, failures = module.compare(data, data, threshold=0.25)
        assert failures == []

    def test_large_speedup_in_one_scenario_does_not_flag_the_rest(self):
        """Median normalization: one 10x improvement must not make the
        unchanged majority look like relative regressions."""
        module = load_module()
        names = [f"s{i}" for i in range(8)]
        baseline = payload({name: 1.0 for name in names})
        current_times = {name: 1.0 for name in names}
        current_times["s0"] = 0.1  # one scenario got 10x faster
        lines, failures = module.compare(baseline, payload(current_times), threshold=0.25)
        assert failures == []
        assert any("bench-record" in line for line in lines)

    def test_sub_millisecond_jitter_is_shielded_by_the_floor(self):
        """A relative blip on a sub-ms scenario whose absolute excess is
        tiny must not fail the gate; the same relative regression on a
        big scenario must."""
        module = load_module()
        baseline = payload({"fast": 0.0005, "a": 0.010, "b": 0.010, "slow": 0.020})
        current = payload({"fast": 0.0008, "a": 0.010, "b": 0.010, "slow": 0.020})
        _, failures = module.compare(baseline, current, threshold=0.25)
        assert failures == []
        current = payload({"fast": 0.0005, "a": 0.010, "b": 0.010, "slow": 0.032})
        _, failures = module.compare(baseline, current, threshold=0.25)
        assert len(failures) == 1 and failures[0].startswith("slow:")

    def test_uniform_slowdown_passes_but_warns(self):
        module = load_module()
        baseline = payload({"a": 0.010, "b": 0.010, "c": 0.010})
        current = payload({"a": 0.020, "b": 0.020, "c": 0.020})
        lines, failures = module.compare(baseline, current, threshold=0.25)
        assert failures == []
        assert any("warning: the whole suite" in line for line in lines)


class TestCompareParallel:
    """The serial-vs-parallel gate on the large division scenarios."""

    def test_workers1_near_serial_passes(self):
        module = load_module()
        run = payload(
            {
                "test_serial_division": 0.100,
                "test_partitioned_division[1]": 0.105,
                "test_partitioned_division[2]": 0.060,
            }
        )
        lines, failures = module.compare_parallel(run, workers=2)
        assert failures == []
        assert any("workers=2" in line for line in lines)

    def test_workers1_overhead_fails(self):
        module = load_module()
        run = payload(
            {
                "test_serial_division": 0.100,
                "test_partitioned_division[1]": 0.150,
            }
        )
        _, failures = module.compare_parallel(run, workers=1)
        assert failures and "workers=1" in failures[0]

    def test_missing_serial_baseline_fails_loudly(self):
        module = load_module()
        _, failures = module.compare_parallel(
            payload({"test_partitioned_division[2]": 0.05}), workers=2
        )
        assert failures == ["missing baseline"]

    def test_missing_requested_worker_count_fails(self):
        module = load_module()
        run = payload(
            {
                "test_serial_division": 0.100,
                "test_partitioned_division[1]": 0.100,
            }
        )
        _, failures = module.compare_parallel(run, workers=4)
        assert any("workers=4" in failure for failure in failures)

    def test_multicore_pessimization_fails_only_with_enough_cores(self, monkeypatch):
        module = load_module()
        run = payload(
            {
                "test_serial_division": 0.100,
                "test_partitioned_division[4]": 0.140,
            }
        )
        monkeypatch.setattr(module.os, "cpu_count", lambda: 8)
        _, failures = module.compare_parallel(run, workers=4)
        assert any("SLOWER" in failure for failure in failures)
        monkeypatch.setattr(module.os, "cpu_count", lambda: 1)
        _, failures = module.compare_parallel(run, workers=4)
        assert failures == []


class TestMissingBaselineEntries:
    """A scenario in the current run but absent from the committed baseline
    must fail loudly, listing every missing name."""

    def test_missing_names_are_listed(self):
        module = load_module()
        baseline = payload({"a": 1.0})
        current = payload({"a": 1.0, "b": 1.0, "c": 1.0})
        lines, failures = module.compare(baseline, current, threshold=0.25)
        assert failures == [
            "missing baseline entry for b",
            "missing baseline entry for c",
        ]
        text = "\n".join(lines)
        assert "  - b" in text and "  - c" in text
        assert "bench-record" in text

    def test_matching_scenario_sets_do_not_trip_the_check(self):
        module = load_module()
        same = payload({"a": 1.0, "b": 1.0})
        _, failures = module.compare(same, same, threshold=0.25)
        assert failures == []


class TestCompareStorage:
    """The stored-table gates: zone-map skipping and metadata ANALYZE."""

    def run_payload(self, skip_speedup: float, analyze_speedup: float) -> dict:
        return payload(
            {
                "test_selective_scan[selective-full]": 0.100,
                "test_selective_scan[selective-skipping]": 0.100 / skip_speedup,
                "test_cold_analyze[cold-fullscan]": 0.500,
                "test_cold_analyze[cold-metadata]": 0.500 / analyze_speedup,
            }
        )

    def test_fast_run_passes_both_gates(self):
        module = load_module()
        lines, failures = module.compare_storage(self.run_payload(20.0, 100.0))
        assert failures == []
        assert any("20.00x" in line for line in lines)
        assert any("100.00x" in line for line in lines)

    def test_slow_skipping_fails_the_scan_gate(self):
        module = load_module()
        _, failures = module.compare_storage(self.run_payload(2.0, 100.0))
        assert len(failures) == 1 and "zone-map skipping" in failures[0]

    def test_slow_metadata_analyze_fails_the_analyze_gate(self):
        module = load_module()
        _, failures = module.compare_storage(self.run_payload(20.0, 3.0))
        assert len(failures) == 1 and "metadata ANALYZE" in failures[0]

    def test_missing_scenarios_fail_loudly(self):
        module = load_module()
        _, failures = module.compare_storage(payload({"unrelated": 1.0}))
        assert failures == ["missing scenarios"]

    def test_missing_mode_fails(self):
        module = load_module()
        run = payload({"test_selective_scan[selective-full]": 0.1})
        _, failures = module.compare_storage(run)
        assert any("missing a mode" in failure for failure in failures)
