"""Maintained views: registration, maintenance, fallback, explain."""

import pytest

from repro.api import connect
from repro.division import great_divide, small_divide
from repro.errors import ViewError
from repro.relation import Relation


def fresh_db():
    database = connect()
    database.add_table(
        "r1",
        Relation(["a", "b"], [(1, 1), (1, 2), (2, 1), (3, 1), (3, 2)]),
    )
    database.add_table("r2", Relation(["b"], [(1,), (2,)]))
    database.add_table("r3", Relation(["b", "c"], [(1, 10), (2, 10), (1, 20)]))
    return database


class TestRegistration:
    def test_small_divide_view_is_maintained(self):
        db = fresh_db()
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        assert view.maintained
        assert db.views == ("q",)
        assert db.view("q") is view
        assert view.tables == frozenset({"r1", "r2"})

    def test_great_divide_view_is_maintained(self):
        db = fresh_db()
        view = db.create_view("g", db.table("r1").great_divide(db.table("r3")))
        assert view.maintained
        assert view.relation() == great_divide(db.relation("r1"), db.relation("r3"))

    def test_selection_inputs_stay_maintained(self):
        db = fresh_db()
        from repro.algebra import predicates as P

        query = db.table("r1").where(P.Comparison(P.attr("a"), "<", 3))
        view = db.create_view("q", query.divide(db.table("r2"), on=["b"]))
        assert view.maintained
        expected = small_divide(
            db.relation("r1").select(P.Comparison(P.attr("a"), "<", 3)),
            db.relation("r2"),
        )
        assert view.relation() == expected

    def test_sql_defined_view_is_maintained(self):
        """The SQL translator's alias wrapper (ρ over identity π) peels."""
        db = fresh_db()
        view = db.create_view(
            "q", db.sql("SELECT a FROM r1 AS s DIVIDE BY r2 AS p ON s.b = p.b")
        )
        assert view.maintained
        assert view.schema.names == ("a",)
        assert set(view.relation().aligned_tuples()) == {(1,), (3,)}
        db.insert("r1", [(2, 2)])
        assert set(view.relation().aligned_tuples()) == {(1,), (2,), (3,)}

    def test_reordering_projection_falls_back(self):
        db = fresh_db()
        from repro.algebra import builders as B

        reordered = B.project(
            db.table("r1").great_divide(db.table("r3")).expression, ["c", "a"]
        )
        view = db.create_view("q", db.query(reordered))
        assert not view.maintained  # counters emit A-then-C order only

    def test_projection_input_falls_back(self):
        db = fresh_db()
        query = db.table("r1").project(["a", "b"]).divide(db.table("r2"), on=["b"])
        view = db.create_view("q", query)
        assert not view.maintained
        assert view.unsupported_reason
        assert view.relation() == small_divide(db.relation("r1"), db.relation("r2"))

    def test_non_division_top_level_falls_back(self):
        db = fresh_db()
        view = db.create_view("p", db.table("r1").project(["a"]))
        assert not view.maintained
        assert view.relation() == db.relation("r1").project(["a"])

    def test_duplicate_name_rejected(self):
        db = fresh_db()
        db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        with pytest.raises(ViewError, match="already exists"):
            db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))

    def test_table_shadowing_rejected(self):
        db = fresh_db()
        with pytest.raises(ViewError, match="shadow"):
            db.create_view("r1", db.table("r1").divide(db.table("r2"), on=["b"]))

    def test_drop_view_stops_maintenance(self):
        db = fresh_db()
        db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        db.drop_view("q")
        assert db.views == ()
        db.insert("r1", [(9, 1)])  # must not blow up on a dropped view


class TestMaintenance:
    def test_dividend_insert_adds_quotient_member(self):
        db = fresh_db()
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        assert set(view.relation().aligned_tuples()) == {(1,), (3,)}
        db.insert("r1", [(2, 2)])
        assert set(view.relation().aligned_tuples()) == {(1,), (2,), (3,)}
        assert view.deltas_applied == 1

    def test_dividend_delete_evicts_quotient_member(self):
        db = fresh_db()
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        view.run()
        db.delete("r1", [(1, 2)])
        assert set(view.relation().aligned_tuples()) == {(3,)}

    def test_divisor_grow_and_shrink(self):
        db = fresh_db()
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        view.run()
        db.insert("r2", [(3,)])  # nobody has b=3: quotient empties
        assert set(view.relation().aligned_tuples()) == set()
        db.delete("r2", [(3,)])  # back to the original threshold
        assert set(view.relation().aligned_tuples()) == {(1,), (3,)}
        db.delete("r2", [(2,)])  # only b=1 required now
        assert set(view.relation().aligned_tuples()) == {(1,), (2,), (3,)}

    def test_mutation_of_unrelated_table_is_ignored(self):
        db = fresh_db()
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        view.run()
        before = view.deltas_applied
        db.insert("r3", [(9, 99)])
        assert view.deltas_applied == before

    def test_maintained_result_is_reused_until_mutation(self):
        db = fresh_db()
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        first = view.run()
        assert view.run() is first
        db.insert("r1", [(7, 1), (7, 2)])
        second = view.run()
        assert second is not first
        assert (7,) in set(second.relation.aligned_tuples())

    def test_rules_fired_name_the_delta_rules(self):
        db = fresh_db()
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        view.run()
        db.insert("r1", [(7, 1)])
        db.delete("r1", [(7, 1)])
        result = view.run()
        assert "delta_dividend_insert" in result.rules_fired
        assert "delta_dividend_delete" in result.rules_fired

    def test_fallback_view_recomputes_after_mutation(self):
        db = fresh_db()
        query = db.table("r1").project(["a", "b"]).divide(db.table("r2"), on=["b"])
        view = db.create_view("q", query)
        assert set(view.relation().aligned_tuples()) == {(1,), (3,)}
        db.delete("r1", [(3, 2)])
        assert set(view.relation().aligned_tuples()) == {(1,)}


class TestExplain:
    def test_maintained_header_reports_deltas(self):
        db = fresh_db()
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        view.run()
        db.insert("r1", [(7, 1), (7, 2)])
        text = view.explain()
        assert text.startswith("view        : q\n")
        assert "maintained  : yes · deltas applied=2" in text

    def test_fallback_header_reports_reason(self):
        db = fresh_db()
        query = db.table("r1").project(["a", "b"]).divide(db.table("r2"), on=["b"])
        view = db.create_view("q", query)
        text = view.explain()
        assert "maintained  : no (" in text
        assert "full recompute on read" in text


class TestVerifyIntegration:
    def test_views_verify_clean_through_their_lifecycle(self):
        db = fresh_db()
        db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        assert db.verify_view("q").ok
        db.view("q").run()
        db.insert("r1", [(6, 1), (6, 2)])
        db.delete("r2", [(2,)])
        assert db.verify_view("q").ok
