"""The version-keyed result cache: hits, misses, mutation-keyed staleness."""

import pytest

from repro.api import connect
from repro.relation import Relation


@pytest.fixture
def db():
    database = connect()
    database.add_table(
        "r1", Relation(["a", "b"], [(1, 1), (1, 2), (2, 1), (3, 1), (3, 2)])
    )
    database.add_table("r2", Relation(["b"], [(1,), (2,)]))
    return database


def q(db):
    return db.table("r1").divide(db.table("r2"), on=["b"])


class TestHitsAndMisses:
    def test_second_run_is_a_result_hit(self, db):
        first = q(db).run()
        assert not first.result_cache_hit
        second = q(db).run()
        assert second.result_cache_hit
        assert second.relation == first.relation
        info = db.cache_info()
        assert info.result_hits == 1 and info.result_misses == 1
        assert info.result_hit_rate == 0.5

    def test_sql_and_fluent_share_the_fingerprint(self, db):
        db.sql("SELECT a FROM r1 AS s DIVIDE BY r2 AS p ON s.b = p.b").run()
        result = q(db).run()
        assert result.result_cache_hit

    def test_different_queries_do_not_collide(self, db):
        q(db).run()
        other = db.table("r1").project(["a"]).run()
        assert not other.result_cache_hit
        assert set(other.relation.aligned_tuples()) == {(1,), (2,), (3,)}


class TestVersionKeying:
    def test_mutation_invalidates_the_cached_result(self, db):
        q(db).run()
        db.insert("r1", [(2, 2)])
        fresh = q(db).run()
        assert not fresh.result_cache_hit
        assert set(fresh.relation.aligned_tuples()) == {(1,), (2,), (3,)}
        # ... and the post-mutation result is itself cached.
        assert q(db).run().result_cache_hit

    def test_noop_mutation_keeps_the_cache_warm(self, db):
        q(db).run()
        db.insert("r1", [(1, 1)])  # already present: version unchanged
        assert q(db).run().result_cache_hit

    def test_unrelated_table_mutation_keeps_the_cache_warm(self, db):
        db.add_table("other", Relation(["x"], [(1,)]))
        q(db).run()
        db.insert("other", [(2,)])
        assert q(db).run().result_cache_hit

    def test_old_version_entry_is_not_resurrected(self, db):
        before = q(db).run()
        db.insert("r1", [(2, 2)])
        after = q(db).run()
        assert after.relation != before.relation
        db.delete("r1", [(2, 2)])
        rolled_back = q(db).run()
        # The rollback restores version-0 *contents* but not version-0
        # keys: versions only grow, so this is a recompute — and correct.
        assert rolled_back.relation == before.relation


class TestLimitsAndControls:
    def test_result_cache_size_is_configurable(self):
        database = connect(result_cache_size=1)
        database.add_table("r1", Relation(["a", "b"], [(1, 1)]))
        database.add_table("r2", Relation(["b"], [(1,)]))
        database.table("r1").divide(database.table("r2"), on=["b"]).run()
        database.table("r1").project(["a"]).run()  # evicts the quotient
        result = database.table("r1").divide(database.table("r2"), on=["b"]).run()
        assert not result.result_cache_hit
        assert database.cache_info().result_maxsize == 1
        assert database.cache_info().result_size == 1

    def test_zero_size_disables_result_caching(self):
        database = connect(result_cache_size=0)
        database.add_table("r1", Relation(["a", "b"], [(1, 1)]))
        database.add_table("r2", Relation(["b"], [(1,)]))
        query = database.table("r1").divide(database.table("r2"), on=["b"])
        query.run()
        assert not query.run().result_cache_hit

    def test_clear_cache_resets_both_caches(self, db):
        q(db).run()
        q(db).run()
        db.clear_cache()
        info = db.cache_info()
        assert info.result_hits == info.result_misses == info.result_size == 0
        assert info.hits == info.misses == info.size == 0
        assert not q(db).run().result_cache_hit

    def test_plan_cache_hit_flag_still_reflects_plan_lookup(self, db):
        q(db).run()
        second = q(db).run()
        assert second.cache_hit and second.result_cache_hit
