"""Satellite 1 regressions: mutations invalidate plans and statistics.

The two staleness bugs this file pins down:

* a **stale plan** — physical scans pin relation contents at plan-build
  time, so a cached plan from before a mutation would serve pre-mutation
  rows forever;
* **stale statistics** — mutations defer statistics recollection to
  prepare time, so a query planned right after a big mutation must see
  the new cardinalities, not the build-time snapshot.
"""

import pytest

from repro.api import connect
from repro.relation import Relation


@pytest.fixture
def db():
    database = connect()
    database.add_table(
        "r1", Relation(["a", "b"], [(1, 1), (1, 2), (2, 1), (3, 1), (3, 2)])
    )
    database.add_table("r2", Relation(["b"], [(1,), (2,)]))
    return database


def q(db):
    return db.table("r1").divide(db.table("r2"), on=["b"])


class TestStalePlans:
    def test_cached_plan_does_not_serve_premutation_rows(self, db):
        before = q(db).run()
        assert set(before.relation.aligned_tuples()) == {(1,), (3,)}
        db.insert("r1", [(2, 2)])
        after = q(db).run()
        assert set(after.relation.aligned_tuples()) == {(1,), (2,), (3,)}

    def test_stale_plan_lookup_counts_an_invalidation(self, db):
        q(db).run()
        assert db.cache_info().invalidations == 0
        db.insert("r1", [(2, 2)])
        q(db).run()
        info = db.cache_info()
        assert info.invalidations == 1
        # The evicted entry was replaced by the replan, so a third run hits.
        assert q(db).run().cache_hit

    def test_prepared_plan_records_build_versions(self, db):
        db.insert("r1", [(9, 1)])
        prepared, _ = db._prepare(q(db).expression)
        assert dict(prepared.table_versions) == {"r1": 1, "r2": 0}

    def test_explicit_prepare_then_mutate_then_run(self, db):
        query = db.prepare(q(db))
        db.delete("r1", [(1, 1)])
        result = query.run()
        assert set(result.relation.aligned_tuples()) == {(3,)}

    def test_deletion_invalidates_too(self, db):
        q(db).run()
        db.delete("r1", [(3, 2)])
        assert set(q(db).run().relation.aligned_tuples()) == {(1,)}


class TestStaleStatistics:
    def test_statistics_refresh_lazily_at_prepare_time(self, db):
        db._prepare(q(db).expression)
        assert db._optimizer.statistics.table("r1").cardinality == 5
        db.insert("r1", [(10 + i, 1) for i in range(20)])
        # Deferred: the mutation itself does not recollect ...
        assert db._optimizer.statistics.table("r1").cardinality == 5
        db._prepare(q(db).expression)
        # ... but the next prepare over r1 does.
        assert db._optimizer.statistics.table("r1").cardinality == 25

    def test_unreferenced_tables_stay_deferred(self, db):
        db.add_table("other", Relation(["x"], [(1,)]))
        db.insert("other", [(i,) for i in range(2, 30)])
        db._prepare(q(db).expression)  # does not read `other`
        assert db._optimizer.statistics.table("other").cardinality == 1

    def test_analyze_marks_statistics_fresh(self, db):
        db.insert("r1", [(10, 1)])
        db.analyze("r1")
        assert db._optimizer.statistics.table("r1").cardinality == 6
        assert db._stats_versions["r1"] == db.table_version("r1")

    def test_noop_mutation_does_not_dirty_statistics(self, db):
        db._prepare(q(db).expression)
        db.insert("r1", [(1, 1)])  # already present
        assert db._stats_versions["r1"] == db.table_version("r1") == 0
