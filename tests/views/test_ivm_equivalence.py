"""Satellite 3: maintained views are bit-identical to recompute.

The sweep drives a random insert/delete sequence against the dividend and
divisor of a registered view and, after **every** edit, compares the
maintained answer against a from-scratch recompute of the same query —
crossed over all 8 division algorithms (5 small-divide, 3 great-divide)
and ``workers`` ∈ {1, 4}, so the counter table must agree with every
physical implementation of division the engine has.

A second assertion digs below the quotient: the incrementally-updated
counter table must equal a counter table *rebuilt* from the final base
tables (compared as decoded value sets, so dictionary bit order — which
legitimately differs between the two construction orders — cannot mask
or cause a failure).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import connect
from repro.optimizer import PlannerOptions
from repro.physical import GREAT_DIVIDE_ALGORITHMS, SMALL_DIVIDE_ALGORITHMS
from repro.relation import Relation
from tests.strategies import VALUES, dividends, great_divisors

WORKERS = [1, 4]

SMALL_GRID = [
    (algorithm, workers)
    for algorithm in sorted(SMALL_DIVIDE_ALGORITHMS)
    for workers in WORKERS
]
GREAT_GRID = [
    (algorithm, workers)
    for algorithm in sorted(GREAT_DIVIDE_ALGORITHMS)
    for workers in WORKERS
]


@st.composite
def edit_sequences(draw, row_width, max_edits=8):
    """A list of (target, operation, row-tuple) single-row edits."""
    edit = st.tuples(
        st.sampled_from(["dividend", "divisor"]),
        st.sampled_from(["insert", "delete"]),
        st.tuples(*([VALUES] * row_width)),
    )
    return draw(st.lists(edit, min_size=1, max_size=max_edits))


def connect_pair(dividend, divisor, kind, algorithm, workers):
    """(session with the view, expression factory for the recompute)."""
    options = (
        PlannerOptions(small_divide_algorithm=algorithm, workers=workers)
        if kind == "small"
        else PlannerOptions(great_divide_algorithm=algorithm, workers=workers)
    )
    db = connect(planner_options=options)
    db.add_table("r1", dividend)
    db.add_table("r2", divisor)
    if kind == "small":
        build = lambda: db.table("r1").divide(db.table("r2"), on=["b"])
    else:
        build = lambda: db.table("r1").great_divide(db.table("r2"))
    view = db.create_view("q", build())
    view.run()
    return db, view, build


def edit_rows(edit, kind):
    """Map one drawn edit onto (table, rows) for the session."""
    target, operation, row = edit
    if target == "dividend":
        return "r1", [row[:2]]
    # Divisor rows: b for small divide, (b, c) for great divide.
    return "r2", [row[:1] if kind == "small" else row[:2]]


def drive(dividend, divisor, kind, algorithm, workers):
    db, view, build = connect_pair(dividend, divisor, kind, algorithm, workers)
    return db, view, build


def assert_maintained_matches_recompute(dividend, divisor, kind, algorithm, workers, edits):
    db, view, build = drive(dividend, divisor, kind, algorithm, workers)
    assert view.maintained
    for step, edit in enumerate(edits):
        table, rows = edit_rows(edit, kind)
        _target, operation, _row = edit
        if operation == "insert":
            db.insert(table, rows)
        else:
            db.delete(table, rows)
        recomputed = build().run().relation
        label = f"{kind}/{algorithm} workers={workers} step={step} edit={edit}"
        assert view.relation() == recomputed, label

    # Below the quotient: incremental counters == rebuilt counters.
    db2, view2, _build2 = connect_pair(
        db.relation("r1"), db.relation("r2"), kind, algorithm, workers
    )
    assert view.counters.dividend_sets() == view2.counters.dividend_sets()
    assert view.counters.divisor_sets() == view2.counters.divisor_sets()
    assert view.quotient_tuples() == view2.quotient_tuples()


class TestIVMEquivalenceSweep:
    @pytest.mark.parametrize("algorithm,workers", SMALL_GRID)
    @settings(max_examples=5, deadline=None)
    @given(
        dividend=dividends(max_rows=10),
        divisor=st.lists(st.tuples(VALUES), max_size=3).map(
            lambda rows: Relation(("b",), rows)
        ),
        edits=edit_sequences(row_width=2),
    )
    def test_small_divide_sequences(self, algorithm, workers, dividend, divisor, edits):
        assert_maintained_matches_recompute(
            dividend, divisor, "small", algorithm, workers, edits
        )

    @pytest.mark.parametrize("algorithm,workers", GREAT_GRID)
    @settings(max_examples=5, deadline=None)
    @given(
        dividend=dividends(max_rows=10),
        divisor=great_divisors(max_rows=6),
        edits=edit_sequences(row_width=2),
    )
    def test_great_divide_sequences(self, algorithm, workers, dividend, divisor, edits):
        assert_maintained_matches_recompute(
            dividend, divisor, "great", algorithm, workers, edits
        )


class TestDirectedSequences:
    """Deterministic corner sequences hypothesis may not always reach."""

    def test_empty_divisor_means_every_key_qualifies(self):
        db = connect()
        db.add_table("r1", Relation(["a", "b"], [(1, 1), (2, 2)]))
        db.add_table("r2", Relation(["b"], [(1,)]))
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        view.run()
        db.delete("r2", [(1,)])
        assert set(view.relation().aligned_tuples()) == {(1,), (2,)}

    def test_key_vanishes_and_returns(self):
        db = connect()
        db.add_table("r1", Relation(["a", "b"], [(1, 1), (1, 2)]))
        db.add_table("r2", Relation(["b"], [(1,), (2,)]))
        view = db.create_view("q", db.table("r1").divide(db.table("r2"), on=["b"]))
        view.run()
        db.delete("r1", [(1, 1), (1, 2)])
        assert set(view.relation().aligned_tuples()) == set()
        db.insert("r1", [(1, 1), (1, 2)])
        assert set(view.relation().aligned_tuples()) == {(1,)}

    def test_great_divide_group_lifecycle(self):
        db = connect()
        db.add_table("r1", Relation(["a", "b"], [(1, 1), (1, 2)]))
        db.add_table("r2", Relation(["b", "c"], [(1, 10), (2, 10)]))
        view = db.create_view("g", db.table("r1").great_divide(db.table("r2")))
        view.run()
        assert set(view.relation().aligned_tuples()) == {(1, 10)}
        db.insert("r2", [(3, 20)])  # a new group c=20 requiring b=3
        assert set(view.relation().aligned_tuples()) == {(1, 10)}
        db.insert("r1", [(1, 3)])
        assert set(view.relation().aligned_tuples()) == {(1, 10), (1, 20)}
        db.delete("r2", [(3, 20)])  # the group empties: it must disappear
        assert set(view.relation().aligned_tuples()) == {(1, 10)}
