"""Table mutations: set-semantics insert/delete, versions, copy-on-write."""

import pytest

from repro.algebra import predicates as P
from repro.api import MutationResult, connect
from repro.errors import SchemaError, ViewError
from repro.relation import Relation


@pytest.fixture
def db():
    database = connect()
    database.add_table("r1", Relation(["a", "b"], [(1, 1), (1, 2), (2, 1)]))
    database.add_table("r2", Relation(["b"], [(1,), (2,)]))
    return database


class TestInsert:
    def test_insert_tuples_bumps_version(self, db):
        result = db.insert("r1", [(3, 1), (3, 2)])
        assert isinstance(result, MutationResult)
        assert result.changed
        assert result.version == 1 == db.table_version("r1")
        assert len(result.inserted) == 2 and not len(result.deleted)
        assert (3, 1) in {t for t in db.relation("r1").aligned_tuples()}

    def test_duplicate_insert_is_a_noop(self, db):
        db.insert("r1", [(1, 1)])
        assert db.table_version("r1") == 0
        result = db.insert("r1", [(1, 1), (9, 9)])
        assert result.version == 1
        assert result.inserted.aligned_tuples() == [(9, 9)]

    def test_insert_mappings_align_by_name(self, db):
        db.insert("r1", [{"b": 5, "a": 4}])
        assert (4, 5) in set(db.relation("r1").aligned_tuples())

    def test_insert_relation_realigns_by_schema(self, db):
        delta = Relation(["b", "a"], [(7, 6)])
        db.insert("r1", delta)
        assert (6, 7) in set(db.relation("r1").aligned_tuples())

    def test_insert_rows_from_another_result(self, db):
        rows = list(db.relation("r1"))
        db2 = connect()
        db2.add_table("r1", Relation(["a", "b"], []))
        db2.insert("r1", rows)
        assert db2.relation("r1") == db.relation("r1")

    def test_wrong_width_fails_loudly(self, db):
        with pytest.raises(SchemaError):
            db.insert("r1", [(1, 2, 3)])

    def test_wrong_attributes_fail_loudly(self, db):
        with pytest.raises(SchemaError):
            db.insert("r1", Relation(["x", "y"], [(1, 2)]))
        with pytest.raises(SchemaError):
            db.insert("r1", [{"a": 1, "z": 2}])

    def test_copy_on_write_leaves_old_relation_intact(self, db):
        before = db.relation("r1")
        size = len(before)
        db.insert("r1", [(8, 8)])
        assert len(before) == size
        assert len(db.relation("r1")) == size + 1


class TestDelete:
    def test_delete_by_value(self, db):
        result = db.delete("r1", [(1, 1)])
        assert result.changed and result.version == 1
        assert (1, 1) not in set(db.relation("r1").aligned_tuples())

    def test_delete_missing_rows_is_a_noop(self, db):
        result = db.delete("r1", [(99, 99)])
        assert not result.changed
        assert db.table_version("r1") == 0

    def test_delete_by_predicate_ast(self, db):
        db.delete("r1", P.Comparison(P.attr("a"), "=", 1))
        remaining = set(db.relation("r1").aligned_tuples())
        assert remaining == {(2, 1)}

    def test_delete_by_callable(self, db):
        db.delete("r1", lambda row: row["b"] == 1)
        assert set(db.relation("r1").aligned_tuples()) == {(1, 2)}

    def test_delete_everything_keeps_schema(self, db):
        db.delete("r2", lambda row: True)
        assert len(db.relation("r2")) == 0
        assert db.relation("r2").attributes == ("b",)


class TestVersions:
    def test_versions_snapshot(self, db):
        db.insert("r1", [(5, 5)])
        db.insert("r1", [(6, 6)])
        db.delete("r2", [(2,)])
        assert db.versions == {"r1": 2, "r2": 1}

    def test_unknown_table_raises(self, db):
        with pytest.raises(SchemaError):
            db.table_version("phantom")
        with pytest.raises((SchemaError, KeyError)):
            db.insert("phantom", [(1,)])

    def test_replace_table_bumps_version_and_routes_delta(self, db):
        db.replace_table("r1", Relation(["a", "b"], [(1, 1), (9, 9)]))
        assert db.table_version("r1") == 1
        assert set(db.relation("r1").aligned_tuples()) == {(1, 1), (9, 9)}

    def test_identical_replace_is_a_noop_version_wise(self, db):
        db.replace_table("r1", db.relation("r1"))
        assert db.table_version("r1") == 0


class TestMutationResultRepr:
    def test_repr_names_the_counts(self, db):
        result = db.insert("r1", [(7, 7)])
        text = repr(result)
        assert "r1" in text and "+1" in text and "version=1" in text


class TestViewErrorSurface:
    def test_view_lookup_of_unknown_name(self, db):
        with pytest.raises(ViewError):
            db.view("missing")
        with pytest.raises(ViewError):
            db.drop_view("missing")
