"""Partition-parallel execution: exchange, worker pool, partitioned wrappers.

The load-bearing property: for every division algorithm and every partition
count, the partitioned run returns *exactly* the serial quotient (tuples
and wrapper counts), because hash partitioning on the quotient attributes
never splits a candidate group.  The same holds for hash joins partitioned
on the join key and aggregation partitioned on the grouping key.
"""

import pytest
from hypothesis import given, settings

from repro.errors import ExecutionError
from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    HashAggregate,
    HashDivision,
    HashJoin,
    HashPartitionExchange,
    PartitionSource,
    PartitionedAggregate,
    PartitionedDivision,
    PartitionedHashJoin,
    RelationScan,
    execute_plan,
)
from repro.relation import Relation
from repro.relation.aggregates import count, sum_of
from repro.workloads import make_division_workload, make_great_division_workload
from tests.strategies import dividends, divisors, great_divisors

PARTITION_COUNTS = (1, 2, 7)


def serial_small(dividend, divisor, algorithm):
    operator = SMALL_DIVIDE_ALGORITHMS[algorithm](RelationScan(dividend), RelationScan(divisor))
    return execute_plan(operator)


def partitioned_small(dividend, divisor, algorithm, partitions, workers=1):
    operator = PartitionedDivision(
        RelationScan(dividend),
        RelationScan(divisor),
        algorithm=algorithm,
        partitions=partitions,
        workers=workers,
    )
    return execute_plan(operator), operator


# ----------------------------------------------------------------------
# the partitioning == serial property (all algorithms, K ∈ {1, 2, 7})
# ----------------------------------------------------------------------
class TestPartitionedDivisionEqualsSerial:
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    @pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(), divisor=divisors())
    def test_small_divide_property(self, algorithm, partitions, dividend, divisor):
        serial = serial_small(dividend, divisor, algorithm)
        result, operator = partitioned_small(dividend, divisor, algorithm, partitions)
        assert result.relation == serial.relation
        # The wrapper emits exactly the serial operator's tuple count.
        assert result.statistics["00:partitioned_division"] == len(serial.relation)

    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    @pytest.mark.parametrize("algorithm", sorted(GREAT_DIVIDE_ALGORITHMS))
    @settings(max_examples=25, deadline=None)
    @given(dividend=dividends(), divisor=great_divisors())
    def test_great_divide_property(self, algorithm, partitions, dividend, divisor):
        serial_op = GREAT_DIVIDE_ALGORITHMS[algorithm](
            RelationScan(dividend), RelationScan(divisor)
        )
        serial = execute_plan(serial_op)
        operator = PartitionedDivision(
            RelationScan(dividend),
            RelationScan(divisor),
            algorithm=algorithm,
            kind="great",
            partitions=partitions,
        )
        result = execute_plan(operator)
        assert result.relation == serial.relation

    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_empty_divisor(self, partitions):
        """Empty divisor: every candidate qualifies, in every partition."""
        dividend = Relation(["a", "b"], [(i, i % 3) for i in range(20)])
        divisor = Relation(["b"], [])
        for algorithm in sorted(SMALL_DIVIDE_ALGORITHMS):
            serial = serial_small(dividend, divisor, algorithm)
            result, _ = partitioned_small(dividend, divisor, algorithm, partitions)
            assert result.relation == serial.relation
            assert len(result.relation) == 20

    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_single_group(self, partitions):
        """One candidate group: all partitions but one are empty."""
        dividend = Relation(["a", "b"], [(1, 0), (1, 1), (1, 2)])
        divisor = Relation(["b"], [(0,), (1,)])
        for algorithm in sorted(SMALL_DIVIDE_ALGORITHMS):
            serial = serial_small(dividend, divisor, algorithm)
            result, _ = partitioned_small(dividend, divisor, algorithm, partitions)
            assert result.relation == serial.relation
            assert len(result.relation) == 1

    def test_empty_dividend(self):
        dividend = Relation(["a", "b"], [])
        divisor = Relation(["b"], [(1,)])
        result, operator = partitioned_small(dividend, divisor, "hash", 4)
        assert len(result.relation) == 0
        assert operator.partition_input_sizes == [0, 0, 0, 0]


@pytest.fixture(scope="module")
def workload():
    return make_division_workload(
        num_groups=120, divisor_size=6, containing_fraction=0.3, extra_values_per_group=4, seed=11
    )


class TestStatisticsAccounting:
    def test_counts_match_serial_run(self, workload):
        """Scans and wrapper output are charged exactly like the serial run."""
        serial = serial_small(workload.dividend, workload.divisor, "hash")
        result, _ = partitioned_small(workload.dividend, workload.divisor, "hash", 4)
        serial_counts = serial.statistics.tuples_by_operator
        partitioned_counts = result.statistics.tuples_by_operator
        assert partitioned_counts["00:partitioned_division"] == serial_counts["00:hash_division"]
        assert partitioned_counts["01:relation_scan"] == serial_counts["01:relation_scan"]
        assert partitioned_counts["02:relation_scan"] == serial_counts["02:relation_scan"]
        assert result.statistics.total_tuples == serial.statistics.total_tuples

    def test_max_intermediate_is_max_over_partitions_not_sum(self, workload):
        """The algebra simulation's quadratic blow-up shrinks ~K× when
        partitioned: the per-partition products are concurrent alternatives,
        not one big intermediate, so the plan-level metric takes their max."""
        serial = serial_small(workload.dividend, workload.divisor, "algebra_simulation")
        serial_product = next(
            value
            for label, value in serial.statistics.tuples_by_operator.items()
            if label.endswith(":product")
        )
        result, operator = partitioned_small(
            workload.dividend, workload.divisor, "algebra_simulation", 4
        )
        assert result.relation == serial.relation
        peaks = operator.partition_peaks()
        per_partition_products = [
            counters.get("06:product", 0) for counters in operator.partition_statistics
        ]
        # Total work is unchanged: partition products sum to the serial one.
        assert sum(per_partition_products) == serial_product
        # ... but the *peak* is the max over partitions, so the largest
        # single intermediate shrinks roughly by the partition count.
        assert peaks["06:product"] == max(per_partition_products)
        assert peaks["06:product"] < serial_product
        assert result.max_intermediate < serial.max_intermediate
        assert result.max_intermediate >= max(per_partition_products)

    def test_partition_peaks_feed_plan_statistics(self, workload):
        result, operator = partitioned_small(
            workload.dividend, workload.divisor, "algebra_simulation", 4
        )
        peak_labels = [
            label for label in result.statistics.partition_peaks if "partitioned_division" in label
        ]
        assert peak_labels, result.statistics.partition_peaks
        # partition peaks do not inflate the plan-level totals
        assert result.statistics.total_tuples == sum(
            result.statistics.tuples_by_operator.values()
        )


class TestWorkerPool:
    def test_process_pool_matches_inline(self, workload):
        serial = serial_small(workload.dividend, workload.divisor, "hash")
        pooled, operator = partitioned_small(workload.dividend, workload.divisor, "hash", 4, workers=2)
        assert pooled.relation == serial.relation
        assert operator.workers == 2

    def test_pool_reuse_across_executions(self, workload):
        operator = PartitionedDivision(
            RelationScan(workload.dividend),
            RelationScan(workload.divisor),
            algorithm="hash",
            partitions=4,
            workers=2,
        )
        first = execute_plan(operator)
        second = execute_plan(operator)
        assert first.relation == second.relation

    def test_lowering_workers_caps_in_flight_tasks(self, workload, monkeypatch):
        """The shared pool only grows; a later run with fewer workers must
        still be throttled to the requested concurrency, not the pool size."""
        from repro.physical.parallel import pool as pool_module

        pool_module.shutdown_pool()
        wide = PartitionedDivision(
            RelationScan(workload.dividend),
            RelationScan(workload.divisor),
            partitions=4,
            workers=4,
        )
        execute_plan(wide)  # grows the shared pool to 4 workers

        observed: list[int] = []
        original = pool_module._bounded_map

        def spying_bounded_map(pool, tasks, limit):
            observed.append(limit)
            return original(pool, tasks, limit)

        monkeypatch.setattr(pool_module, "_bounded_map", spying_bounded_map)
        serial = serial_small(workload.dividend, workload.divisor, "hash")
        result = execute_plan(wide, workers=2)
        assert result.relation == serial.relation
        assert observed == [2]

    def test_unpicklable_aggregations_fall_back_inline(self):
        source = Relation(["g", "v"], [(i % 4, i) for i in range(40)])
        aggregations = {"peak": ("max", lambda rows: max(row["v"] for row in rows))}
        serial = execute_plan(HashAggregate(RelationScan(source), ["g"], aggregations))
        operator = PartitionedAggregate(
            RelationScan(source), ["g"], aggregations, partitions=4, workers=2
        )
        result = execute_plan(operator)
        assert result.relation == serial.relation


class TestPartitionedJoinAndAggregate:
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    @pytest.mark.parametrize("algorithm", ["hash", "nested_loops"])
    def test_partitioned_join_equals_serial(self, algorithm, partitions):
        left = Relation(["a", "b"], [(i, i % 9) for i in range(60)])
        right = Relation(["b", "c"], [(i % 9, i) for i in range(30)])
        serial = execute_plan(HashJoin(RelationScan(left), RelationScan(right)))
        operator = PartitionedHashJoin(
            RelationScan(left), RelationScan(right), algorithm=algorithm, partitions=partitions
        )
        result = execute_plan(operator)
        assert result.relation == serial.relation

    def test_partitioned_join_requires_shared_attributes(self):
        left = Relation(["a"], [(1,)])
        right = Relation(["b"], [(2,)])
        with pytest.raises(ExecutionError, match="shared attributes"):
            PartitionedHashJoin(RelationScan(left), RelationScan(right))

    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_partitioned_aggregate_equals_serial(self, partitions):
        source = Relation(["g", "h", "v"], [(i % 5, i % 3, i) for i in range(50)])
        aggregations = {"n": count(), "total": sum_of("v")}
        serial = execute_plan(HashAggregate(RelationScan(source), ["g", "h"], aggregations))
        operator = PartitionedAggregate(
            RelationScan(source), ["g", "h"], aggregations, partitions=partitions
        )
        result = execute_plan(operator)
        assert result.relation == serial.relation

    def test_partitioned_aggregate_requires_grouping(self):
        source = Relation(["v"], [(1,)])
        with pytest.raises(ExecutionError, match="grouping"):
            PartitionedAggregate(RelationScan(source), [], {"n": count()})


class TestExchange:
    def test_partitions_are_key_disjoint_and_complete(self, workload):
        exchange = HashPartitionExchange(["a"], 5)
        buckets = exchange.partition(RelationScan(workload.dividend))
        assert len(buckets) == 5
        all_tuples = [values for bucket in buckets for values in bucket]
        assert sorted(all_tuples) == sorted(workload.dividend.aligned_tuples())
        keys_per_bucket = [{values[0] for values in bucket} for bucket in buckets]
        for index, keys in enumerate(keys_per_bucket):
            for other in keys_per_bucket[index + 1 :]:
                assert keys.isdisjoint(other)

    def test_single_partition_is_passthrough(self, workload):
        exchange = HashPartitionExchange(["a"], 1)
        (bucket,) = exchange.partition(RelationScan(workload.dividend))
        assert bucket == workload.dividend.aligned_tuples()

    def test_partitioning_preserves_clustered_runs(self):
        """Contiguous equal-key runs stay contiguous inside their bucket, so
        the streaming merge-group division stays valid per partition."""
        clustered = Relation(
            ["a", "b"], [(group, value) for group in range(30) for value in range(3)]
        ).clustered(["a"])
        exchange = HashPartitionExchange(["a"], 4)
        for bucket in exchange.partition(RelationScan(clustered)):
            seen: list[int] = []
            for values in bucket:
                if not seen or seen[-1] != values[0]:
                    assert values[0] not in seen, "group split across runs in one bucket"
                    seen.append(values[0])

    def test_streaming_merge_sort_per_partition(self):
        workload = make_division_workload(
            num_groups=100, divisor_size=5, containing_fraction=0.4, extra_values_per_group=3, seed=13
        )
        clustered = workload.dividend.clustered(["a"])
        serial = serial_small(clustered, workload.divisor, "merge_sort")
        operator = PartitionedDivision(
            RelationScan(clustered),
            RelationScan(workload.divisor),
            algorithm="merge_sort",
            partitions=3,
            assume_clustered=True,
        )
        result = execute_plan(operator)
        assert result.relation == serial.relation
        assert "streaming" in operator.describe()

    def test_invalid_configuration_raises(self, workload):
        scan = RelationScan(workload.dividend)
        divisor = RelationScan(workload.divisor)
        with pytest.raises(ExecutionError, match="partition"):
            HashPartitionExchange(["a"], 0)
        with pytest.raises(ExecutionError, match="partition-key"):
            HashPartitionExchange([], 2)
        with pytest.raises(ExecutionError, match="workers"):
            PartitionedDivision(scan, divisor, partitions=2, workers=0)
        with pytest.raises(ExecutionError, match="algorithm"):
            PartitionedDivision(scan, divisor, algorithm="bogus")
        with pytest.raises(ExecutionError, match="kind"):
            PartitionedDivision(scan, divisor, kind="medium")

    def test_partition_source_slices_by_batch_size(self):
        source = PartitionSource(("a", "b"), [(i, i) for i in range(10)])
        source.set_batch_size(3)
        sizes = [len(chunk) for chunk in source.chunks()]
        assert sizes == [3, 3, 3, 1]
        assert source.tuples_out == 10


class TestWorkersPlumbing:
    def test_set_workers_retargets_exchanges(self, workload):
        operator = PartitionedDivision(
            RelationScan(workload.dividend),
            RelationScan(workload.divisor),
            partitions=4,
            workers=4,
        )
        operator.set_workers(1)
        assert operator.workers == 1

    def test_execute_plan_workers_override(self, workload):
        operator = PartitionedDivision(
            RelationScan(workload.dividend),
            RelationScan(workload.divisor),
            partitions=4,
            workers=4,
        )
        serial = serial_small(workload.dividend, workload.divisor, "hash")
        result = execute_plan(operator, workers=1)
        assert operator.workers == 1
        assert result.relation == serial.relation

    def test_execute_plan_rejects_bad_workers(self, workload):
        operator = PartitionedDivision(
            RelationScan(workload.dividend), RelationScan(workload.divisor)
        )
        with pytest.raises(ExecutionError, match="workers"):
            execute_plan(operator, workers=0)

    def test_set_workers_is_noop_on_serial_plans(self, workload):
        operator = HashDivision(
            RelationScan(workload.dividend), RelationScan(workload.divisor)
        )
        operator.set_workers(4)  # nothing to retarget; must not raise
        assert execute_plan(operator).relation == serial_small(
            workload.dividend, workload.divisor, "hash"
        ).relation
