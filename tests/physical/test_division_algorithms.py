"""Tests for the physical division algorithms (small and great divide)."""

import pytest
from hypothesis import given

from repro.division import great_divide, small_divide
from repro.errors import ExecutionError
from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    AlgebraSimulationDivision,
    HashDivision,
    RelationScan,
    execute_plan,
)
from repro.relation import Relation
from repro.workloads import make_division_workload, make_great_division_workload
from tests.strategies import dividends, divisors, great_divisors


def scan(relation):
    return RelationScan(relation)


class TestSmallDivideAlgorithms:
    @pytest.mark.parametrize("name", sorted(SMALL_DIVIDE_ALGORITHMS))
    def test_figure_1(self, name, figure1_dividend, figure1_divisor, figure1_quotient):
        algorithm = SMALL_DIVIDE_ALGORITHMS[name]
        plan = algorithm(scan(figure1_dividend), scan(figure1_divisor))
        assert plan.execute() == figure1_quotient

    @pytest.mark.parametrize("name", sorted(SMALL_DIVIDE_ALGORITHMS))
    @given(dividend=dividends(), divisor=divisors())
    def test_agrees_with_logical_reference(self, name, dividend, divisor):
        algorithm = SMALL_DIVIDE_ALGORITHMS[name]
        plan = algorithm(scan(dividend), scan(divisor))
        assert plan.execute() == small_divide(dividend, divisor)

    @pytest.mark.parametrize("name", sorted(SMALL_DIVIDE_ALGORITHMS))
    def test_on_generated_workload(self, name):
        workload = make_division_workload(num_groups=40, divisor_size=5, containing_fraction=0.25, seed=7)
        algorithm = SMALL_DIVIDE_ALGORITHMS[name]
        plan = algorithm(scan(workload.dividend), scan(workload.divisor))
        result = plan.execute()
        assert result == small_divide(workload.dividend, workload.divisor)
        assert len(result) == workload.expected_quotient_size

    def test_schema_validation(self, figure1_dividend):
        with pytest.raises(ExecutionError):
            HashDivision(scan(figure1_dividend), scan(Relation(["z"], [(1,)])))
        with pytest.raises(ExecutionError):
            HashDivision(scan(Relation(["b"], [(1,)])), scan(Relation(["b"], [(1,)])))

    def test_empty_divisor(self, figure1_dividend):
        plan = HashDivision(scan(figure1_dividend), scan(Relation.empty(["b"])))
        assert plan.execute().to_set("a") == {1, 2, 3}

    def test_quotient_schema(self, figure1_dividend, figure1_divisor):
        plan = HashDivision(scan(figure1_dividend), scan(figure1_divisor))
        assert plan.schema.names == ("a",)


class TestIntermediateResultSizes:
    """The Leinders & Van den Bussche argument: simulation is quadratic."""

    def test_algebra_simulation_produces_quadratic_intermediate(self):
        workload = make_division_workload(num_groups=30, divisor_size=6, seed=3)
        candidates = len(workload.dividend.project(["a"]))

        simulated = AlgebraSimulationDivision(scan(workload.dividend), scan(workload.divisor))
        simulated_stats = execute_plan(simulated).statistics
        hash_division = HashDivision(scan(workload.dividend), scan(workload.divisor))
        hash_stats = execute_plan(hash_division).statistics

        # The simulation materializes π_A(r1) × r2 — |candidates| * |divisor| tuples.
        assert simulated_stats.max_intermediate >= candidates * len(workload.divisor)
        # The special-purpose operator never exceeds its input size.
        assert hash_stats.max_intermediate <= len(workload.dividend)

    def test_both_produce_the_same_answer(self):
        workload = make_division_workload(num_groups=30, divisor_size=6, seed=3)
        simulated = AlgebraSimulationDivision(scan(workload.dividend), scan(workload.divisor))
        hash_division = HashDivision(scan(workload.dividend), scan(workload.divisor))
        assert simulated.execute() == hash_division.execute()


class TestGreatDivideAlgorithms:
    @pytest.mark.parametrize("name", sorted(GREAT_DIVIDE_ALGORITHMS))
    def test_figure_2(self, name, figure1_dividend, figure2_divisor, figure2_quotient):
        algorithm = GREAT_DIVIDE_ALGORITHMS[name]
        plan = algorithm(scan(figure1_dividend), scan(figure2_divisor))
        assert plan.execute() == figure2_quotient

    @pytest.mark.parametrize("name", sorted(GREAT_DIVIDE_ALGORITHMS))
    @given(dividend=dividends(), divisor=great_divisors())
    def test_agrees_with_logical_reference(self, name, dividend, divisor):
        algorithm = GREAT_DIVIDE_ALGORITHMS[name]
        plan = algorithm(scan(dividend), scan(divisor))
        assert plan.execute() == great_divide(dividend, divisor)

    @pytest.mark.parametrize("name", sorted(GREAT_DIVIDE_ALGORITHMS))
    def test_on_generated_workload(self, name):
        workload = make_great_division_workload(seed=11)
        algorithm = GREAT_DIVIDE_ALGORITHMS[name]
        plan = algorithm(scan(workload.dividend), scan(workload.divisor))
        result = plan.execute()
        assert result == great_divide(workload.dividend, workload.divisor)
        assert len(result) == workload.expected_quotient_size

    def test_schema_validation(self, figure1_dividend):
        algorithm = GREAT_DIVIDE_ALGORITHMS["hash"]
        with pytest.raises(ExecutionError):
            algorithm(scan(figure1_dividend), scan(Relation(["z", "c"], [(1, 1)])))

    def test_duplicate_divisor_rows_do_not_inflate_group_size(self, figure1_dividend):
        """Hash great division must count distinct (c, b) pairs only."""
        divisor = Relation(["b", "c"], [(1, 1), (3, 1)])
        duplicated = RelationScan(divisor)
        plan = GREAT_DIVIDE_ALGORITHMS["hash"](scan(figure1_dividend), duplicated)
        assert plan.execute().to_tuples(["a", "c"]) == {(2, 1), (3, 1)}
