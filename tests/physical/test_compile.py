"""The compilation backend: fused segments, parity, modes and explain.

The contract under test (PR 6):

* compiled plans are **bit-identical** to the interpreter — same result
  relation *and* same per-operator tuple counts (the paper's
  max-intermediate metric) on the Section 4 queries, on all eight division
  algorithms, at every batch size and worker count;
* ``PlannerOptions.compile`` follows the established override pattern:
  unknown values fail at prepare time (not execution) listing the valid
  choices, and the mode participates in the plan-cache signature;
* structurally identical segments share one compiled code object;
* ``explain()`` reports compilation status, per-operator fusion markers,
  the generated source (``verbose=True``) and the coordinator/worker
  wall-clock split (``analyze=True``).
"""

import pytest

import repro
from repro.algebra import predicates as P
from repro.api.fingerprint import optimizer_signature
from repro.errors import PlanningError
from repro.experiments import Q1, Q2, Q3, Q2_NOT_EXISTS
from repro.optimizer.planner import PlannerOptions
from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    Filter,
    HashDivision,
    ProjectOp,
    RelationScan,
    RenameOp,
    compile_plan,
    execute_plan,
)
from repro.physical.compile import clear_code_cache, code_cache_size
from repro.workloads import (
    make_division_workload,
    make_great_division_workload,
    textbook_catalog,
)

PAPER_QUERIES = {"Q1": Q1, "Q2": Q2, "Q3": Q3, "Q2_NOT_EXISTS": Q2_NOT_EXISTS}


@pytest.fixture(scope="module")
def small_workload():
    return make_division_workload(
        num_groups=60, divisor_size=5, containing_fraction=0.3, extra_values_per_group=4, seed=11
    )


@pytest.fixture(scope="module")
def great_workload():
    return make_great_division_workload(
        dividend_groups=40,
        dividend_group_size=6,
        divisor_groups=8,
        divisor_group_size=3,
        domain_size=20,
        seed=12,
    )


def _keep_all():
    """An inlinable predicate that keeps every (a, b) tuple flowing."""
    return P.conjunction([P.greater_equal(P.attr("a"), 0), P.not_equals(P.attr("b"), -1)])


def _run_both(plan_factory):
    """Execute a plan interpreted and compiled; return both results."""
    interpreted = execute_plan(plan_factory())
    compiled_plan = plan_factory()
    compile_plan(compiled_plan)
    compiled = execute_plan(compiled_plan)
    return interpreted, compiled


class TestSegmentCompiler:
    def test_fused_chain_matches_interpreter_bit_for_bit(self, small_workload):
        def build():
            return ProjectOp(
                Filter(RelationScan(small_workload.dividend), _keep_all()), ("a",)
            )

        interpreted, compiled = _run_both(build)
        assert compiled.relation == interpreted.relation
        assert (
            compiled.statistics.tuples_by_operator
            == interpreted.statistics.tuples_by_operator
        )

    def test_producer_attaches_to_the_root_only(self, small_workload):
        plan = ProjectOp(Filter(RelationScan(small_workload.dividend), _keep_all()), ("a",))
        report = compile_plan(plan)
        assert report.segment_count == 1
        assert report.segments[0].fused_count == 2
        assert plan._compiled_producer is not None
        assert plan.children[0]._compiled_producer is None  # interior, fused away

    def test_rename_fuses_for_free(self, small_workload):
        def build():
            return ProjectOp(
                RenameOp(
                    Filter(RelationScan(small_workload.dividend), _keep_all()),
                    {"a": "x"},
                ),
                ("x",),
            )

        interpreted, compiled = _run_both(build)
        assert compiled.relation == interpreted.relation
        assert (
            compiled.statistics.tuples_by_operator
            == interpreted.statistics.tuples_by_operator
        )

    def test_opaque_predicate_falls_back_to_row_call(self, small_workload):
        def build():
            return Filter(RelationScan(small_workload.dividend), lambda row: row["a"] % 2 == 0)

        interpreted, compiled = _run_both(build)
        assert compiled.relation == interpreted.relation

    def test_identical_segments_share_one_code_object(self, small_workload):
        clear_code_cache()

        def build(value):
            return ProjectOp(
                Filter(
                    RelationScan(small_workload.dividend),
                    P.equals(P.attr("b"), value),
                ),
                ("a",),
            )

        first = compile_plan(build(1))
        second = compile_plan(build(2))  # different literal, same structure
        assert not first.segments[0].shared
        assert second.segments[0].shared
        assert code_cache_size() == 1
        assert first.segments[0].source == second.segments[0].source

    def test_plan_without_fusable_operators_reports_none(self, small_workload):
        plan = HashDivision(
            RelationScan(small_workload.dividend), RelationScan(small_workload.divisor)
        )
        report = compile_plan(plan)
        assert report.segment_count == 0
        assert report.summary().startswith("no (no fusable segments")


class TestCompiledParityOnPaperQueries:
    @pytest.mark.parametrize("batch_size", [1, 3, 1024])
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_batch_sizes(self, name, batch_size):
        off = repro.connect(textbook_catalog, batch_size=batch_size, compile=False)
        on = repro.connect(textbook_catalog, batch_size=batch_size, compile=True)
        interpreted = off.sql(PAPER_QUERIES[name]).run()
        compiled = on.sql(PAPER_QUERIES[name]).run()
        assert compiled.relation == interpreted.relation
        assert compiled.tuple_counts == interpreted.tuple_counts

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_worker_counts(self, name, workers):
        off = repro.connect(textbook_catalog, workers=workers, compile=False)
        on = repro.connect(textbook_catalog, workers=workers, compile=True)
        interpreted = off.sql(PAPER_QUERIES[name]).run()
        compiled = on.sql(PAPER_QUERIES[name]).run()
        assert compiled.relation == interpreted.relation
        assert compiled.tuple_counts == interpreted.tuple_counts


class TestCompiledParityOnDivisionAlgorithms:
    @pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
    def test_small_divide(self, small_workload, algorithm):
        operator_class = SMALL_DIVIDE_ALGORITHMS[algorithm]

        def build():
            return operator_class(
                Filter(RelationScan(small_workload.dividend), _keep_all()),
                RelationScan(small_workload.divisor),
            )

        interpreted, compiled = _run_both(build)
        assert compiled.relation == interpreted.relation
        assert (
            compiled.statistics.tuples_by_operator
            == interpreted.statistics.tuples_by_operator
        )
        assert len(compiled.relation) == small_workload.expected_quotient_size

    @pytest.mark.parametrize("algorithm", sorted(GREAT_DIVIDE_ALGORITHMS))
    def test_great_divide(self, great_workload, algorithm):
        operator_class = GREAT_DIVIDE_ALGORITHMS[algorithm]

        def build():
            return operator_class(
                Filter(RelationScan(great_workload.dividend), _keep_all()),
                RelationScan(great_workload.divisor),
            )

        interpreted, compiled = _run_both(build)
        assert compiled.relation == interpreted.relation
        assert (
            compiled.statistics.tuples_by_operator
            == interpreted.statistics.tuples_by_operator
        )


class TestCompileModes:
    def test_unknown_compile_mode_rejected_at_prepare_time(self):
        """Regression (PR 4 pattern): an unknown override must fail when the
        plan is prepared — not at execution — and list the valid choices."""
        # Building the options object alone does not raise...
        options = PlannerOptions(compile="quantum")
        db = repro.connect(textbook_catalog, planner_options=options)
        # ...preparing a query does, listing the modes.
        with pytest.raises(PlanningError) as excinfo:
            db.sql(Q2).run()
        message = str(excinfo.value)
        assert "unknown compile mode 'quantum'" in message
        assert "auto" in message and "off" in message and "on" in message

    def test_compile_off_keeps_the_interpreter(self):
        db = repro.connect(textbook_catalog, compile=False)
        text = db.sql(Q2).explain()
        assert "compiled    : no (compilation off)" in text
        assert "compiled segment" not in text

    def test_compile_defaults_to_auto_and_fuses(self):
        text = repro.connect(textbook_catalog).sql(Q2).explain()
        assert "compiled    : yes · 1 segment" in text
        assert "· compiled segment (" in text

    @pytest.mark.parametrize("mode", [None, True, False, "auto", "on", "off"])
    def test_every_mode_returns_identical_results(self, mode):
        reference = repro.connect(textbook_catalog, compile=False).sql(Q2).run()
        result = repro.connect(textbook_catalog, compile=mode).sql(Q2).run()
        assert result.relation == reference.relation
        assert result.tuple_counts == reference.tuple_counts

    def test_compile_kw_overrides_planner_options(self):
        db = repro.connect(
            textbook_catalog, planner_options=PlannerOptions(compile="off"), compile="on"
        )
        assert db.planner_options.compile == "on"

    def test_signature_depends_on_compile_mode(self):
        default = optimizer_signature(False, PlannerOptions())
        on = optimizer_signature(False, PlannerOptions(compile="on"))
        off = optimizer_signature(False, PlannerOptions(compile="off"))
        assert len({default, on, off}) == 3

    def test_signature_never_raises_on_unknown_mode(self):
        # The signature is computed while building cache keys; a bad mode
        # must surface as a PlanningError at prepare time, not here.
        signature = optimizer_signature(False, PlannerOptions(compile="quantum"))
        assert signature != optimizer_signature(False, PlannerOptions())


class TestExplainCompilation:
    def test_verbose_appends_generated_source(self):
        text = repro.connect(textbook_catalog).sql(Q2).explain(verbose=True)
        assert "Compiled segments" in text
        assert "def _segment(_pull, _bind):" in text
        assert "operator(s) fused" in text

    def test_verbose_without_segments_has_no_source_section(self):
        text = repro.connect(textbook_catalog).sql(Q1).explain(verbose=True)
        assert "compiled    : no (no fusable segments, mode=auto)" in text
        assert "Compiled segments" not in text

    def test_analyze_reports_coordinator_worker_split(self):
        text = repro.connect(textbook_catalog).sql(Q2).explain(analyze=True)
        assert "(coordinator " in text
        assert " ms + workers " in text
