"""Batched execution invariants.

Every physical operator streams via ``_produce_batches()``; the batch size
is an execution detail that must never change the produced relation or the
per-operator tuple counts.  These tests sweep batch sizes 1, 2 and 1024 over
randomized division workloads and over a composite plan of the basic
operators.
"""

import random

import pytest

from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    DuplicateElimination,
    Filter,
    HashAggregate,
    HashJoin,
    ProjectOp,
    RelationScan,
    UnionOp,
    execute_plan,
)
from repro.relation import Relation, aggregates

BATCH_SIZES = (1, 2, 1024)


def _random_small_workload(seed):
    rng = random.Random(seed)
    dividend = Relation(
        ["a", "b"],
        [(rng.randrange(12), rng.randrange(6)) for _ in range(rng.randrange(1, 120))],
    )
    divisor = Relation(["b"], [(value,) for value in rng.sample(range(6), rng.randrange(1, 5))])
    return dividend, divisor


def _random_great_workload(seed):
    rng = random.Random(seed)
    dividend = Relation(
        ["a", "b"],
        [(rng.randrange(10), rng.randrange(6)) for _ in range(rng.randrange(1, 100))],
    )
    divisor = Relation(
        ["b", "c"],
        [(rng.randrange(6), rng.randrange(4)) for _ in range(rng.randrange(1, 30))],
    )
    return dividend, divisor


@pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
@pytest.mark.parametrize("seed", range(6))
def test_small_divide_identical_across_batch_sizes(algorithm, seed):
    dividend, divisor = _random_small_workload(seed)
    operator_class = SMALL_DIVIDE_ALGORITHMS[algorithm]
    outcomes = []
    for batch_size in BATCH_SIZES:
        plan = operator_class(RelationScan(dividend), RelationScan(divisor))
        plan.set_batch_size(batch_size)
        outcomes.append(execute_plan(plan))
    reference = outcomes[0]
    for outcome in outcomes[1:]:
        assert outcome.relation == reference.relation
        assert outcome.statistics.tuples_by_operator == reference.statistics.tuples_by_operator


@pytest.mark.parametrize("algorithm", sorted(GREAT_DIVIDE_ALGORITHMS))
@pytest.mark.parametrize("seed", range(6))
def test_great_divide_identical_across_batch_sizes(algorithm, seed):
    dividend, divisor = _random_great_workload(seed)
    operator_class = GREAT_DIVIDE_ALGORITHMS[algorithm]
    outcomes = []
    for batch_size in BATCH_SIZES:
        plan = operator_class(RelationScan(dividend), RelationScan(divisor))
        plan.set_batch_size(batch_size)
        outcomes.append(execute_plan(plan))
    reference = outcomes[0]
    for outcome in outcomes[1:]:
        assert outcome.relation == reference.relation
        assert outcome.statistics.tuples_by_operator == reference.statistics.tuples_by_operator


@pytest.mark.parametrize("seed", range(4))
def test_composite_plan_identical_across_batch_sizes(seed):
    """Filter → project → join → union → distinct → aggregate pipeline."""
    rng = random.Random(seed)
    left = Relation(
        ["a", "b"], [(rng.randrange(8), rng.randrange(5)) for _ in range(rng.randrange(1, 80))]
    )
    right = Relation(
        ["b", "c"], [(rng.randrange(5), rng.randrange(4)) for _ in range(rng.randrange(1, 40))]
    )

    def build():
        joined = HashJoin(RelationScan(left), RelationScan(right))
        filtered = Filter(joined, lambda row: row["a"] % 2 == 0)
        union = UnionOp(ProjectOp(filtered, ["a", "b"]), RelationScan(left))
        return HashAggregate(
            DuplicateElimination(union), ["a"], {"n": aggregates.count("b")}
        )

    outcomes = []
    for batch_size in BATCH_SIZES:
        plan = build()
        plan.set_batch_size(batch_size)
        outcomes.append(execute_plan(plan))
    reference = outcomes[0]
    for outcome in outcomes[1:]:
        assert outcome.relation == reference.relation
        assert outcome.statistics.tuples_by_operator == reference.statistics.tuples_by_operator


def test_small_divide_matches_logical_reference():
    """Physical algorithms agree with the logical small divide on randomized input."""
    from repro.division import small_divide

    for seed in range(5):
        dividend, divisor = _random_small_workload(100 + seed)
        expected = small_divide(dividend, divisor)
        for name, operator_class in SMALL_DIVIDE_ALGORITHMS.items():
            plan = operator_class(RelationScan(dividend), RelationScan(divisor))
            plan.set_batch_size(2)
            assert plan.execute() == expected, name


def test_keyless_semijoin_probe_does_not_inflate_counts():
    """The emptiness probe of the degenerate (no shared attribute) semi-join
    must charge inner operators row-at-a-time counts, not a whole batch."""
    from repro.physical import Filter, HashSemiJoin

    big = Relation(["b"], [(i,) for i in range(5000)])
    left = Relation(["a"], [(1,), (2,)])
    plan = HashSemiJoin(RelationScan(left), Filter(RelationScan(big), lambda row: True))
    outcome = execute_plan(plan)
    counts = outcome.statistics.tuples_by_operator
    assert counts["02:filter"] == 1
    assert counts["03:relation_scan"] == 1
    assert outcome.max_intermediate == 2
    # the probe must restore the configured batch size afterwards
    assert all(operator.batch_size == plan.batch_size for operator in plan.walk())


def test_set_batch_size_rejects_nonpositive():
    from repro.errors import ExecutionError

    plan = RelationScan(Relation(["a"], [(1,)]))
    with pytest.raises(ExecutionError):
        plan.set_batch_size(0)


def test_wall_clock_timing_reported():
    dividend, divisor = _random_small_workload(7)
    plan = SMALL_DIVIDE_ALGORITHMS["hash"](RelationScan(dividend), RelationScan(divisor))
    outcome = execute_plan(plan)
    assert outcome.elapsed_seconds >= 0.0
    assert outcome.statistics.elapsed_seconds == outcome.elapsed_seconds


def test_labels_are_unique_within_a_plan():
    dividend, divisor = _random_small_workload(8)
    plan = SMALL_DIVIDE_ALGORITHMS["algebra_simulation"](
        RelationScan(dividend), RelationScan(divisor)
    )
    # The algebra-simulation plan shares its dividend scan between two
    # branches, so dedupe by operator identity: distinct operators must
    # never share a label (the old id()-hash scheme could collide).
    distinct = {id(operator): operator for operator in plan.walk()}
    labels = [operator.label for operator in distinct.values()]
    assert len(labels) == len(set(labels))
    plan.assign_labels()
    labels = [operator.label for operator in distinct.values()]
    assert len(labels) == len(set(labels))
    assert plan.label.endswith("#0000")
