"""Tests for plan statistics, explain output and operator plumbing."""

import pytest

from repro.errors import ExecutionError
from repro.physical import (
    Filter,
    HashDivision,
    PhysicalOperator,
    PlanStatistics,
    ProjectOp,
    RelationScan,
    collect_statistics,
    execute_plan,
)
from repro.relation import Relation


class TestPlanStatistics:
    def test_totals_and_max(self):
        stats = PlanStatistics({"00:scan": 10, "01:filter": 4})
        assert stats.total_tuples == 14
        assert stats.max_intermediate == 10
        assert stats["00:scan"] == 10
        assert stats["missing"] == 0

    def test_empty_statistics(self):
        stats = PlanStatistics()
        assert stats.total_tuples == 0
        assert stats.max_intermediate == 0

    def test_collect_statistics_labels_operators_in_walk_order(self, figure1_dividend):
        plan = ProjectOp(RelationScan(figure1_dividend), ["a"])
        plan.execute()
        stats = collect_statistics(plan)
        assert set(stats.tuples_by_operator) == {"00:project", "01:relation_scan"}
        assert stats.tuples_by_operator["00:project"] == 3
        assert stats.tuples_by_operator["01:relation_scan"] == 9


class TestOperatorPlumbing:
    def test_walk_visits_the_whole_tree(self, figure1_dividend, figure1_divisor):
        plan = HashDivision(RelationScan(figure1_dividend), RelationScan(figure1_divisor))
        names = [operator.name for operator in plan.walk()]
        assert names == ["hash_division", "relation_scan", "relation_scan"]

    def test_reset_counters(self, figure1_dividend):
        plan = ProjectOp(RelationScan(figure1_dividend), ["a"])
        plan.execute()
        assert plan.tuples_out > 0
        plan.reset_counters()
        assert all(operator.tuples_out == 0 for operator in plan.walk())

    def test_repeated_execution_is_idempotent(self, figure1_dividend, figure1_divisor):
        plan = HashDivision(RelationScan(figure1_dividend), RelationScan(figure1_divisor))
        first = execute_plan(plan)
        second = execute_plan(plan)
        assert first.relation == second.relation
        assert first.statistics.tuples_by_operator == second.statistics.tuples_by_operator

    def test_explain_is_indented(self, figure1_dividend, figure1_divisor):
        plan = Filter(
            HashDivision(RelationScan(figure1_dividend), RelationScan(figure1_divisor)),
            lambda row: True,
        )
        lines = plan.explain().splitlines()
        assert lines[0].startswith("Filter")
        assert lines[1].startswith("  hash_division")
        assert lines[2].startswith("    RelationScan")

    def test_label_contains_operator_name(self, figure1_dividend):
        scan = RelationScan(figure1_dividend)
        assert scan.label.startswith("relation_scan#")

    def test_base_class_requires_children_helper(self):
        with pytest.raises(ExecutionError):
            PhysicalOperator._require_children((), 2, "test-operator")

    def test_repr_mentions_schema(self, figure1_dividend):
        assert "('a', 'b')" in repr(RelationScan(figure1_dividend))

    def test_execute_materializes_set_semantics(self):
        duplicated = Relation(["a"], [(1,)])
        plan = ProjectOp(RelationScan(duplicated.union(Relation(["a"], [(1,)]))), ["a"])
        assert len(plan.execute()) == 1
