"""Bitset-kernel dispatch: python/numpy parity, fallbacks, selection.

Results must never depend on the kernel in use: the numpy fast path falls
back to the Python reference per call whenever a mask does not fit in
``uint64`` (wide divisors) or a conversion fails, and the match scans
return ascending indices — the same emission order as the reference.
"""

import pytest

from repro.errors import ExecutionError
from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    RelationScan,
    available_kernels,
    execute_plan,
    numpy_available,
    set_kernel,
    use_kernel,
)
from repro.physical.compile.kernels import (
    KERNEL_NAMES,
    NumpyBitsetKernel,
    PythonBitsetKernel,
    active_kernel,
)
from repro.workloads import make_division_workload, make_great_division_workload

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


@pytest.fixture(scope="module")
def workload():
    """Big enough (≥32 candidates) to cross the vectorization threshold."""
    return make_division_workload(
        num_groups=80, divisor_size=6, containing_fraction=0.3, extra_values_per_group=5, seed=13
    )


@pytest.fixture(scope="module")
def great_workload():
    return make_great_division_workload(
        dividend_groups=50,
        dividend_group_size=6,
        divisor_groups=9,
        divisor_group_size=3,
        domain_size=24,
        seed=14,
    )


@pytest.fixture(scope="module")
def wide_workload():
    """A 96-value divisor: masks exceed 64 bits, forcing the numpy kernel
    onto its per-call Python fallback."""
    workload = make_division_workload(
        num_groups=40, divisor_size=96, containing_fraction=0.3, extra_values_per_group=4, seed=15
    )
    assert len(workload.divisor) > 64
    return workload


class TestKernelSelection:
    def test_available_kernels_always_include_python(self):
        kernels = available_kernels()
        assert kernels[0] == "python"
        assert ("numpy" in kernels) == numpy_available()

    def test_unknown_kernel_name_rejected_with_choices(self):
        with pytest.raises(ExecutionError) as excinfo:
            set_kernel("quantum")
        message = str(excinfo.value)
        assert "unknown bitset kernel 'quantum'" in message
        for name in KERNEL_NAMES:
            assert name in message

    def test_numpy_request_fails_cleanly_when_unavailable(self):
        if numpy_available():
            pytest.skip("numpy is importable here; the guard fires on CI")
        with pytest.raises(ExecutionError, match="numpy is not importable"):
            set_kernel("numpy")

    def test_use_kernel_restores_the_previous_choice(self):
        baseline = active_kernel()
        with use_kernel("python"):
            assert isinstance(active_kernel(), PythonBitsetKernel)
            assert not isinstance(active_kernel(), NumpyBitsetKernel)
        assert active_kernel() is baseline

    @requires_numpy
    def test_auto_prefers_numpy_when_importable(self):
        with use_kernel("auto"):
            assert isinstance(active_kernel(), NumpyBitsetKernel)


@requires_numpy
class TestKernelParity:
    @pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
    def test_small_divide_algorithms(self, workload, algorithm):
        operator_class = SMALL_DIVIDE_ALGORITHMS[algorithm]

        def run():
            return execute_plan(
                operator_class(
                    RelationScan(workload.dividend), RelationScan(workload.divisor)
                )
            )

        with use_kernel("python"):
            reference = run()
        with use_kernel("numpy"):
            vectorized = run()
        assert vectorized.relation == reference.relation
        assert (
            vectorized.statistics.tuples_by_operator
            == reference.statistics.tuples_by_operator
        )
        assert len(reference.relation) == workload.expected_quotient_size

    @pytest.mark.parametrize("algorithm", sorted(GREAT_DIVIDE_ALGORITHMS))
    def test_great_divide_algorithms(self, great_workload, algorithm):
        operator_class = GREAT_DIVIDE_ALGORITHMS[algorithm]

        def run():
            return execute_plan(
                operator_class(
                    RelationScan(great_workload.dividend),
                    RelationScan(great_workload.divisor),
                )
            )

        with use_kernel("python"):
            reference = run()
        with use_kernel("numpy"):
            vectorized = run()
        assert vectorized.relation == reference.relation
        assert (
            vectorized.statistics.tuples_by_operator
            == reference.statistics.tuples_by_operator
        )

    @pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
    def test_wide_divisor_falls_back_without_changing_results(
        self, wide_workload, algorithm
    ):
        """Masks wider than 64 bits overflow ``uint64`` — the numpy kernel
        must route those calls to the Python reference, not truncate."""
        operator_class = SMALL_DIVIDE_ALGORITHMS[algorithm]

        def run():
            return execute_plan(
                operator_class(
                    RelationScan(wide_workload.dividend),
                    RelationScan(wide_workload.divisor),
                )
            )

        with use_kernel("python"):
            reference = run()
        with use_kernel("numpy"):
            vectorized = run()
        assert vectorized.relation == reference.relation
        assert len(reference.relation) == wide_workload.expected_quotient_size


@requires_numpy
class TestKernelPrimitives:
    def test_full_matches_order_is_ascending(self):
        masks = [3, 7, 7, 1, 7] * 10  # ≥32 entries to cross the threshold
        python = PythonBitsetKernel().full_matches(list(masks), 7)
        vectorized = NumpyBitsetKernel().full_matches(list(masks), 7)
        assert vectorized == python == sorted(python)

    def test_sweep_masks_matches_reference(self):
        count = 40
        indices = [i % count for i in range(200)]
        bits = [1 << (i % 7) for i in range(200)]
        python = PythonBitsetKernel().sweep_masks(count, indices, bits)
        vectorized = NumpyBitsetKernel().sweep_masks(count, indices, bits)
        assert [int(m) for m in vectorized] == python

    def test_wide_masks_overflow_to_python_reference(self):
        wide = [(1 << 80) - 1] * 40
        full = (1 << 80) - 1
        assert NumpyBitsetKernel().full_matches(wide, full) == list(range(40))

    def test_popcount_matches_reference(self):
        masks = [0b1011, 0b0110, 0b1111, 0b0001] * 10
        python = PythonBitsetKernel().popcount_matches(list(masks), 2)
        vectorized = NumpyBitsetKernel().popcount_matches(list(masks), 2)
        assert vectorized == python

    def test_subset_and_equal_matches_reference(self):
        masks = [0b101, 0b111, 0b010, 0b110] * 10
        python = PythonBitsetKernel()
        vectorized = NumpyBitsetKernel()
        assert vectorized.subset_matches(list(masks), 0b100) == python.subset_matches(
            list(masks), 0b100
        )
        fulls = [0b101, 0b011, 0b010, 0b110] * 10
        assert vectorized.equal_matches(list(masks), fulls) == python.equal_matches(
            list(masks), fulls
        )
