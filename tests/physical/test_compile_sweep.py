"""Property sweep: random streaming stacks compile bit-identically.

Random select/project/rename stacks over random relations must produce the
same result relation *and* the same per-operator tuple counts compiled as
interpreted — at chunk sizes that split every tuple apart (1), mid-stream
(3) and hold everything together (1024), and with the partition-parallel
layer on (workers=2) and off.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.algebra import predicates as P
from tests.strategies import VALUES, relations

BATCH_SIZES = (1, 3, 1024)
WORKER_COUNTS = (1, 2)

_COMPARISONS = (P.equals, P.not_equals, P.less_equal, P.greater_than)


@st.composite
def streaming_stacks(draw):
    """A random relation plus a random select/project/rename recipe.

    The recipe is a list of steps applied in order; each step is chosen
    against the attribute names live at that point, so projections can
    shrink the schema and renames can move it mid-stack.
    """
    relation = draw(relations(("a", "b", "c"), min_rows=0, max_rows=8))
    names = list(relation.schema.names)
    steps = []
    for index in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(["where", "project", "rename"]))
        if kind == "where":
            comparison = draw(st.sampled_from(_COMPARISONS))
            attribute = draw(st.sampled_from(names))
            value = draw(VALUES)
            steps.append(("where", comparison(P.attr(attribute), value)))
        elif kind == "project":
            keep = draw(
                st.lists(st.sampled_from(names), min_size=1, unique=True).map(sorted)
            )
            steps.append(("project", tuple(keep)))
            names = list(keep)
        else:
            attribute = draw(st.sampled_from(names))
            renamed = f"r{index}_{attribute}"
            steps.append(("rename", {attribute: renamed}))
            names[names.index(attribute)] = renamed
    return relation, steps


def _apply(query, steps):
    for kind, payload in steps:
        if kind == "where":
            query = query.where(payload)
        elif kind == "project":
            query = query.project(payload)
        else:
            query = query.rename(payload)
    return query


@given(stack=streaming_stacks())
@settings(max_examples=30, deadline=None)
def test_random_streaming_stacks_compile_bit_identically(stack):
    relation, steps = stack
    for batch_size in BATCH_SIZES:
        for workers in WORKER_COUNTS:
            outcomes = {}
            for mode in (False, True):
                db = repro.connect(
                    {"t": relation}, batch_size=batch_size, workers=workers, compile=mode
                )
                outcomes[mode] = _apply(db.table("t"), steps).run()
            assert outcomes[True].relation == outcomes[False].relation, (
                batch_size,
                workers,
                steps,
            )
            assert outcomes[True].tuple_counts == outcomes[False].tuple_counts, (
                batch_size,
                workers,
                steps,
            )
