"""Tests for scans, basic operators, joins and aggregation."""

import pytest

from repro.errors import ExecutionError
from repro.physical import (
    DifferenceOp,
    DuplicateElimination,
    Filter,
    HashAggregate,
    HashAntiJoin,
    HashJoin,
    HashLeftOuterJoin,
    HashSemiJoin,
    IntersectOp,
    NestedLoopsJoin,
    ProductOp,
    ProjectOp,
    RelationScan,
    RenameOp,
    TableScan,
    UnionOp,
    execute_plan,
)
from repro.relation import NULL, Relation, aggregates


def scan(relation):
    return RelationScan(relation)


class TestScans:
    def test_relation_scan(self, figure1_dividend):
        assert scan(figure1_dividend).execute() == figure1_dividend

    def test_table_scan(self, figure1_dividend):
        operator = TableScan({"r1": figure1_dividend}, "r1")
        assert operator.execute() == figure1_dividend
        assert "r1" in operator.describe()

    def test_table_scan_unknown_table(self):
        with pytest.raises(ExecutionError):
            TableScan({}, "missing")

    def test_tuple_counter(self, figure1_dividend):
        operator = scan(figure1_dividend)
        operator.execute()
        assert operator.tuples_out == len(figure1_dividend)


class TestBasicOperators:
    def test_filter(self, figure1_dividend):
        operator = Filter(scan(figure1_dividend), lambda row: row["a"] == 2)
        assert operator.execute().to_set("b") == {1, 2, 3, 4}

    def test_project_eliminates_duplicates(self, figure1_dividend):
        operator = ProjectOp(scan(figure1_dividend), ["a"])
        result = operator.execute()
        assert result.to_set("a") == {1, 2, 3}
        assert operator.tuples_out == 3  # duplicates removed while streaming

    def test_rename(self, figure1_divisor):
        operator = RenameOp(scan(figure1_divisor), {"b": "x"})
        assert operator.execute().to_set("x") == {1, 3}

    def test_duplicate_elimination(self, figure1_dividend):
        operator = DuplicateElimination(scan(figure1_dividend))
        assert operator.execute() == figure1_dividend

    def test_union_intersect_difference(self):
        left = scan(Relation(["a"], [(1,), (2,)]))
        right = scan(Relation(["a"], [(2,), (3,)]))
        assert UnionOp(left, right).execute().to_set("a") == {1, 2, 3}
        left2 = scan(Relation(["a"], [(1,), (2,)]))
        right2 = scan(Relation(["a"], [(2,), (3,)]))
        assert IntersectOp(left2, right2).execute().to_set("a") == {2}
        left3 = scan(Relation(["a"], [(1,), (2,)]))
        right3 = scan(Relation(["a"], [(2,), (3,)]))
        assert DifferenceOp(left3, right3).execute().to_set("a") == {1}

    def test_product(self):
        operator = ProductOp(scan(Relation(["a"], [(1,), (2,)])), scan(Relation(["b"], [(9,)])))
        assert operator.execute().to_tuples(["a", "b"]) == {(1, 9), (2, 9)}

    def test_explain_renders_tree(self, figure1_dividend):
        plan = ProjectOp(Filter(scan(figure1_dividend), lambda row: True), ["a"])
        text = plan.explain()
        assert "Project" in text and "Filter" in text and "RelationScan" in text


class TestJoins:
    def test_nested_loops_join(self):
        left = scan(Relation(["x"], [(1,), (2,)]))
        right = scan(Relation(["y"], [(1,), (3,)]))
        operator = NestedLoopsJoin(left, right, lambda row: row["x"] < row["y"])
        assert operator.execute().to_tuples(["x", "y"]) == {(1, 3), (2, 3)}

    def test_hash_join_matches_natural_join(self, figure1_dividend, figure1_divisor):
        expected = figure1_dividend.natural_join(figure1_divisor)
        operator = HashJoin(scan(figure1_dividend), scan(figure1_divisor))
        assert operator.execute() == expected

    def test_hash_join_without_shared_attributes_is_product(self):
        left = scan(Relation(["a"], [(1,)]))
        right = scan(Relation(["b"], [(2,), (3,)]))
        assert len(HashJoin(left, right).execute()) == 2

    def test_hash_semi_and_anti_join(self, figure1_dividend, figure1_divisor):
        semi = HashSemiJoin(scan(figure1_dividend), scan(figure1_divisor)).execute()
        anti = HashAntiJoin(scan(figure1_dividend), scan(figure1_divisor)).execute()
        assert semi == figure1_dividend.semijoin(figure1_divisor)
        assert anti == figure1_dividend.antijoin(figure1_divisor)
        assert semi.union(anti) == figure1_dividend

    def test_hash_outer_join(self):
        left = scan(Relation(["b", "tag"], [(1, "x"), (99, "y")]))
        right = scan(Relation(["b", "c"], [(1, "q")]))
        result = HashLeftOuterJoin(left, right).execute()
        assert len(result) == 2
        padded = [row for row in result if row["b"] == 99]
        assert padded[0]["c"] is NULL


class TestAggregation:
    def test_hash_aggregate(self, figure1_dividend):
        operator = HashAggregate(scan(figure1_dividend), ["a"], {"n": aggregates.count("b")})
        assert operator.execute().to_tuples(["a", "n"]) == {(1, 2), (2, 4), (3, 3)}

    def test_global_aggregate(self, figure1_dividend):
        operator = HashAggregate(scan(figure1_dividend), [], {"n": aggregates.count()})
        assert operator.execute().to_tuples(["n"]) == {(9,)}

    def test_matches_logical_group_by(self, figure1_dividend):
        logical = figure1_dividend.group_by(["a"], {"s": aggregates.sum_of("b")})
        physical = HashAggregate(scan(figure1_dividend), ["a"], {"s": aggregates.sum_of("b")})
        assert physical.execute() == logical


class TestExecutor:
    def test_execute_plan_collects_statistics(self, figure1_dividend, figure1_divisor):
        plan = ProductOp(ProjectOp(scan(figure1_dividend), ["a"]), scan(figure1_divisor))
        result = execute_plan(plan)
        assert len(result.relation) == 6
        assert result.statistics.total_tuples > 0
        assert result.max_intermediate >= 6

    def test_execute_plan_resets_counters(self, figure1_dividend):
        plan = ProjectOp(scan(figure1_dividend), ["a"])
        first = execute_plan(plan)
        second = execute_plan(plan)
        assert first.statistics.tuples_by_operator == second.statistics.tuples_by_operator
