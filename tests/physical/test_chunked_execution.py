"""Chunked (columnar) execution invariants.

Every physical operator streams via ``_produce_chunks()``; the chunk size
is an execution detail that must never change the produced relation or the
per-operator tuple counts.  These tests sweep batch sizes 1, 3 and 1024
over randomized and property-generated division workloads for every small-
and great-divide algorithm, pin the Chunk↔Row round-trip invariants, and
check the dictionary-encoded divisor is consumed exactly once per open.
"""

import random

import pytest
from hypothesis import given, settings

from repro.errors import ReproError
from repro.physical import (
    GREAT_DIVIDE_ALGORITHMS,
    SMALL_DIVIDE_ALGORITHMS,
    Chunk,
    RelationScan,
    execute_plan,
)
from repro.relation import Relation, Row
from repro.relation.schema import Schema

from tests import strategies  # noqa: E402  (repo-root import, like tests.division)

BATCH_SIZES = (1, 3, 1024)


def _random_small_workload(seed):
    rng = random.Random(seed)
    dividend = Relation(
        ["a", "b"],
        [(rng.randrange(12), rng.randrange(6)) for _ in range(rng.randrange(1, 120))],
    )
    divisor = Relation(["b"], [(value,) for value in rng.sample(range(6), rng.randrange(1, 5))])
    return dividend, divisor


def _random_great_workload(seed):
    rng = random.Random(seed)
    dividend = Relation(
        ["a", "b"],
        [(rng.randrange(10), rng.randrange(6)) for _ in range(rng.randrange(1, 100))],
    )
    divisor = Relation(
        ["b", "c"],
        [(rng.randrange(6), rng.randrange(4)) for _ in range(rng.randrange(1, 30))],
    )
    return dividend, divisor


def _outcomes_across_batch_sizes(operator_class, dividend, divisor):
    outcomes = []
    for batch_size in BATCH_SIZES:
        plan = operator_class(RelationScan(dividend), RelationScan(divisor))
        outcomes.append(execute_plan(plan, batch_size=batch_size))
    return outcomes


class TestBatchSizeInvariance:
    """Identical quotients *and* identical per-operator tuple counts for
    batch sizes {1, 3, 1024} across every division algorithm."""

    @pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
    @pytest.mark.parametrize("seed", range(5))
    def test_small_divide(self, algorithm, seed):
        dividend, divisor = _random_small_workload(seed)
        reference, *others = _outcomes_across_batch_sizes(
            SMALL_DIVIDE_ALGORITHMS[algorithm], dividend, divisor
        )
        for outcome in others:
            assert outcome.relation == reference.relation
            assert (
                outcome.statistics.tuples_by_operator
                == reference.statistics.tuples_by_operator
            )

    @pytest.mark.parametrize("algorithm", sorted(GREAT_DIVIDE_ALGORITHMS))
    @pytest.mark.parametrize("seed", range(5))
    def test_great_divide(self, algorithm, seed):
        dividend, divisor = _random_great_workload(seed)
        reference, *others = _outcomes_across_batch_sizes(
            GREAT_DIVIDE_ALGORITHMS[algorithm], dividend, divisor
        )
        for outcome in others:
            assert outcome.relation == reference.relation
            assert (
                outcome.statistics.tuples_by_operator
                == reference.statistics.tuples_by_operator
            )

    @pytest.mark.parametrize("algorithm", sorted(SMALL_DIVIDE_ALGORITHMS))
    @settings(max_examples=25, deadline=None)
    @given(dividend=strategies.dividends(), divisor=strategies.divisors())
    def test_small_divide_property(self, algorithm, dividend, divisor):
        """Property form: edge shapes (empty inputs, empty divisor) included."""
        from repro.division import small_divide

        if not len(dividend.schema.difference(divisor.schema)):
            return  # not a valid small divide (quotient schema empty)
        reference, *others = _outcomes_across_batch_sizes(
            SMALL_DIVIDE_ALGORITHMS[algorithm], dividend, divisor
        )
        assert reference.relation == small_divide(dividend, divisor)
        for outcome in others:
            assert outcome.relation == reference.relation
            assert (
                outcome.statistics.tuples_by_operator
                == reference.statistics.tuples_by_operator
            )


class TestChunkRowRoundTrip:
    """Chunk ↔ Row conversion invariants."""

    def test_rows_round_trip(self):
        schema = Schema.interned(("a", "b"))
        rows = [Row({"a": i, "b": -i}) for i in range(5)]
        chunk = Chunk.from_rows(schema, rows)
        assert chunk.rows() == rows
        assert len(chunk) == 5

    def test_from_rows_realigns_permuted_schemas(self):
        schema = Schema.interned(("a", "b"))
        permuted = [Row({"b": 2, "a": 1}), Row({"a": 3, "b": 4})]
        chunk = Chunk.from_rows(schema, permuted)
        assert chunk.tuples == [(1, 2), (3, 4)]
        assert chunk.rows() == permuted  # Row equality is order-insensitive

    def test_aligned_is_zero_copy_for_same_order(self):
        schema = Schema.interned(("a", "b"))
        chunk = Chunk(schema, [(1, 2)])
        assert chunk.aligned(schema) is chunk
        assert chunk.aligned(Schema.interned(("a", "b"))) is chunk

    def test_aligned_permutes_tuples(self):
        chunk = Chunk(Schema.interned(("a", "b")), [(1, 2), (3, 4)])
        flipped = chunk.aligned(Schema.interned(("b", "a")))
        assert flipped.tuples == [(2, 1), (4, 3)]
        back = flipped.aligned(Schema.interned(("a", "b")))
        assert back.tuples == chunk.tuples

    def test_column_access(self):
        chunk = Chunk(Schema.interned(("a", "b")), [(1, 2), (3, 4)])
        assert chunk.column("a") == [1, 3]
        assert chunk.column("b") == [2, 4]

    @settings(max_examples=30, deadline=None)
    @given(relation=strategies.relations(("a", "b", "c")))
    def test_relation_chunk_round_trip(self, relation):
        """Relation → chunks → Relation.from_aligned is the identity."""
        scan = RelationScan(relation)
        scan.set_batch_size(3)
        tuples = [values for chunk in scan.chunks() for values in chunk.tuples]
        rebuilt = Relation.from_aligned(relation.schema, tuples)
        assert rebuilt == relation
        assert scan.tuples_out == len(relation)


class TestExecutorChunkConsumption:
    """The executor's hot loop consumes chunks; rows() stays equivalent."""

    def test_execute_matches_rows_shim(self):
        dividend, divisor = _random_small_workload(3)
        plan = SMALL_DIVIDE_ALGORITHMS["hash"](RelationScan(dividend), RelationScan(divisor))
        via_chunks = plan.execute()
        shim = SMALL_DIVIDE_ALGORITHMS["hash"](RelationScan(dividend), RelationScan(divisor))
        via_rows = Relation(shim.schema, list(shim.rows()))
        assert via_chunks == via_rows

    def test_rows_shim_counts_per_row(self):
        relation = Relation(["a"], [(i,) for i in range(10)])
        scan = RelationScan(relation)
        iterator = scan.rows()
        next(iterator)
        assert scan.tuples_out == 1  # partial consumption charges per row

    def test_divisor_scanned_once_per_execution(self):
        """Dictionary encoding happens at operator open: the divisor side is
        consumed exactly once (its scan emits exactly |divisor| tuples)."""
        dividend, divisor = _random_small_workload(4)
        for name, operator_class in SMALL_DIVIDE_ALGORITHMS.items():
            divisor_scan = RelationScan(divisor)
            plan = operator_class(RelationScan(dividend), divisor_scan)
            execute_plan(plan)
            assert divisor_scan.tuples_out == len(divisor), name

    def test_execute_plan_batch_size_argument(self):
        dividend, divisor = _random_small_workload(5)
        plan = SMALL_DIVIDE_ALGORITHMS["hash"](RelationScan(dividend), RelationScan(divisor))
        outcome = execute_plan(plan, batch_size=7)
        assert all(operator.batch_size == 7 for operator in plan.walk())
        assert outcome.relation == execute_plan(plan, batch_size=1024).relation


class TestBatchSizePlumbing:
    """repro.connect(batch_size=...) reaches the physical plan."""

    def test_connect_forwards_batch_size(self):
        import repro
        from repro.experiments.queries import Q2

        from repro.workloads import textbook_catalog

        db = repro.connect(textbook_catalog, batch_size=2)
        query = db.sql(Q2)
        result = query.run()
        assert len(result.relation)
        prepared, _hit = db._prepare(query.expression)
        assert all(operator.batch_size == 2 for operator in prepared.plan.walk())

    def test_connect_batch_size_does_not_change_counts(self):
        import repro
        from repro.experiments.queries import Q2 as sql

        from repro.workloads import textbook_catalog

        reference = repro.connect(textbook_catalog).sql(sql).run()
        for batch_size in BATCH_SIZES:
            db = repro.connect(textbook_catalog, batch_size=batch_size)
            outcome = db.sql(sql).run()
            assert outcome.relation == reference.relation
            assert (
                outcome.statistics.tuples_by_operator
                == reference.statistics.tuples_by_operator
            )

    def test_connect_rejects_nonpositive_batch_size(self):
        import repro

        with pytest.raises(ReproError):
            repro.connect(batch_size=0)

    def test_explain_analyze_respects_session_batch_size(self):
        import repro
        from repro.experiments.queries import Q2

        from repro.workloads import textbook_catalog

        db = repro.connect(textbook_catalog, batch_size=2)
        query = db.sql(Q2)
        assert "actual=" in query.explain(analyze=True)
        prepared, _hit = db._prepare(query.expression)
        assert all(operator.batch_size == 2 for operator in prepared.plan.walk())
