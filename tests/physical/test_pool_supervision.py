"""Supervision of the worker pool: retries, timeouts, leases, drain.

These tests drive :func:`repro.physical.parallel.pool.run_tasks` and its
helpers directly, with real process pools where the behavior under test is
cross-process (crash recovery, error pickling) and hand-built futures where
it is pure bookkeeping (the bounded-map drain contract).
"""

import pickle
import time
from concurrent.futures import Future

import pytest

from repro.errors import (
    ExecutionError,
    InjectedFaultError,
    TaskTimeoutError,
    WorkerError,
)
from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan, reset_counters
from repro.physical.parallel import pool as pool_module
from repro.physical.parallel.pool import (
    PartitionTask,
    RetryPolicy,
    SupervisionReport,
    _bounded_map,
    _lease_pool,
    _release_pool,
    _WaveFailure,
    execute_task,
    run_tasks,
    shutdown_pool,
)

#: A fast policy: real backoff math, negligible wall clock.
FAST = RetryPolicy(max_retries=2, backoff_seconds=0.001, jitter=0.0)


def make_tasks(count=4):
    """``count`` small-divide partition tasks with known quotients."""
    tasks = []
    for partition in range(count):
        base = partition * 10
        dividend = [(base, 1), (base, 2), (base + 1, 1)]
        tasks.append(
            PartitionTask(
                kind="small_divide",
                algorithm="hash",
                inputs=((("a", "b"), dividend), (("b",), [(1,), (2,)])),
            )
        )
    return tasks


def expected_results(tasks):
    return [execute_task(task) for task in tasks]


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    reset_counters()
    yield
    clear_plan()
    reset_counters()


# ----------------------------------------------------------------------
# _bounded_map: the drain contract
# ----------------------------------------------------------------------
class FakePool:
    """Hand-fed executor double: tests script each submitted future."""

    def __init__(self, futures):
        self.futures = list(futures)
        self.submitted = []

    def submit(self, fn, *args):
        self.submitted.append(args)
        return self.futures.pop(0)


class TestBoundedMapDrain:
    def test_failure_drains_running_and_cancels_pending(self):
        """Regression: an early failure must not abandon in-flight futures.

        Task 0 fails, task 1 is already running (uncancellable) and later
        succeeds, tasks 2-3 were never submitted.  The wave failure must
        carry all four outcomes — nothing abandoned, nothing lost.
        """
        failing = Future()
        failing.set_exception(ExecutionError("task 0 exploded"))
        running = Future()
        assert running.set_running_or_notify_cancel()  # cancel() will fail
        running.set_result("late result")
        pool = FakePool([failing, running])
        tasks = make_tasks(4)

        with pytest.raises(_WaveFailure) as excinfo:
            _bounded_map(pool, tasks, limit=2)
        failure = excinfo.value
        assert set(failure.failures) == {0}
        assert isinstance(failure.failures[0], ExecutionError)
        assert failure.completed == {1: "late result"}
        assert failure.cancelled == {2, 3}
        # Only the two in-flight tasks were ever submitted.
        assert len(pool.submitted) == 2

    def test_pending_future_is_cancelled_not_drained(self):
        failing = Future()
        failing.set_exception(ExecutionError("boom"))
        pending = Future()  # never started: cancellable
        pool = FakePool([failing, pending])

        with pytest.raises(_WaveFailure) as excinfo:
            _bounded_map(pool, make_tasks(2), limit=2)
        assert excinfo.value.cancelled == {1}
        assert pending.cancelled()

    def test_clean_run_preserves_task_order(self):
        futures = []
        for marker in ("r0", "r1", "r2"):
            future = Future()
            future.set_result(marker)
            futures.append(future)
        pool = FakePool(futures)
        assert _bounded_map(pool, make_tasks(3), limit=2) == ["r0", "r1", "r2"]

    def test_submit_failure_marks_rebuild(self):
        class DeadPool:
            def submit(self, fn, *args):
                raise RuntimeError("cannot schedule new futures after shutdown")

        with pytest.raises(_WaveFailure) as excinfo:
            _bounded_map(DeadPool(), make_tasks(3), limit=2)
        assert excinfo.value.rebuild
        assert excinfo.value.cancelled == {1, 2}


# ----------------------------------------------------------------------
# run_tasks: supervised pooled execution (real pools)
# ----------------------------------------------------------------------
class TestSupervisedRunTasks:
    def test_clean_pooled_run_matches_inline(self):
        tasks = make_tasks(4)
        report = SupervisionReport()
        assert run_tasks(tasks, workers=2, policy=FAST, report=report) == expected_results(tasks)
        assert report.tasks_retried == 0 and report.tasks_degraded == 0

    def test_injected_worker_fault_is_retried(self):
        install_plan(FaultPlan((FaultSpec(point="pool.worker", limit=1),), seed=5))
        tasks = make_tasks(4)
        report = SupervisionReport()
        assert run_tasks(tasks, workers=2, policy=FAST, report=report) == expected_results(tasks)
        assert report.tasks_retried == 1

    def test_worker_crash_rebuilds_pool_and_keeps_partials(self):
        install_plan(
            FaultPlan((FaultSpec(point="pool.worker", action="crash", limit=1),), seed=5)
        )
        tasks = make_tasks(4)
        report = SupervisionReport()
        assert run_tasks(tasks, workers=2, policy=FAST, report=report) == expected_results(tasks)
        assert report.tasks_retried >= 1
        # The shared pool still serves the next query after the rebuild.
        clear_plan()
        assert run_tasks(tasks, workers=2, policy=FAST) == expected_results(tasks)

    def test_timeout_produces_typed_error_and_recovers(self):
        install_plan(
            FaultPlan(
                (
                    FaultSpec(
                        point="pool.worker", action="delay", delay_seconds=30.0, limit=1
                    ),
                ),
                seed=5,
            )
        )
        tasks = make_tasks(4)
        report = SupervisionReport()
        policy = RetryPolicy(max_retries=2, backoff_seconds=0.001, timeout_seconds=0.25)
        start = time.monotonic()
        assert run_tasks(tasks, workers=2, policy=policy, report=report) == expected_results(tasks)
        assert time.monotonic() - start < 25.0  # did not wait out the sleep
        assert report.tasks_retried >= 1

    def test_exhausted_retries_degrade_inline_to_success(self):
        """Faults only the pool path sees: degradation still answers."""
        # Unlimited worker raises would also fail the inline path; limit
        # the firings so the two pooled waves (2 tasks x 2 attempts) burn
        # them all and the inline fallback runs clean.
        install_plan(FaultPlan((FaultSpec(point="pool.worker", limit=4),), seed=5))
        tasks = make_tasks(2)
        report = SupervisionReport()
        policy = RetryPolicy(max_retries=1, backoff_seconds=0.001)
        assert run_tasks(tasks, workers=2, policy=policy, report=report) == expected_results(tasks)
        assert report.tasks_degraded >= 1

    def test_unbounded_fault_surfaces_structured_worker_error(self):
        install_plan(FaultPlan((FaultSpec(point="pool.worker"),), seed=5))
        tasks = make_tasks(2)
        with pytest.raises(WorkerError) as excinfo:
            run_tasks(tasks, workers=1, policy=FAST)
        error = excinfo.value
        assert error.kind == "small_divide"
        assert error.algorithm == "hash"
        assert error.partition == 0
        assert error.attempts == FAST.max_retries + 1

    def test_deterministic_task_error_propagates_without_retry(self):
        bad = PartitionTask(
            kind="small_divide",
            algorithm="no_such_algorithm",
            inputs=((("a", "b"), [(1, 1)]), (("b",), [(1,)])),
        )
        tasks = make_tasks(3) + [bad]
        report = SupervisionReport()
        with pytest.raises(KeyError):
            run_tasks(tasks, workers=2, policy=FAST, report=report)
        assert report.tasks_retried == 0

    def test_dispatch_fault_degrades_every_task_inline(self):
        """Regression: with dispatch permanently failing, every task must
        still complete (inline) instead of being dropped."""
        install_plan(FaultPlan((FaultSpec(point="pool.dispatch"),), seed=5))
        tasks = make_tasks(3)
        report = SupervisionReport()
        assert run_tasks(tasks, workers=2, policy=FAST, report=report) == expected_results(tasks)
        assert report.tasks_degraded == len(tasks)


# ----------------------------------------------------------------------
# the lease guard (shutdown vs in-flight race)
# ----------------------------------------------------------------------
class TestPoolLease:
    def test_shutdown_with_lease_outstanding_defers_teardown(self):
        handle = _lease_pool(2)
        try:
            shutdown_pool()
            # The leased executor still works: shutdown only retired it.
            assert handle.retired
            future = handle.executor.submit(execute_task, make_tasks(1)[0])
            assert future.result(timeout=30) == expected_results(make_tasks(1))[0]
        finally:
            _release_pool(handle)
        # Last release actually tore it down.
        with pytest.raises(RuntimeError):
            handle.executor.submit(execute_task, make_tasks(1)[0])

    def test_growth_retires_rather_than_kills_the_leased_pool(self):
        small = _lease_pool(1)
        try:
            large = _lease_pool(2)
            try:
                assert large is not small
                assert small.retired and not large.retired
                future = small.executor.submit(execute_task, make_tasks(1)[0])
                assert future.result(timeout=30) == expected_results(make_tasks(1))[0]
            finally:
                _release_pool(large)
        finally:
            _release_pool(small)

    def test_shutdown_idempotent_without_leases(self):
        shutdown_pool()
        shutdown_pool()
        assert pool_module._handle is None


# ----------------------------------------------------------------------
# structured errors cross process boundaries intact
# ----------------------------------------------------------------------
class TestErrorStructure:
    @pytest.mark.parametrize("cls", [WorkerError, TaskTimeoutError])
    def test_worker_errors_pickle_with_attributes(self, cls):
        error = cls("failed", kind="small_divide", algorithm="hash", partition=3, attempts=2)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.kind == "small_divide"
        assert clone.algorithm == "hash"
        assert clone.partition == 3
        assert clone.attempts == 2

    def test_timeout_error_is_a_worker_error(self):
        assert issubclass(TaskTimeoutError, WorkerError)
        assert issubclass(WorkerError, ExecutionError)

    def test_injected_fault_is_retryable_in_the_pool(self):
        assert InjectedFaultError in pool_module._RETRYABLE or any(
            issubclass(InjectedFaultError, t) for t in pool_module._RETRYABLE
        )


@pytest.fixture(scope="module", autouse=True)
def teardown_pool():
    yield
    shutdown_pool()
