"""Tests for SQL → algebra translation, including queries Q1, Q2 and Q3."""

import pytest

from repro.algebra.expressions import GreatDivide, SmallDivide
from repro.errors import SQLTranslationError
from repro.sql import SQLTranslator, match_universal_quantification, parse, translate_sql
from repro.workloads import generate_catalog, textbook_catalog

Q1 = "SELECT s_no, color FROM supplies AS s DIVIDE BY parts AS p ON s.p_no = p.p_no"

Q2 = (
    "SELECT s_no FROM supplies AS s DIVIDE BY ("
    "SELECT p_no FROM parts WHERE color = 'blue') AS p ON s.p_no = p.p_no"
)

Q3 = """
    SELECT DISTINCT s_no, color
    FROM supplies AS s1, parts AS p1
    WHERE NOT EXISTS (
        SELECT * FROM parts AS p2
        WHERE p2.color = p1.color AND NOT EXISTS (
            SELECT * FROM supplies AS s2
            WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
"""

Q2_NOT_EXISTS = """
    SELECT DISTINCT s_no
    FROM supplies AS s1
    WHERE NOT EXISTS (
        SELECT * FROM parts AS p2
        WHERE p2.color = 'blue' AND NOT EXISTS (
            SELECT * FROM supplies AS s2
            WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
"""


@pytest.fixture
def catalog():
    return textbook_catalog()


class TestDivideBy:
    def test_q1_uses_a_great_divide(self, catalog):
        expression = translate_sql(Q1, catalog)
        assert any(isinstance(node, GreatDivide) for node in expression.walk())
        assert set(expression.schema.names) == {"s_no", "color"}

    def test_q1_result_on_textbook_catalog(self, catalog):
        result = translate_sql(Q1, catalog).evaluate(catalog)
        expected = {
            ("s1", "blue"), ("s2", "blue"),   # s1, s2 supply all blue parts
            ("s1", "red"),                     # only s1 supplies all red parts
            ("s2", "green"),                   # s2 supplies the only green part
        }
        assert result.to_tuples(["s_no", "color"]) == expected

    def test_q2_uses_a_small_divide(self, catalog):
        expression = translate_sql(Q2, catalog)
        assert any(isinstance(node, SmallDivide) for node in expression.walk())
        assert not any(isinstance(node, GreatDivide) for node in expression.walk())

    def test_q2_result_on_textbook_catalog(self, catalog):
        result = translate_sql(Q2, catalog).evaluate(catalog)
        assert result.to_set("s_no") == {"s1", "s2"}

    def test_multi_attribute_on_clause_gives_small_divide(self, catalog):
        query = (
            "SELECT s_no FROM supplies AS s DIVIDE BY ("
            "SELECT p_no, color FROM parts WHERE color = 'blue') AS p "
            "ON s.p_no = p.p_no AND s.color = p.color"
        )
        # supplies has no color column, so this must fail cleanly.
        with pytest.raises(Exception):
            translate_sql(query, catalog)

    def test_on_clause_with_literal_is_rejected(self, catalog):
        query = "SELECT s_no FROM supplies AS s DIVIDE BY parts AS p ON s.p_no = 'p1'"
        with pytest.raises(SQLTranslationError):
            translate_sql(query, catalog)

    def test_on_clause_with_non_equality_is_rejected(self, catalog):
        query = "SELECT s_no FROM supplies AS s DIVIDE BY parts AS p ON s.p_no < p.p_no"
        with pytest.raises(SQLTranslationError, match="equalities"):
            translate_sql(query, catalog)

    def test_unknown_table_is_rejected(self, catalog):
        with pytest.raises(SQLTranslationError, match="unknown table"):
            translate_sql("SELECT a FROM missing", catalog)

    def test_unknown_column_is_rejected(self, catalog):
        with pytest.raises(SQLTranslationError, match="unknown column"):
            translate_sql("SELECT wrong FROM parts", catalog)


class TestPlainQueries:
    def test_select_project(self, catalog):
        result = translate_sql("SELECT p_no FROM parts WHERE color = 'blue'", catalog).evaluate(catalog)
        assert result.to_set("p_no") == {"p1", "p2"}

    def test_join_via_product_and_where(self, catalog):
        query = (
            "SELECT s_no, color FROM supplies AS s, parts AS p WHERE s.p_no = p.p_no"
        )
        result = translate_sql(query, catalog).evaluate(catalog)
        assert ("s1", "blue") in result.to_tuples(["s_no", "color"])

    def test_output_alias(self, catalog):
        result = translate_sql("SELECT p_no AS part FROM parts", catalog).evaluate(catalog)
        assert result.attributes == ("part",)

    def test_general_exists_is_not_supported(self, catalog):
        query = "SELECT s_no FROM supplies AS s WHERE NOT EXISTS (SELECT * FROM parts AS p WHERE p.p_no = s.p_no)"
        with pytest.raises(SQLTranslationError, match="universal-quantification"):
            translate_sql(query, catalog)


class TestUniversalQuantification:
    def test_q3_pattern_is_recognized(self):
        pattern = match_universal_quantification(parse(Q3))
        assert pattern is not None
        assert pattern.dividend_table == "supplies"
        assert pattern.divisor_table == "parts"
        assert pattern.b_pairs == (("p_no", "p_no"),)
        assert pattern.a_columns == ("s_no",)
        assert pattern.c_columns == ("color",)
        assert pattern.is_great_divide

    def test_q2_not_exists_pattern_is_recognized_as_small_divide(self):
        pattern = match_universal_quantification(parse(Q2_NOT_EXISTS))
        assert pattern is not None
        assert not pattern.is_great_divide
        assert pattern.divisor_filters == (("color", "=", "blue"),)

    def test_non_pattern_queries_are_not_matched(self):
        assert match_universal_quantification(parse("SELECT a FROM t WHERE a = 1")) is None
        assert match_universal_quantification(parse("SELECT a FROM t")) is None

    def test_q3_translates_to_great_divide(self, catalog):
        expression = translate_sql(Q3, catalog, recognize_division=True)
        assert any(isinstance(node, GreatDivide) for node in expression.walk())

    def test_q3_without_recognition_uses_basic_algebra_only(self, catalog):
        expression = translate_sql(Q3, catalog, recognize_division=False)
        assert not expression.contains_division()

    def test_q1_and_q3_are_equivalent(self, catalog):
        """The paper's central SQL claim: Q1 and Q3 denote the same result."""
        q1 = translate_sql(Q1, catalog).evaluate(catalog)
        q3_divide = translate_sql(Q3, catalog, recognize_division=True).evaluate(catalog)
        q3_basic = translate_sql(Q3, catalog, recognize_division=False).evaluate(catalog)
        assert q1 == q3_divide == q3_basic

    def test_q2_and_its_not_exists_form_are_equivalent(self, catalog):
        q2 = translate_sql(Q2, catalog).evaluate(catalog)
        q2_ne_divide = translate_sql(Q2_NOT_EXISTS, catalog, recognize_division=True).evaluate(catalog)
        q2_ne_basic = translate_sql(Q2_NOT_EXISTS, catalog, recognize_division=False).evaluate(catalog)
        assert q2 == q2_ne_divide == q2_ne_basic

    def test_equivalence_on_generated_catalogs(self):
        """Q1 ≡ Q3 on randomly generated suppliers-and-parts databases."""
        for seed in range(5):
            catalog = generate_catalog(num_suppliers=12, num_parts=10, parts_per_supplier=6, seed=seed)
            q1 = translate_sql(Q1, catalog).evaluate(catalog)
            q3 = translate_sql(Q3, catalog, recognize_division=True).evaluate(catalog)
            q3_basic = translate_sql(Q3, catalog, recognize_division=False).evaluate(catalog)
            assert q1 == q3 == q3_basic
