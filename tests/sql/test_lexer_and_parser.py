"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast, parse, tokenize
from repro.sql.lexer import TokenType


class TestLexer:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select Distinct FROM")
        assert [t.type for t in tokens[:-1]] == [TokenType.KEYWORD] * 3
        assert [t.value for t in tokens[:-1]] == ["SELECT", "DISTINCT", "FROM"]

    def test_identifiers_may_contain_hash_and_underscore(self):
        tokens = tokenize("s# p_no")
        assert [t.value for t in tokens[:-1]] == ["s#", "p_no"]
        assert all(t.type is TokenType.IDENTIFIER for t in tokens[:-1])

    def test_string_and_number_literals(self):
        tokens = tokenize("'blue' 42 3.5")
        assert tokens[0].type is TokenType.STRING and tokens[0].value == "blue"
        assert tokens[1].type is TokenType.NUMBER and tokens[1].value == "42"
        assert tokens[2].type is TokenType.NUMBER and tokens[2].value == "3.5"

    def test_operators_and_punctuation(self):
        values = [t.value for t in tokenize("= <> <= >= < > ( ) , . *")[:-1]]
        assert values == ["=", "<>", "<=", ">=", "<", ">", "(", ")", ",", ".", "*"]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated"):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT ;")

    def test_end_token_is_appended(self):
        assert tokenize("x")[-1].type is TokenType.END


class TestParserBasics:
    def test_simple_select(self):
        statement = parse("SELECT a, b FROM t")
        assert [item.column.name for item in statement.select_items] == ["a", "b"]
        assert statement.from_items == (ast.TableName(name="t", alias=None),)
        assert statement.where is None
        assert not statement.distinct

    def test_select_star_and_distinct(self):
        statement = parse("SELECT DISTINCT * FROM t AS x")
        assert statement.select_star
        assert statement.distinct
        assert statement.from_items[0].alias == "x"

    def test_qualified_columns_and_aliases(self):
        statement = parse("SELECT t.a AS x FROM t")
        item = statement.select_items[0]
        assert item.column == ast.ColumnRef(name="a", qualifier="t")
        assert item.output_name == "x"

    def test_where_condition_tree(self):
        statement = parse("SELECT a FROM t WHERE a = 1 AND NOT b < 2 OR c = 'x'")
        assert isinstance(statement.where, ast.BooleanOp)
        assert statement.where.operator == "OR"

    def test_implicit_alias_without_as(self):
        statement = parse("SELECT a FROM t u")
        assert statement.from_items[0].alias == "u"

    def test_missing_from_is_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT a")

    def test_trailing_garbage_is_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT a FROM t extra garbage !")


class TestDivideBySyntax:
    def test_q1_shape(self):
        statement = parse(
            "SELECT s_no, color FROM supplies AS s DIVIDE BY parts AS p ON s.p_no = p.p_no"
        )
        divide = statement.from_items[0]
        assert isinstance(divide, ast.DivideTable)
        assert divide.dividend == ast.TableName(name="supplies", alias="s")
        assert divide.divisor == ast.TableName(name="parts", alias="p")
        assert isinstance(divide.condition, ast.Comparison)

    def test_q2_shape_with_subquery_divisor(self):
        statement = parse(
            "SELECT s_no FROM supplies AS s DIVIDE BY ("
            "SELECT p_no FROM parts WHERE color = 'blue') AS p ON s.p_no = p.p_no"
        )
        divide = statement.from_items[0]
        assert isinstance(divide, ast.DivideTable)
        assert isinstance(divide.divisor, ast.SubqueryTable)
        assert divide.divisor.alias == "p"

    def test_multi_column_on_clause(self):
        statement = parse(
            "SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b AND r1.c = r2.c"
        )
        divide = statement.from_items[0]
        assert isinstance(divide.condition, ast.BooleanOp)
        assert divide.condition.operator == "AND"

    def test_chained_divides(self):
        statement = parse(
            "SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b DIVIDE BY r3 ON r1.c = r3.c"
        )
        outer = statement.from_items[0]
        assert isinstance(outer, ast.DivideTable)
        assert isinstance(outer.dividend, ast.DivideTable)

    def test_divide_requires_on_clause(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT a FROM r1 DIVIDE BY r2")


class TestNotExistsParsing:
    def test_q3_shape(self):
        statement = parse(
            """
            SELECT DISTINCT s_no, color
            FROM supplies AS s1, parts AS p1
            WHERE NOT EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = p1.color AND NOT EXISTS (
                    SELECT * FROM supplies AS s2
                    WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
            """
        )
        assert statement.distinct
        assert isinstance(statement.where, ast.NotCondition)
        middle = statement.where.operand
        assert isinstance(middle, ast.ExistsCondition)
        assert middle.subquery.select_star
