"""Negative tests for the universal-quantification recognizer.

The paper stresses that detecting the rewritable NOT-EXISTS constructs is
hard: "Only if the appropriate joins between inner and outer query are
present does the query solve a real set containment problem."  These tests
pin down the boundary: queries that look similar but are *not* the pattern
must not be rewritten into a divide.
"""

import pytest

from repro.errors import SQLTranslationError
from repro.sql import match_universal_quantification, parse, translate_sql
from repro.workloads import textbook_catalog


def _match(sql: str):
    return match_universal_quantification(parse(sql))


class TestPatternBoundaries:
    def test_single_not_exists_is_not_the_pattern(self):
        sql = """
            SELECT s_no FROM supplies AS s1
            WHERE NOT EXISTS (SELECT * FROM parts AS p WHERE p.p_no = s1.p_no)
        """
        assert _match(sql) is None

    def test_exists_instead_of_not_exists(self):
        sql = """
            SELECT s_no FROM supplies AS s1
            WHERE EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = 'blue' AND NOT EXISTS (
                    SELECT * FROM supplies AS s2
                    WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
        """
        assert _match(sql) is None

    def test_missing_outer_correlation_in_inner_query(self):
        """Without the s2.s_no = s1.s_no join the query is not a containment test."""
        sql = """
            SELECT DISTINCT s_no FROM supplies AS s1
            WHERE NOT EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = 'blue' AND NOT EXISTS (
                    SELECT * FROM supplies AS s2
                    WHERE s2.p_no = p2.p_no))
        """
        assert _match(sql) is None

    def test_missing_divisor_link_in_inner_query(self):
        """Without the s2.p_no = p2.p_no join there is no divisor attribute B."""
        sql = """
            SELECT DISTINCT s_no FROM supplies AS s1
            WHERE NOT EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = 'blue' AND NOT EXISTS (
                    SELECT * FROM supplies AS s2
                    WHERE s2.s_no = s1.s_no))
        """
        assert _match(sql) is None

    def test_inner_query_over_wrong_table(self):
        """The innermost subquery must re-reference the dividend table."""
        sql = """
            SELECT DISTINCT s_no FROM supplies AS s1
            WHERE NOT EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = 'blue' AND NOT EXISTS (
                    SELECT * FROM parts AS s2
                    WHERE s2.p_no = p2.p_no AND s2.p_no = s1.p_no))
        """
        assert _match(sql) is None

    def test_extra_outer_conjunct_blocks_the_pattern(self):
        sql = """
            SELECT DISTINCT s_no FROM supplies AS s1
            WHERE s1.s_no = 's1' AND NOT EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = 'blue' AND NOT EXISTS (
                    SELECT * FROM supplies AS s2
                    WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
        """
        assert _match(sql) is None

    def test_disjunctive_middle_condition_blocks_the_pattern(self):
        sql = """
            SELECT DISTINCT s_no FROM supplies AS s1
            WHERE NOT EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = 'blue' OR NOT EXISTS (
                    SELECT * FROM supplies AS s2
                    WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
        """
        assert _match(sql) is None

    def test_three_outer_tables_are_not_supported(self):
        sql = """
            SELECT DISTINCT s_no FROM supplies AS s1, parts AS p1, parts AS px
            WHERE NOT EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = p1.color AND NOT EXISTS (
                    SELECT * FROM supplies AS s2
                    WHERE s2.p_no = p2.p_no AND s2.s_no = s1.s_no))
        """
        assert _match(sql) is None


class TestTranslationFallout:
    def test_unmatched_not_exists_raises_a_clear_error(self):
        catalog = textbook_catalog()
        sql = """
            SELECT s_no FROM supplies AS s1
            WHERE NOT EXISTS (SELECT * FROM parts AS p WHERE p.p_no = s1.p_no)
        """
        with pytest.raises(SQLTranslationError, match="universal-quantification"):
            translate_sql(sql, catalog)

    def test_pattern_with_partial_outer_correlation_is_rejected_by_translator(self):
        """The recognizer may match, but the translator must refuse when the
        correlation does not cover every non-divisor dividend attribute."""
        catalog = textbook_catalog()
        # supplies(s_no, p_no): the inner query correlates on p_no only, so A
        # would have to be {s_no} but the correlation says {p_no}.
        sql = """
            SELECT DISTINCT s_no FROM supplies AS s1, parts AS p1
            WHERE NOT EXISTS (
                SELECT * FROM parts AS p2
                WHERE p2.color = p1.color AND NOT EXISTS (
                    SELECT * FROM supplies AS s2
                    WHERE s2.p_no = p2.p_no AND s2.p_no = s1.p_no))
        """
        pattern = _match(sql)
        if pattern is not None:
            with pytest.raises(SQLTranslationError):
                translate_sql(sql, catalog)
