PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test lint bench-smoke bench bench-record bench-compare bench-parallel bench-compiled

## Tier-1 gate: the full unit + benchmark-assertion suite, fail fast.
check:
	$(PYTHON) -m pytest -x -q

## Static lint (ruff); skipped with a notice when ruff is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed — skipping lint (pip install ruff)"; \
	fi

## Unit tests only (skips the benchmarks directory).
test:
	$(PYTHON) -m pytest tests -x -q

## Benchmark smoke: run every benchmark once with timing disabled.
bench-smoke:
	$(PYTHON) -m pytest benchmarks -q --benchmark-disable

## Full timed benchmark run.
bench:
	$(PYTHON) -m pytest benchmarks -q

## Record the division microbenchmarks to the committed baseline file.
## Refuses to run with uncommitted source changes: a baseline recorded
## against a dirty tree cannot be reproduced from the commit it lands in.
bench-record:
	@if ! git diff --quiet -- src benchmarks || ! git diff --cached --quiet -- src benchmarks; then \
		echo "bench-record: src/ or benchmarks/ has uncommitted changes;"; \
		echo "commit (or stash) them first so the baseline matches a commit."; \
		exit 1; \
	fi
	$(PYTHON) -m pytest benchmarks/test_bench_division_algorithms.py -q \
		--benchmark-json=BENCH_division.json

## Rerun the division microbenchmarks and fail on >25% relative regression
## against the committed BENCH_division.json (hardware-normalized).
bench-compare:
	$(PYTHON) scripts/bench_compare.py

## Compare serial vs partition-parallel execution on the large (>=100k
## tuple) division scenarios; WORKERS picks the pool size (default 2).
WORKERS ?= 2
bench-parallel:
	$(PYTHON) scripts/bench_compare.py --parallel $(WORKERS)

## Compare interpreted vs compiled execution on the fused-pipeline and
## pipeline-breaker scenarios (same-run timings, >=2x gate on fusion).
bench-compiled:
	$(PYTHON) scripts/bench_compare.py --compiled
