PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test chaos lint lint-engine typecheck verify-plans bench-smoke bench bench-record bench-compare bench-parallel bench-compiled bench-storage bench-ivm bench-faults

## Tier-1 gate: typecheck plus the full unit + benchmark-assertion suite.
check: typecheck
	$(PYTHON) -m pytest -x -q

## Static lint: ruff (skipped with a notice when not installed) plus the
## AST-based engine-contract linter (RP4xx rules ruff cannot express).
lint: lint-engine
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed — skipping lint (pip install ruff)"; \
	fi

## Engine-contract linter: chunk-path purity, law conditions, operator
## name/properties pairing.  Pure stdlib — always runs.
lint-engine:
	$(PYTHON) scripts/lint_engine.py

## Strict typing gate for src/repro/analysis, src/repro/api and
## src/repro/views (scoped in mypy.ini); skipped with a notice when mypy
## is not installed.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file mypy.ini src/repro/analysis src/repro/api src/repro/views; \
	else \
		echo "mypy not installed — skipping typecheck (pip install mypy)"; \
	fi

## Statically verify every paper workload across all algorithm/compile/
## worker configurations (no execution; exit 1 on any error finding).
verify-plans:
	$(PYTHON) -m repro check --all-workloads

## Unit tests only (skips the benchmarks directory).
test:
	$(PYTHON) -m pytest tests -x -q

## Chaos suite: the deterministic fault-injection sweep (every registered
## fault point x every division algorithm x worker counts) plus the
## supervision, atomic-save and corrupted-store tests.  Proves the
## fail-stop contract: under injected faults a query either returns the
## bit-identical quotient or raises a documented typed error — never a
## wrong answer.
chaos:
	$(PYTHON) -m pytest tests/faults tests/physical/test_pool_supervision.py \
		tests/storage/test_atomic_save.py tests/storage/test_corrupted_store.py -q

## Benchmark smoke: run every benchmark once with timing disabled.
bench-smoke:
	$(PYTHON) -m pytest benchmarks -q --benchmark-disable

## Full timed benchmark run.
bench:
	$(PYTHON) -m pytest benchmarks -q

## Record the division and storage microbenchmarks to the committed
## baseline files.  Refuses to run with uncommitted changes anywhere the
## timings depend on (sources, benchmarks, the compare script, this
## Makefile): a baseline recorded against a dirty tree cannot be
## reproduced from the commit it lands in.
bench-record:
	@if ! git diff --quiet -- src benchmarks scripts Makefile || ! git diff --cached --quiet -- src benchmarks scripts Makefile; then \
		echo "bench-record: src/, benchmarks/, scripts/ or the Makefile has uncommitted changes;"; \
		echo "commit (or stash) them first so the baseline matches a commit."; \
		exit 1; \
	fi
	$(PYTHON) -m pytest benchmarks/test_bench_division_algorithms.py -q \
		--benchmark-json=BENCH_division.json
	$(PYTHON) -m pytest benchmarks/test_bench_storage.py -q \
		--benchmark-json=BENCH_storage.json
	$(PYTHON) -m pytest benchmarks/test_bench_ivm.py -q \
		--benchmark-json=BENCH_ivm.json
	$(PYTHON) -m pytest benchmarks/test_bench_faults.py -q \
		--benchmark-json=BENCH_faults.json

## Rerun the division microbenchmarks and fail on >25% relative regression
## against the committed BENCH_division.json (hardware-normalized).
bench-compare:
	$(PYTHON) scripts/bench_compare.py

## Compare serial vs partition-parallel execution on the large (>=100k
## tuple) division scenarios; WORKERS picks the pool size (default 2).
WORKERS ?= 2
bench-parallel:
	$(PYTHON) scripts/bench_compare.py --parallel $(WORKERS)

## Compare interpreted vs compiled execution on the fused-pipeline and
## pipeline-breaker scenarios (same-run timings, >=2x gate on fusion).
bench-compiled:
	$(PYTHON) scripts/bench_compare.py --compiled

## Compare full-scan vs zone-map-skipping and fullscan-ANALYZE vs
## metadata-ANALYZE on stored tables (same-run timings, >=5x gates).
bench-storage:
	$(PYTHON) scripts/bench_compare.py --storage

## Compare delta-maintained views vs recompute-per-edit on the churn
## workload (same-run per-edit timings, >=10x gate).
bench-ivm:
	$(PYTHON) scripts/bench_compare.py --ivm

## Compare checksummed (v2) vs checksum-free (v1) storage and the
## disarmed fault-point query path (same-run timings, <=5% overhead gate).
bench-faults:
	$(PYTHON) scripts/bench_compare.py --faults
