PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test lint bench-smoke bench bench-record bench-compare bench-parallel

## Tier-1 gate: the full unit + benchmark-assertion suite, fail fast.
check:
	$(PYTHON) -m pytest -x -q

## Static lint (ruff); skipped with a notice when ruff is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed — skipping lint (pip install ruff)"; \
	fi

## Unit tests only (skips the benchmarks directory).
test:
	$(PYTHON) -m pytest tests -x -q

## Benchmark smoke: run every benchmark once with timing disabled.
bench-smoke:
	$(PYTHON) -m pytest benchmarks -q --benchmark-disable

## Full timed benchmark run.
bench:
	$(PYTHON) -m pytest benchmarks -q

## Record the division microbenchmarks to the committed baseline file.
bench-record:
	$(PYTHON) -m pytest benchmarks/test_bench_division_algorithms.py -q \
		--benchmark-json=BENCH_division.json

## Rerun the division microbenchmarks and fail on >25% relative regression
## against the committed BENCH_division.json (hardware-normalized).
bench-compare:
	$(PYTHON) scripts/bench_compare.py

## Compare serial vs partition-parallel execution on the large (>=100k
## tuple) division scenarios; WORKERS picks the pool size (default 2).
WORKERS ?= 2
bench-parallel:
	$(PYTHON) scripts/bench_compare.py --parallel $(WORKERS)
