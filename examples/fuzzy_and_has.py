"""The related-work extensions: fuzzy division and Carlis' HAS operator.

Run with::

    python examples/fuzzy_and_has.py

The example grades a supplier-parts style relation with membership degrees
(how reliably a supplier delivers a part), compares strict fuzzy division
with Yager's "almost all" quotient, and then classifies suppliers with the
six associations of the HAS operator.
"""

from repro.fuzzy import FuzzyRelation, fuzzy_divide, yager_quotient
from repro.has import Association, has, has_at_least
from repro.relation import Relation


def main() -> None:
    # ------------------------------------------------------------------
    # fuzzy division: how strongly does a supplier cover the required parts?
    # ------------------------------------------------------------------
    deliveries = FuzzyRelation(
        ["supplier", "part"],
        [
            (("ace", "bolt"), 1.0),
            (("ace", "nut"), 0.9),
            (("ace", "washer"), 0.7),
            (("bright", "bolt"), 1.0),
            (("bright", "nut"), 0.3),
            (("core", "bolt"), 0.8),
        ],
    )
    required = FuzzyRelation(["part"], [(("bolt",), 1.0), (("nut",), 1.0), (("washer",), 0.6)])

    print("=== fuzzy division: supplier covers all required parts ===")
    strict = fuzzy_divide(deliveries, required, implication="goedel")
    relaxed = yager_quotient(deliveries, required, strictness=2.0)
    for supplier in ("ace", "bright", "core"):
        print(
            f"  {supplier:<8} strict={strict.membership((supplier,)):.2f}   "
            f"almost-all={relaxed.membership((supplier,)):.2f}"
        )

    # ------------------------------------------------------------------
    # HAS operator: the six associations
    # ------------------------------------------------------------------
    suppliers = Relation(["s_no"], [("s1",), ("s2",), ("s3",), ("s4",), ("s5",)])
    blue_parts = Relation(["p_no"], [("p1",), ("p2",)])
    supplies = Relation(
        ["s_no", "p_no"],
        [
            ("s1", "p1"), ("s1", "p2"),                # exactly the blue parts
            ("s2", "p1"), ("s2", "p2"), ("s2", "p9"),  # strictly more
            ("s3", "p1"),                              # strictly less
            ("s4", "p7"),                              # none of them plus else
            #                                            s5: none at all
        ],
    )

    print("\n=== HAS operator: suppliers VIA supplies HAS <association> OF blue parts ===")
    for association in Association:
        result = has(suppliers, blue_parts, supplies, [association])
        print(f"  {association.value:<28} -> {sorted(result.to_set('s_no'))}")

    at_least = has_at_least(suppliers, blue_parts, supplies)
    print("\n'at least' (exactly OR strictly more) — i.e. relational division:")
    print(" ", sorted(at_least.to_set("s_no")))

    # cross-check through the session API: HAS 'at least' is supplies ÷ parts
    import repro

    db = repro.connect({"supplies": supplies, "blue_parts": blue_parts})
    divided = db.table("supplies").divide(db.table("blue_parts"), on="p_no").run()
    print("\nsame answer from repro.connect (small divide):")
    print(" ", sorted(divided.relation.to_set("s_no")))
    print("  agrees with the HAS operator:", divided.relation == at_least)


if __name__ == "__main__":
    main()
