"""Quickstart: relations, division, one rewrite law, and the session API.

Run with::

    python examples/quickstart.py

The example rebuilds Figures 1 and 2 of the paper, shows the equivalent
definitions of the operators agreeing with each other, applies Law 3
(selection push-down) through the rewrite-rule API, and finishes with the
same division run through :func:`repro.connect` — the one front door that
parses/builds, optimizes and executes queries in a single pass.
"""

import repro
from repro import Relation, great_divide, small_divide
from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.division import GREAT_DIVIDE_DEFINITIONS, SMALL_DIVIDE_DEFINITIONS
from repro.laws import get_rule
from repro.relation.render import render_relation, render_side_by_side


def main() -> None:
    # ------------------------------------------------------------------
    # Figure 1: the small divide
    # ------------------------------------------------------------------
    dividend = Relation(
        ["a", "b"],
        [(1, 1), (1, 4), (2, 1), (2, 2), (2, 3), (2, 4), (3, 1), (3, 3), (3, 4)],
    )
    divisor = Relation(["b"], [(1,), (3,)])
    quotient = small_divide(dividend, divisor)

    print("=== Figure 1: small divide r1 ÷ r2 ===")
    print(
        render_side_by_side(
            [
                render_relation(dividend, "r1 (dividend)"),
                render_relation(divisor, "r2 (divisor)"),
                render_relation(quotient, "r3 (quotient)"),
            ]
        )
    )

    print("\nAll definitions of the small divide agree:")
    for name, definition in SMALL_DIVIDE_DEFINITIONS.items():
        print(f"  {name:<12} -> {sorted(definition(dividend, divisor).to_set('a'))}")

    # ------------------------------------------------------------------
    # Figure 2: the great divide
    # ------------------------------------------------------------------
    great_divisor = Relation(["b", "c"], [(1, 1), (2, 1), (4, 1), (1, 2), (3, 2)])
    great_quotient = great_divide(dividend, great_divisor)

    print("\n=== Figure 2: great divide r1 ÷* r2 ===")
    print(
        render_side_by_side(
            [
                render_relation(great_divisor, "r2 (divisor with groups c)"),
                render_relation(great_quotient, "r3 (quotient)"),
            ]
        )
    )

    print("\nAll definitions of the great divide agree (Theorem 1):")
    for name, definition in GREAT_DIVIDE_DEFINITIONS.items():
        result = sorted(definition(dividend, great_divisor).to_tuples(["a", "c"]))
        print(f"  {name:<16} -> {result}")

    # ------------------------------------------------------------------
    # Law 3: selection push-down as a rewrite rule
    # ------------------------------------------------------------------
    print("\n=== Law 3: selection push-down ===")
    r1 = B.literal(dividend, label="r1")
    r2 = B.literal(divisor, label="r2")
    query = B.select(B.divide(r1, r2), P.equals(P.attr("a"), 2))
    rule = get_rule("law_03_selection_pushdown")
    rewritten = rule.apply(query)
    print(f"before: {query.to_text()}")
    print(f"after:  {rewritten.to_text()}")
    print(f"same result: {query.evaluate({}) == rewritten.evaluate({})}")

    # ------------------------------------------------------------------
    # the same division through the session API
    # ------------------------------------------------------------------
    print("\n=== the session API: repro.connect ===")
    db = repro.connect({"r1": dividend, "r2": great_divisor})
    outcome = db.table("r1").divide(db.table("r2")).run()
    print("fluent query :", outcome.expression.to_text())
    print("quotient     :", sorted(outcome.relation.to_tuples(["a", "c"])))
    print(
        f"statistics   : max intermediate = {outcome.max_intermediate} tuples, "
        f"elapsed = {outcome.elapsed_seconds * 1000:.2f} ms"
    )
    again = db.table("r1").divide(db.table("r2")).run()
    print(f"repeated run : served from the prepared-plan cache = {again.cache_hit}")


if __name__ == "__main__":
    main()
