"""Regenerate and print every figure of the paper (Figures 1–11).

Run with::

    python examples/paper_figures.py

Each figure is rebuilt from the relations printed in the paper, evaluated
with the library's operators, checked against the paper's printed result and
rendered as ASCII tables.  As a final cross-check, Figure 1's division is
replayed through the session API (:func:`repro.connect`).
"""

import repro
from repro.experiments import all_figures


def main() -> None:
    figures = all_figures()
    for figure in figures:
        print(figure.render())
        print()
    reproduced = sum(figure.verify() for figure in figures)
    print(f"{reproduced}/{len(figures)} figures reproduced exactly.")

    # Figure 1 once more, through the public API.
    figure1 = figures[0]
    db = repro.connect(
        {
            "r1": figure1.relations["r1 (dividend)"],
            "r2": figure1.relations["r2 (divisor)"],
        }
    )
    outcome = db.table("r1").divide(db.table("r2")).run()
    print(
        "Figure 1 through repro.connect:",
        "matches" if outcome.relation == figure1.expected else "DIFFERS",
    )


if __name__ == "__main__":
    main()
