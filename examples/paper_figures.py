"""Regenerate and print every figure of the paper (Figures 1–11).

Run with::

    python examples/paper_figures.py

Each figure is rebuilt from the relations printed in the paper, evaluated
with the library's operators, checked against the paper's printed result and
rendered as ASCII tables.
"""

from repro.experiments import all_figures


def main() -> None:
    figures = all_figures()
    for figure in figures:
        print(figure.render())
        print()
    reproduced = sum(figure.verify() for figure in figures)
    print(f"{reproduced}/{len(figures)} figures reproduced exactly.")


if __name__ == "__main__":
    main()
