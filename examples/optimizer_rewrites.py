"""A tour of the rewrite laws through the session API.

Run with::

    python examples/optimizer_rewrites.py

The example builds fluent queries that exercise several of the paper's laws
(selection push-down, semi-join commutation, the Law 7 short-circuit and
divisor partitioning for the great divide), runs them through one
:func:`repro.connect` session, and compares estimated costs and measured
intermediate-result sizes against the unrewritten baseline plans.  It also
runs the Graefe-style comparison of the physical division algorithms.
"""

import repro
from repro.algebra import predicates as P
from repro.optimizer import PlannerOptions
from repro.physical import SMALL_DIVIDE_ALGORITHMS, RelationScan, execute_plan
from repro.workloads import make_division_workload, make_great_division_workload


def show_optimization(title, db, query) -> None:
    outcome = query.run()
    baseline = execute_plan(db.optimizer.plan_without_rewriting(outcome.expression))
    assert baseline.relation == outcome.relation
    print(f"\n--- {title} ---")
    print("original :", outcome.expression.to_text())
    print("rewritten:", outcome.rewritten.to_text())
    print("rules    :", ", ".join(outcome.rules_fired) or "(none)")
    print(f"estimated cost   : {outcome.estimated_cost_before:12.0f} -> {outcome.estimated_cost_after:12.0f}")
    print(f"max intermediate : {baseline.max_intermediate:12d} -> {outcome.max_intermediate:12d} tuples")


def main() -> None:
    workload = make_division_workload(num_groups=300, divisor_size=8, containing_fraction=0.2, seed=1)
    great = make_great_division_workload(dividend_groups=120, divisor_groups=12, seed=2)

    db = repro.connect(
        {
            "r1": workload.dividend,
            "r2": workload.divisor,
            "g1": great.dividend.rename({"a": "ga", "b": "gb"}),
            "g2": great.divisor.rename({"b": "gb", "c": "gc"}),
        }
    )

    # Law 3: push a quotient selection below the divide.
    show_optimization(
        "Law 3 — selection push-down",
        db,
        db.table("r1").divide(db.table("r2")).where(P.less_than(P.attr("a"), 20)),
    )

    # Law 10: push a semi-join below the divide.
    interesting = workload.dividend.project(["a"]).select(lambda row: row["a"] < 10)
    show_optimization(
        "Law 10 — semi-join commutation",
        db,
        db.table("r1").divide(db.table("r2")).semijoin(interesting),
    )

    # Law 7: the short-circuit for disjoint quotient candidates.
    low = db.table("r1").where(P.less_than(P.attr("a"), 150)).divide(db.table("r2"))
    high = db.table("r1").where(P.greater_equal(P.attr("a"), 150)).divide(db.table("r2"))
    show_optimization("Law 7 — disjoint difference elimination", db, low.difference(high))

    # Law 15: push a group selection into the great divide's divisor.
    show_optimization(
        "Law 15 — group selection push-down (great divide)",
        db,
        db.table("g1").great_divide(db.table("g2")).where(P.less_than(P.attr("gc"), 3)),
    )

    # ------------------------------------------------------------------
    # Graefe-style algorithm comparison for one divide
    # ------------------------------------------------------------------
    print("\n--- physical division algorithms on the same inputs ---")
    for name in sorted(SMALL_DIVIDE_ALGORITHMS):
        operator = SMALL_DIVIDE_ALGORITHMS[name](
            RelationScan(workload.dividend, "r1"), RelationScan(workload.divisor, "r2")
        )
        outcome = execute_plan(operator)
        print(
            f"  {name:<22} quotient={len(outcome.relation):4d}  "
            f"max intermediate={outcome.max_intermediate:7d} tuples"
        )

    # ------------------------------------------------------------------
    # choosing a different physical algorithm through planner options
    # ------------------------------------------------------------------
    merge_sort_db = repro.connect(
        db.catalog, planner_options=PlannerOptions(small_divide_algorithm="merge_sort")
    )
    print("\nEXPLAIN with merge-sort division selected:")
    print(merge_sort_db.table("r1").divide(merge_sort_db.table("r2")).explain())


if __name__ == "__main__":
    main()
