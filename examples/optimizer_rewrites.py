"""A tour of the rewrite laws through the optimizer.

Run with::

    python examples/optimizer_rewrites.py

The example builds queries that exercise several of the paper's laws
(selection push-down, semi-join commutation, the Law 7 short-circuit and
divisor partitioning for the great divide), lets the rule-based optimizer
rewrite them, and compares the estimated costs and the measured
intermediate-result sizes of the original and rewritten plans.  It also
runs the Graefe-style comparison of the physical division algorithms.
"""

from repro.algebra import builders as B
from repro.algebra import predicates as P
from repro.algebra.catalog import Catalog
from repro.optimizer import Optimizer, PhysicalPlanner, PlannerOptions
from repro.physical import SMALL_DIVIDE_ALGORITHMS, RelationScan, execute_plan
from repro.workloads import make_division_workload, make_great_division_workload


def show_optimization(title, optimizer, query, catalog) -> None:
    result = optimizer.optimize(query)
    baseline = execute_plan(optimizer.plan_without_rewriting(query))
    optimized = execute_plan(result.plan)
    assert baseline.relation == optimized.relation
    print(f"\n--- {title} ---")
    print("original :", query.to_text())
    print("rewritten:", result.rewritten.to_text())
    print("rules    :", ", ".join(result.rules_fired) or "(none)")
    print(f"estimated cost   : {result.original_cost.total_cost:12.0f} -> {result.rewritten_cost.total_cost:12.0f}")
    print(f"max intermediate : {baseline.max_intermediate:12d} -> {optimized.max_intermediate:12d} tuples")


def main() -> None:
    workload = make_division_workload(num_groups=300, divisor_size=8, containing_fraction=0.2, seed=1)
    great = make_great_division_workload(dividend_groups=120, divisor_groups=12, seed=2)

    catalog = Catalog()
    catalog.add_table("r1", workload.dividend)
    catalog.add_table("r2", workload.divisor)
    catalog.add_table("g1", great.dividend.rename({"a": "ga", "b": "gb"}))
    catalog.add_table("g2", great.divisor.rename({"b": "gb", "c": "gc"}))
    optimizer = Optimizer(catalog)

    r1, r2 = catalog.ref("r1"), catalog.ref("r2")
    g1, g2 = catalog.ref("g1"), catalog.ref("g2")

    # Law 3: push a quotient selection below the divide.
    show_optimization(
        "Law 3 — selection push-down",
        optimizer,
        B.select(B.divide(r1, r2), P.less_than(P.attr("a"), 20)),
        catalog,
    )

    # Law 10: push a semi-join below the divide.
    interesting = B.literal(workload.dividend.project(["a"]).select(lambda row: row["a"] < 10), "interesting")
    show_optimization(
        "Law 10 — semi-join commutation",
        optimizer,
        B.semijoin(B.divide(r1, r2), interesting),
        catalog,
    )

    # Law 7: the short-circuit for disjoint quotient candidates.
    low = B.select(r1, P.less_than(P.attr("a"), 150))
    high = B.select(r1, P.greater_equal(P.attr("a"), 150))
    show_optimization(
        "Law 7 — disjoint difference elimination",
        optimizer,
        B.difference(B.divide(low, r2), B.divide(high, r2)),
        catalog,
    )

    # Law 15: push a group selection into the great divide's divisor.
    show_optimization(
        "Law 15 — group selection push-down (great divide)",
        optimizer,
        B.select(B.great_divide(g1, g2), P.less_than(P.attr("gc"), 3)),
        catalog,
    )

    # ------------------------------------------------------------------
    # Graefe-style algorithm comparison for one divide
    # ------------------------------------------------------------------
    print("\n--- physical division algorithms on the same inputs ---")
    for name in sorted(SMALL_DIVIDE_ALGORITHMS):
        operator = SMALL_DIVIDE_ALGORITHMS[name](
            RelationScan(workload.dividend, "r1"), RelationScan(workload.divisor, "r2")
        )
        outcome = execute_plan(operator)
        print(
            f"  {name:<22} quotient={len(outcome.relation):4d}  "
            f"max intermediate={outcome.max_intermediate:7d} tuples"
        )

    # ------------------------------------------------------------------
    # choosing a different physical algorithm through planner options
    # ------------------------------------------------------------------
    planner = PhysicalPlanner(catalog, PlannerOptions(small_divide_algorithm="merge_sort"))
    plan = planner.plan(B.divide(r1, r2))
    print("\nplan with merge-sort division selected:")
    print(plan.explain())


if __name__ == "__main__":
    main()
