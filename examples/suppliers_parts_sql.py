"""The suppliers-and-parts scenario of Section 4, driven through SQL.

Run with::

    python examples/suppliers_parts_sql.py

The example parses the paper's queries Q1 (DIVIDE BY), Q2 (DIVIDE BY with a
subquery divisor) and Q3 (the double-NOT-EXISTS formulation), translates
them to the logical algebra, optimizes them, and shows that Q1 and Q3 return
the same result — once with the universal-quantification recognizer enabled
(the query becomes a first-class great divide) and once without it (the
divide-less basic-algebra plan).
"""

from repro.experiments import Q1, Q2, Q3, run_query
from repro.optimizer import Optimizer
from repro.relation.render import render_relation
from repro.sql import translate_sql
from repro.workloads import textbook_catalog


def main() -> None:
    catalog = textbook_catalog()

    print("=== The database ===")
    print(render_relation(catalog["supplies"], "supplies"))
    print(render_relation(catalog["parts"], "parts"))

    # ------------------------------------------------------------------
    # Q1: DIVIDE BY with a great divide
    # ------------------------------------------------------------------
    print("\n=== Q1 (DIVIDE BY, great divide) ===")
    print(Q1.strip())
    q1 = run_query(Q1, catalog)
    print("\nlogical plan:", q1.expression.to_text())
    print(render_relation(q1.result, "result: suppliers supplying all parts of a color"))

    # ------------------------------------------------------------------
    # Q2: DIVIDE BY with a restricted divisor (small divide)
    # ------------------------------------------------------------------
    print("\n=== Q2 (DIVIDE BY, small divide over the blue parts) ===")
    print(Q2.strip())
    q2 = run_query(Q2, catalog)
    print("\nlogical plan:", q2.expression.to_text())
    print(render_relation(q2.result, "result: suppliers supplying all blue parts"))

    # ------------------------------------------------------------------
    # Q3: the double NOT EXISTS formulation
    # ------------------------------------------------------------------
    print("\n=== Q3 (double NOT EXISTS) ===")
    print(Q3.strip())
    recognized = run_query(Q3, catalog, recognize_division=True)
    naive = run_query(Q3, catalog, recognize_division=False)
    print("\nwith the divide recognizer :", recognized.expression.to_text())
    print("without the recognizer     :", naive.expression.to_text())
    print("Q1 == Q3 (recognized) ==", recognized.result == q1.result)
    print("Q1 == Q3 (divide-less) ==", naive.result == q1.result)

    # ------------------------------------------------------------------
    # Optimizing Q1 and executing the physical plan
    # ------------------------------------------------------------------
    print("\n=== Optimizer output for Q1 ===")
    optimizer = Optimizer(catalog)
    optimization = optimizer.optimize(translate_sql(Q1, catalog))
    print("rules fired:", optimization.rules_fired or "(none needed)")
    print("physical plan:")
    print(optimization.plan.explain())
    execution = optimizer.execute(translate_sql(Q1, catalog))
    print(f"executed: {len(execution.relation)} result tuples, "
          f"largest intermediate = {execution.max_intermediate} tuples")


if __name__ == "__main__":
    main()
