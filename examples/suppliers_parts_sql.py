"""The suppliers-and-parts scenario of Section 4, driven through the API.

Run with::

    python examples/suppliers_parts_sql.py

The example opens one :func:`repro.connect` session over the textbook
database and runs the paper's queries Q1 (DIVIDE BY), Q2 (DIVIDE BY with a
subquery divisor) and Q3 (the double-NOT-EXISTS formulation) through it.
Everything — parsing, rewriting, planning, execution, statistics — comes
from one pass per query, and because Q1 and Q3 canonicalize to the same
expression, Q3 is served straight from the prepared-plan cache.
"""

import repro
from repro.experiments import Q1, Q2, Q3
from repro.relation.render import render_relation
from repro.workloads import textbook_catalog


def main() -> None:
    db = repro.connect(textbook_catalog)

    print("=== The database ===")
    print(render_relation(db.relation("supplies"), "supplies"))
    print(render_relation(db.relation("parts"), "parts"))

    # ------------------------------------------------------------------
    # Q1: DIVIDE BY with a great divide
    # ------------------------------------------------------------------
    print("\n=== Q1 (DIVIDE BY, great divide) ===")
    print(Q1.strip())
    q1 = db.sql(Q1).run()
    print("\ncanonical plan:", q1.rewritten.to_text())
    print(render_relation(q1.relation, "result: suppliers supplying all parts of a color"))

    # ------------------------------------------------------------------
    # Q2: DIVIDE BY with a restricted divisor (small divide)
    # ------------------------------------------------------------------
    print("\n=== Q2 (DIVIDE BY, small divide over the blue parts) ===")
    print(Q2.strip())
    q2 = db.sql(Q2).run()
    print("\ncanonical plan:", q2.rewritten.to_text())
    print(render_relation(q2.relation, "result: suppliers supplying all blue parts"))

    # ------------------------------------------------------------------
    # the same question, fluently — same fingerprint, cache hit
    # ------------------------------------------------------------------
    print("\n=== Q2 again, through the fluent builder ===")
    fluent = (
        db.table("supplies")
        .divide(db.table("parts").where(color="blue").project(["p_no"]), on="p_no")
        .project(["s_no"])
    )
    outcome = fluent.run()
    print("fluent result == SQL result :", outcome.relation == q2.relation)
    print("identical tuple counts      :", outcome.tuple_counts == q2.tuple_counts)
    print("served from plan cache      :", outcome.cache_hit)

    # ------------------------------------------------------------------
    # Q3: the double NOT EXISTS formulation
    # ------------------------------------------------------------------
    print("\n=== Q3 (double NOT EXISTS) ===")
    print(Q3.strip())
    recognized = db.sql(Q3).run()
    naive = db.sql(Q3, recognize_division=False).run()
    print("\nwith the divide recognizer :", recognized.rewritten.to_text())
    print("without the recognizer     :", naive.rewritten.to_text())
    print("Q1 == Q3 (recognized) ==", recognized.relation == q1.relation)
    print("Q1 == Q3 (divide-less) ==", naive.relation == q1.relation)
    print("Q3 reused Q1's prepared plan:", recognized.cache_hit)
    print(
        "max intermediate: "
        f"{recognized.max_intermediate} tuples (divide) vs "
        f"{naive.max_intermediate} tuples (divide-less)"
    )

    # ------------------------------------------------------------------
    # EXPLAIN ANALYZE for Q1
    # ------------------------------------------------------------------
    print("\n=== EXPLAIN ANALYZE Q1 ===")
    print(db.sql(Q1).explain(analyze=True))
    print("\nplan cache:", db.cache_info())


if __name__ == "__main__":
    main()
