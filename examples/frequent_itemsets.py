"""Frequent itemset discovery with the great divide (Section 3 of the paper).

Run with::

    python examples/frequent_itemsets.py

The example generates a market-basket dataset with planted patterns, runs
the classic in-memory Apriori algorithm and the query-based miner whose
support-counting phase is a single great divide per level, and checks that
both find exactly the same frequent itemsets.
"""

from repro.mining import (
    apriori,
    count_support_by_great_divide,
    frequent_itemsets_by_great_divide,
    generate_baskets,
)
from repro.relation.render import render_relation


def main() -> None:
    dataset = generate_baskets(
        num_transactions=150,
        num_items=30,
        num_patterns=3,
        pattern_size=3,
        noise_items_per_transaction=4,
        seed=7,
    )
    min_support = int(0.25 * dataset.num_transactions)

    print(f"=== dataset: {dataset.num_transactions} transactions, "
          f"{len(dataset.relation)} (tid, item) rows ===")
    print("planted patterns:", [sorted(p) for p in dataset.patterns])
    print(f"minimum support: {min_support} transactions")

    # ------------------------------------------------------------------
    # the vertical representation used by the great divide
    # ------------------------------------------------------------------
    sample = dataset.relation.select(lambda row: row["tid"] < 3)
    print("\nvertical transactions table (first three transactions):")
    print(render_relation(sample, "transactions(tid, item)"))

    # ------------------------------------------------------------------
    # one support-counting round as a great divide
    # ------------------------------------------------------------------
    print("\n=== one support-counting phase: transactions ÷* candidates ===")
    candidates = list(dataset.patterns)
    supports = count_support_by_great_divide(dataset.relation, candidates, algorithm="hash")
    for candidate in candidates:
        print(f"  support({sorted(candidate)}) = {supports[candidate]}")

    # the same round as one fluent great divide through the session API
    import repro
    from repro.relation import Relation

    candidate_rows = [
        (item, index) for index, candidate in enumerate(candidates) for item in candidate
    ]
    db = repro.connect(
        {
            "transactions": dataset.relation,
            "candidates": Relation(["item", "candidate"], candidate_rows),
        }
    )
    outcome = db.table("transactions").great_divide(db.table("candidates"), on="item").run()
    print("\nthe same phase through repro.connect:")
    print("  fluent query   :", outcome.expression.to_text())
    print(f"  (tid, candidate) support pairs: {len(outcome.relation)} rows, "
          f"max intermediate = {outcome.max_intermediate} tuples")

    # ------------------------------------------------------------------
    # the full level-wise algorithm, both ways
    # ------------------------------------------------------------------
    print("\n=== full frequent itemset discovery ===")
    via_divide = frequent_itemsets_by_great_divide(dataset.relation, min_support, algorithm="hash")
    via_apriori = apriori(dataset.baskets, min_support)
    print(f"frequent itemsets found by the great-divide miner: {len(via_divide)}")
    print(f"frequent itemsets found by classic Apriori:        {len(via_apriori)}")
    print(f"identical results: {via_divide == via_apriori}")

    largest = max(via_divide, key=len)
    print("\nlargest frequent itemset:", sorted(largest), "support", via_divide[largest])
    print("\nall frequent itemsets of size >= 2:")
    for itemset, support in sorted(via_divide.items(), key=lambda kv: (-len(kv[0]), -kv[1])):
        if len(itemset) >= 2:
            print(f"  {sorted(itemset)}  (support {support})")


if __name__ == "__main__":
    main()
